#!/usr/bin/env python3
"""Quickstart: a two-site Walter deployment in a few lines.

Spins up Walter across two simulated EC2 sites (Virginia and California),
runs a transaction, and watches it replicate: the write is visible at its
own site immediately after a *local* commit, becomes visible in
California ~a round trip later, and the client gets callbacks when the
transaction is disaster-safe durable and globally visible.

Run with:  python examples/quickstart.py
"""

from repro import Deployment, ObjectKind


def main():
    world = Deployment(n_sites=2)  # VA and CA, paper RTTs
    world.create_container("alice", preferred_site=0)

    client_va = world.new_client(0)
    client_ca = world.new_client(1)
    oid = client_va.new_id("alice")
    friends = client_va.new_id("alice", ObjectKind.CSET)

    def writer():
        tx = client_va.start_tx()
        yield from client_va.write(tx, oid, b"hello geo-replication")
        yield from client_va.set_add(tx, friends, "bob")
        status = yield from client_va.commit(tx)
        committed = world.kernel.now
        print(f"[{committed*1000:7.1f} ms] committed at VA: {status}")
        ds_at = yield tx.ds_event
        print(f"[{ds_at*1000:7.1f} ms] disaster-safe durable (logged at both sites)")
        visible_at = yield tx.visible_event
        print(f"[{visible_at*1000:7.1f} ms] globally visible (committed at all sites)")

    def reader(when, label):
        yield world.kernel.timeout(when)
        tx = client_ca.start_tx()
        value = yield from client_ca.read(tx, oid)
        cset = yield from client_ca.set_read(tx, friends)
        yield from client_ca.commit(tx)
        print(
            f"[{world.kernel.now*1000:7.1f} ms] read at CA ({label}): "
            f"value={value!r}, friends={sorted(cset.members())}"
        )

    world.kernel.spawn(writer())
    world.kernel.spawn(reader(0.010, "before propagation"))
    world.kernel.spawn(reader(0.500, "after propagation"))
    world.run(until=2.0)

    print()
    print("PSI in action: the CA read at 10 ms saw nothing (the commit was")
    print("asynchronous), while the read at 500 ms saw everything -- and no")
    print("conflict-resolution logic was ever needed.")


if __name__ == "__main__":
    main()
