#!/usr/bin/env python3
"""ReTwis on Walter: multi-site microblogging without conflicts (§7, §8.7).

The original ReTwis stores each timeline in a Redis list, which only the
master site can update.  The Walter port represents timelines as csets,
so *any* site can post without cross-site coordination -- this example
shows two users on different continents posting concurrently into a
shared follower's timeline.

Run with:  python examples/twitter_clone.py
"""

from repro import Deployment
from repro.apps.retwis import WalterReTwis
from repro.storage import FLUSH_MEMORY


def main():
    world = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY)
    retwis = WalterReTwis(world)

    # east coast users at VA, west coast users at CA
    retwis.register("ada", site=0)
    retwis.register("grace", site=1)
    retwis.register("reader", site=0)

    client_va = world.new_client(0)
    client_ca = world.new_client(1)

    # reader follows both.
    world.run_process(retwis.follow(client_va, "reader", "ada"))
    world.run_process(retwis.follow(client_va, "reader", "grace"))
    world.settle(2.0)

    # Concurrent posts from both coasts -- both are cset adds into the
    # reader's timeline, so both fast-commit with no coordination.
    p1 = world.kernel.spawn(retwis.post(client_va, "ada", "PSI is parallel snapshot isolation"))
    p2 = world.kernel.spawn(retwis.post(client_ca, "grace", "csets commute, so no conflicts"))
    world.run(until=world.kernel.now + 5.0)
    print("post from VA:", p1.value["status"])
    print("post from CA:", p2.value["status"])

    world.settle(2.0)
    timeline = world.run_process(retwis.status(client_va, "reader"))
    print("\nreader's timeline (newest first):")
    for post in timeline:
        print("  @%s: %s" % (post.author, post.text))

    # A burst of posts: the timeline shows the 10 most recent.
    def burst():
        for i in range(12):
            yield from retwis.post(client_va, "ada", "burst %d" % i)

    world.run_process(burst(), within=120.0)
    world.settle(2.0)
    timeline = world.run_process(retwis.status(client_va, "reader"))
    print("\nafter a 12-post burst, timeline holds %d entries (cap 10):" % len(timeline))
    print("  newest:", timeline[0].text, "/ oldest shown:", timeline[-1].text)


if __name__ == "__main__":
    main()
