#!/usr/bin/env python3
"""Failure handling walkthrough (§4.4, §5.7).

Demonstrates the full disaster-recovery lifecycle:

1. a Walter *server* crashes and a replacement recovers from the site's
   replicated cluster storage, resuming propagation;
2. an entire *site* fails; the aggressive recovery option removes it,
   keeps its surviving (replicated) transactions, abandons the
   unreplicated ones, and reassigns its containers' preferred site;
3. the failed site returns and is re-integrated, taking its containers
   back.

Run with:  python examples/site_failure.py
"""

from repro import Deployment
from repro.storage import FLUSH_MEMORY


def commit_write(world, client, oid, data):
    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, data)
        return (yield from client.commit(tx))

    return world.run_process(scenario(), within=120.0)


def read_value(world, client, oid):
    def scenario():
        tx = client.start_tx()
        value = yield from client.read(tx, oid)
        yield from client.commit(tx)
        return value

    return world.run_process(scenario(), within=120.0)


def main():
    world = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY)
    world.create_container("va-data", preferred_site=0)
    world.create_container("ca-data", preferred_site=1)
    client0 = world.new_client(0)

    # --- 1. Server crash + replacement --------------------------------
    oid = client0.new_id("va-data")
    print("commit at VA:", commit_write(world, client0, oid, b"precious"))
    world.crash_server(0)
    print("VA server crashed; starting replacement from cluster storage...")
    world.replace_server(0)
    client0b = world.new_client(0)
    print("replacement serves the data:", read_value(world, client0b, oid))

    # --- 2. Whole-site failure, aggressive removal --------------------
    client1 = world.new_client(1)
    replicated_oid = client1.new_id("ca-data")
    stranded_oid = client1.new_id("ca-data")
    print("\ncommit at CA (will replicate):", commit_write(world, client1, replicated_oid, b"made it out"))
    world.settle(2.0)  # fully propagated
    world.network.partition(0, 1)  # CA gets cut off...
    print("commit at CA while partitioned:", commit_write(world, client1, stranded_oid, b"stranded"))
    world.servers[1].crash()  # ...and then dies
    print("CA site failed; running aggressive removal...")
    survived_upto = world.remove_site(failed_site=1, reassign_to=0, within=120.0)
    print("surviving CA transactions: seqno <=", survived_upto)
    print("replicated write visible at VA:", read_value(world, client0b, replicated_oid))
    print("stranded write (abandoned):   ", read_value(world, client0b, stranded_oid))
    print("ca-data's preferred site is now:", world.config.container("ca-data").preferred_site)
    print("writes to ca-data fast-commit at VA:", commit_write(world, client0b, replicated_oid, b"new home"))

    # --- 3. Re-integration --------------------------------------------
    print("\nCA returns; re-integrating...")
    world.reintegrate_site(1, within=120.0)
    world.settle(2.0)
    print("active sites:", world.config.active_sites())
    print("ca-data's preferred site restored to:", world.config.container("ca-data").preferred_site)
    client1b = world.new_client(1)
    print("CA sees the write made during its outage:", read_value(world, client1b, replicated_oid))
    print("CA's abandoned write stays discarded:    ", read_value(world, client1b, stranded_oid))


if __name__ == "__main__":
    main()
