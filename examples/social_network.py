#!/usr/bin/env python3
"""WaltSocial walkthrough: the paper's social network on Walter (§7).

Recreates the scenarios the paper uses to motivate transactions and
csets:

1. *befriend* -- the Fig 15 transaction: symmetric friend-list updates
   that can never leave one side dangling;
2. *album creation* -- the §2 example: create an album, post the wall
   update, and link it atomically, so no user ever sees the wall post
   without the album;
3. *concurrent befriending from different continents* -- friend lists
   are csets, so both transactions commit without coordination and the
   lists converge everywhere.

Run with:  python examples/social_network.py
"""

from repro import Deployment
from repro.apps.waltsocial import WaltSocial, WaltSocialDB


def main():
    world = Deployment(n_sites=3)  # VA, CA, IE
    db = WaltSocialDB(world)
    social = WaltSocial(db)

    # Alice logs into Virginia, Bob into California, Carol into Ireland.
    db.create_user("alice", home_site=0)
    db.create_user("bob", home_site=1)
    db.create_user("carol", home_site=2)
    alice_client = world.new_client(0)
    bob_client = world.new_client(1)
    carol_client = world.new_client(2)

    # --- 1. Befriend: one transaction, both friend lists --------------
    result = world.run_process(social.befriend(alice_client, "alice", "bob"))
    print("befriend(alice, bob):", result["status"])
    world.settle(2.0)  # let it propagate everywhere
    print("  alice's friends:", [str(p) for p in world.run_process(social.friends_of(alice_client, "alice"))])
    print("  bob's friends:  ", [str(p) for p in world.run_process(social.friends_of(bob_client, "bob"))])

    # --- 2. Atomic album creation (the §2 motivating example) ---------
    created = world.run_process(social.create_album(alice_client, "alice", "vacation"))
    world.run_process(
        social.add_photo(alice_client, "alice", created["album"], b"<jpeg bytes>")
    )
    world.settle(2.0)
    wall = world.run_process(social.wall_of(bob_client, "alice"))
    print("\nalice's wall as seen from bob's site:")
    for post in wall:
        print("  -", post)
    print("(the wall post and the album it references committed together)")

    # --- 3. Concurrent cross-site befriending: csets never conflict ---
    p1 = world.kernel.spawn(social.befriend(bob_client, "bob", "carol"))
    p2 = world.kernel.spawn(social.befriend(carol_client, "carol", "alice"))
    world.run(until=world.kernel.now + 5.0)
    print("\nconcurrent befriends from CA and IE:", p1.value["status"], p2.value["status"])
    world.settle(2.0)
    carols = world.run_process(social.friends_of(carol_client, "carol"))
    print("carol's merged friend list:", sorted(str(p) for p in carols))

    # --- 4. Status updates are instantly visible at home --------------
    world.run_process(social.status_update(alice_client, "alice", "loving PSI"))
    info = world.run_process(social.read_info(alice_client, "alice"))
    print("\nalice reads her own profile immediately:")
    print("  status:", info["profile"].status)
    print("  friends:", len(info["friends"]), "- messages on wall:", info["n_messages"])


if __name__ == "__main__":
    main()
