"""The protocol zoo, head to head: one workload, four protocols.

Runs the identical seeded mixed read/write workload through every
backend in the registry and prints a single comparison table: commit
latency (mean / p95 over committed transactions), throughput, outcome
tally, and anomaly counts from each protocol's own oracle plus the
inclusion-lattice report (both must be zero -- this benchmark doubles
as a conformance gate).

Expected shape, not exact numbers:

* commit latency rises with coordination strength -- the SI baseline
  (single primary, local commit) and NMSI (per-key-master 2PC-lite)
  sit below Walter (2PC across preferred sites + vector snapshots),
  and the Consus-flavored commit (a Paxos round per transaction,
  including read-only ones) is the most expensive;
* abort rates differ by protocol: first-committer-wins under SI/PSI
  vs dependency-chained blind writes under NMSI vs occ-style slot
  validation under strict serializability;
* anomaly counts are zero everywhere: every protocol conforms to its
  own level and to every weaker one.

Set ``ZOO_BENCH_JSON=<path>`` to also write the table as a JSON
artifact (the CI protocol-matrix job archives it).
"""

import json
import os
import random

from repro.bench import format_table
from repro.protocols.registry import PROTOCOL_NAMES, build

SEED = 31
N_SITES = 3
SESSIONS_PER_SITE = 2
TXS_PER_SESSION = 20
KEYS = ["bk%d" % i for i in range(8)]
HORIZON = 300.0
SETTLE = 40.0


def drive(backend):
    """The shared benchmark workload; returns per-tx commit latencies."""
    commit_latencies = []
    errors = []

    def client(session, rng):
        can_write = session.site in backend.writable_sites
        for i in range(TXS_PER_SESSION):
            yield backend.kernel.timeout(rng.uniform(0.01, 0.2))
            try:
                tid = yield from session.begin()
                value = yield from session.read(tid, rng.choice(KEYS))
                if can_write and rng.random() < 0.7:
                    yield from session.write(
                        tid, rng.choice(KEYS), "%s:%d:%s" % (session.name, i, value)
                    )
                else:
                    yield from session.read(tid, rng.choice(KEYS))
                t0 = backend.kernel.now
                status = yield from session.commit(tid)
                if status == "COMMITTED":
                    commit_latencies.append(backend.kernel.now - t0)
            except Exception as exc:  # noqa: BLE001 - aborts are data here
                errors.append(repr(exc))

    rng = random.Random("zoo-bench:%d" % SEED)
    procs = []
    for site in range(backend.n_sites):
        for _ in range(SESSIONS_PER_SITE):
            session = backend.session(site)
            crng = random.Random(rng.random())
            procs.append(
                backend.kernel.spawn(client(session, crng), name="bench:%s" % session.name)
            )
    backend.kernel.run(until=HORIZON, stop_when=lambda: all(p.done for p in procs))
    assert all(p.done for p in procs), "benchmark workload did not drain"
    busy_until = backend.kernel.now
    backend.settle(SETTLE)
    return commit_latencies, busy_until, errors


def percentile(values, frac):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(frac * (len(ordered) - 1))))
    return ordered[index]


def run_zoo():
    rows = []
    for name in PROTOCOL_NAMES:
        backend = build(name, n_sites=N_SITES, seed=SEED)
        latencies, busy_until, errors = drive(backend)
        tally = backend.history.outcome_tally()
        committed = tally.get("COMMITTED", 0)
        own = backend.check()
        lattice = backend.lattice_report()
        lattice_total = sum(len(vs) for vs in lattice.values())
        rows.append(
            {
                "protocol": name,
                "isolation": backend.isolation,
                "committed": committed,
                "aborted": tally.get("ABORTED", 0),
                "errors": tally.get("ERROR", 0) + len(errors),
                "tput_tps": committed / busy_until if busy_until else 0.0,
                "commit_mean_ms": 1e3 * (sum(latencies) / len(latencies))
                if latencies
                else 0.0,
                "commit_p95_ms": 1e3 * percentile(latencies, 0.95),
                "own_anomalies": len(own),
                "lattice_anomalies": lattice_total,
            }
        )
    return rows


def test_protocol_zoo_table(once):
    rows = once(run_zoo)

    print()
    print("Protocol zoo: one workload, four protocols (seed=%d)" % SEED)
    print(
        format_table(
            [
                "protocol",
                "isolation",
                "committed",
                "aborted",
                "errors",
                "tput (tx/s)",
                "commit mean (ms)",
                "commit p95 (ms)",
                "own anomalies",
                "lattice anomalies",
            ],
            [
                [
                    r["protocol"],
                    r["isolation"],
                    r["committed"],
                    r["aborted"],
                    r["errors"],
                    "%.2f" % r["tput_tps"],
                    "%.1f" % r["commit_mean_ms"],
                    "%.1f" % r["commit_p95_ms"],
                    r["own_anomalies"],
                    r["lattice_anomalies"],
                ]
                for r in rows
            ],
        )
    )

    artifact = os.environ.get("ZOO_BENCH_JSON")
    if artifact:
        with open(artifact, "w") as fh:
            json.dump({"seed": SEED, "rows": rows}, fh, indent=2, sort_keys=True)
            fh.write("\n")

    by_name = {r["protocol"]: r for r in rows}
    for r in rows:
        assert r["own_anomalies"] == 0, r
        assert r["lattice_anomalies"] == 0, r
        assert r["committed"] > 0, r
    # Coordination cost ordering: consensus-per-commit is the most
    # expensive commit in the zoo.
    assert (
        by_name["consus"]["commit_mean_ms"] > by_name["si"]["commit_mean_ms"]
    ), (by_name["consus"], by_name["si"])
