"""Figure 21: transaction size and throughput of WaltSocial operations.

Paper (4 EC2 sites, 400,000 users, containers replicated everywhere,
users act at their container's preferred site):

    operation      objs read  objs written  csets written  Kops/s
    read-info      3          0             0              40
    befriend       2          0             2              20
    status-update  1          2             2              18
    post-message   2          2             2              16.5
    mix1 (90/10)   2.9        0.5           0.3            34
    mix2 (80/20)   2.8        0.7           0.5            32

The simulation uses a proportionally smaller population (the store has no
capacity cliff); the operation structure -- and hence the shape of the
table -- is identical.
"""

import random

from repro.apps.waltsocial import WaltSocial, WaltSocialDB
from repro.bench import format_table, paper_comparison, run_closed_loop, walter_costs
from repro.deployment import Deployment
from repro.storage import FLUSH_EC2

N_USERS = 2000
PAPER_KOPS = {
    "read_info": 40.0,
    "befriend": 20.0,
    "status_update": 18.0,
    "post_message": 16.5,
    "mix1": 34.0,
    "mix2": 32.0,
}


def build_world():
    world = Deployment(
        n_sites=4, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=21
    )
    db = WaltSocialDB(world)
    db.populate(N_USERS, statuses_per_user=2, wall_posts_per_user=2)
    social = WaltSocial(db)
    by_site = {s: [] for s in range(4)}
    for name, user in db.users.items():
        by_site[user.home_site].append(name)
    return world, db, social, by_site


def op_factory(social, by_site, all_names, op_name):
    def factory(client, rng):
        locals_ = by_site[client.site.id]

        def one(kind):
            user = rng.choice(locals_)
            if kind == "read_info":
                result = yield from social.read_info(client, user)
            elif kind == "befriend":
                other = rng.choice(all_names)
                if other == user:
                    other = locals_[0] if locals_[0] != user else all_names[0]
                result = yield from social.befriend(client, user, other)
            elif kind == "status_update":
                result = yield from social.status_update(client, user, "s%d" % rng.randrange(10**6))
            else:
                other = rng.choice(all_names)
                result = yield from social.post_message(client, user, other, "m%d" % rng.randrange(10**6))
            if result["status"] != "COMMITTED":
                raise RuntimeError("%s aborted" % kind)
            return kind

        def op():
            if op_name == "mix1":
                roll = rng.random()
                kind = (
                    "read_info" if roll < 0.90 else
                    rng.choice(["befriend", "status_update", "post_message"])
                )
            elif op_name == "mix2":
                roll = rng.random()
                kind = (
                    "read_info" if roll < 0.80 else
                    rng.choice(["befriend", "status_update", "post_message"])
                )
            else:
                kind = op_name
            result = yield from one(kind)
            return result

        return op

    return factory


def run_all():
    results = {}
    for op_name in PAPER_KOPS:
        world, db, social, by_site = build_world()
        all_names = list(db.users)
        result = run_closed_loop(
            world,
            op_factory(social, by_site, all_names, op_name),
            clients_per_site=48,
            warmup=0.3,
            measure=0.6,
            name=op_name,
        )
        results[op_name] = result.ktps
    return results


def test_fig21_waltsocial_throughput(once):
    results = once(run_all)

    print()
    print("Figure 21: WaltSocial operation throughput (Kops/s, 4 sites)")
    print(paper_comparison(
        [(name, PAPER_KOPS[name], results[name]) for name in PAPER_KOPS],
        metric="Kops/s",
    ))

    # Magnitudes within ~2.2x of the paper.
    for name, paper in PAPER_KOPS.items():
        assert 0.45 * paper <= results[name] <= 2.2 * paper, (name, results[name])
    # Shape: read-info is the fastest operation.
    for update_op in ["befriend", "status_update", "post_message"]:
        assert results[update_op] <= results["read_info"] * 1.10
    # post-message (most objects touched) is the slowest update op.
    assert results["post_message"] <= results["befriend"]
    assert results["post_message"] <= results["status_update"] * 1.05
    # The read-dominated mixes sit between read-info and the update ops.
    for mix in ["mix1", "mix2"]:
        assert results["post_message"] < results[mix] <= results["read_info"] * 1.05
    assert results["mix2"] <= results["mix1"] * 1.05
