"""§8.4: fast commit on cset objects.

Each transaction modifies two 100-byte objects at the local preferred
site and adds an id to a cset whose preferred site is *remote* -- yet it
still fast-commits with no cross-site coordination.

Paper shape: commit latency matches the regular fast-commit distribution
(Fig 18 EC2 curve), throughput is below the single-write transaction
throughput because each transaction issues 4 RPCs instead of 1 (26 vs
52 Ktps across 4 sites), and the slow-commit path is never taken.
"""

from repro.bench import (
    LatencyRecorder,
    cset_tx_factory,
    format_table,
    populate,
    run_closed_loop,
    walter_costs,
    write_tx_factory,
)
from repro.deployment import Deployment
from repro.storage import FLUSH_EC2


def make_world():
    return Deployment(
        n_sites=4, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=84
    )


def run_all():
    # Cset workload.
    world = make_world()
    keys = populate(world, n_keys=2000, n_csets_per_site=8)
    cset_result = run_closed_loop(
        world, cset_tx_factory(keys), clients_per_site=64,
        warmup=0.6, measure=0.6, name="cset",
    )
    slow_attempts = sum(s.stats.slow_commit_attempts for s in world.servers)

    # Single-write baseline (the Fig 17 four-site number).
    world2 = make_world()
    keys2 = populate(world2, n_keys=2000)
    write_result = run_closed_loop(
        world2, write_tx_factory(keys2, 1), clients_per_site=128,
        warmup=1.2, measure=0.8, name="write1",
    )
    return cset_result, write_result, slow_attempts


def test_sec84_cset_fast_commit(once):
    cset_result, write_result, slow_attempts = once(run_all)

    print()
    print("Section 8.4: cset transactions across 4 sites")
    print(format_table(
        ["workload", "paper (Ktps)", "measured (Ktps)", "p99.9 latency (ms)"],
        [
            ["2 writes + 1 remote cset add", 26.0, cset_result.ktps,
             cset_result.latencies.p999 * 1000],
            ["single write (Fig 17)", 52.0, write_result.ktps, "-"],
        ],
    ))

    # Commits entirely via fast commit: no 2PC despite the remote cset.
    assert slow_attempts == 0
    # Cset transactions cost several RPCs: clearly below single-write
    # throughput, but the same order of magnitude.
    ratio = cset_result.ktps / write_result.ktps
    assert 0.3 <= ratio <= 0.9, ratio
    # Latency has no cross-site component (fast commit): far below the
    # VA round trip to any remote site.
    assert cset_result.latencies.p50 < 0.041
    assert cset_result.latencies.p999 < 0.080
