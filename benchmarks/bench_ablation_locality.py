"""Ablation: preferred-site locality.

The paper's core performance claim is that writes at an object's
preferred site commit fast (locally) while writes elsewhere pay a WAN
two-phase commit.  This ablation sweeps the fraction of remote-preferred
objects in a write workload from 0% to 100% and shows the fast-to-slow
crossover: throughput falls and median commit latency climbs from
sub-millisecond to a WAN round trip.  It quantifies exactly what
WaltSocial/ReTwis avoid by using csets (§8.5: "applications should
minimize the use of slow commits").
"""

import pytest

from repro.bench import PAYLOAD, format_table, populate, run_closed_loop, walter_costs
from repro.deployment import Deployment
from repro.storage import FLUSH_EC2

REMOTE_FRACTIONS = [0.0, 0.25, 0.5, 1.0]


def measure(remote_fraction):
    world = Deployment(
        n_sites=2, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=32
    )
    keys = populate(world, n_keys=2000)

    def factory(client, rng):
        site = client.site.id
        remote = 1 - site

        def op():
            tx = client.start_tx()
            pool = keys.by_site[remote] if rng.random() < remote_fraction else keys.by_site[site]
            oid = rng.choice(pool)
            yield from client.write(tx, oid, PAYLOAD)
            status = yield from client.commit(tx)
            if status != "COMMITTED":
                raise RuntimeError("aborted")
            return "write"

        return op

    result = run_closed_loop(
        world, factory, clients_per_site=32, warmup=0.5, measure=1.0,
        name="remote-%d%%" % int(remote_fraction * 100),
    )
    slow = sum(s.stats.slow_commits for s in world.servers)
    commits = sum(s.stats.commits for s in world.servers)
    return result, (slow / commits if commits else 0.0)


def run_all():
    return {frac: measure(frac) for frac in REMOTE_FRACTIONS}


def test_ablation_preferred_site_locality(once):
    results = once(run_all)

    print()
    print("Ablation: fraction of remote-preferred writes (2 sites)")
    rows = []
    for frac in REMOTE_FRACTIONS:
        result, slow_share = results[frac]
        rows.append([
            "%.0f%% remote" % (frac * 100),
            result.ktps,
            result.latencies.p50 * 1000,
            "%.0f%%" % (slow_share * 100),
        ])
    print(format_table(["workload", "Ktps", "p50 latency (ms)", "slow commits"], rows))

    tputs = [results[f][0].ktps for f in REMOTE_FRACTIONS]
    p50s = [results[f][0].latencies.p50 for f in REMOTE_FRACTIONS]
    slow_shares = [results[f][1] for f in REMOTE_FRACTIONS]

    # Throughput strictly degrades as locality is lost.
    assert tputs[0] > tputs[1] > tputs[2] > tputs[3]
    # All-local is at least 5x faster than all-remote.
    assert tputs[0] > 5 * tputs[3]
    # Latency crossover: local commits are sub-WAN, all-remote pays ~RTT.
    assert p50s[0] < 0.041
    assert p50s[3] >= 0.082 * 0.95
    # The slow-commit share tracks the remote fraction.
    assert slow_shares[0] == 0.0
    assert slow_shares[1] == pytest.approx(0.25, abs=0.08)
    assert slow_shares[3] == pytest.approx(1.0, abs=0.02)
