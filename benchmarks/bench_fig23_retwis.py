"""Figure 23: ReTwis throughput on Redis vs Walter, 1 and 2 sites.

The paper emulates users issuing status (read timeline), post, and
follow operations through Apache/PHP front-ends; a mixed workload is 85%
status, 7.5% post, 7.5% follow.  Both stores commit writes to memory.

Shape requirements:

* at one site, ReTwis-on-Walter is at most ~25% slower than
  ReTwis-on-Redis (paper: post 4713 vs 5740 ops/s);
* Redis cannot update from multiple sites, but Walter can: with two
  sites the Walter throughput roughly doubles (paper: post 9527 ops/s).
"""

from repro.apps.retwis import RedisReTwis, WalterReTwis
from repro.baselines import RedisServer
from repro.bench import (
    FRONTEND_OP_SECONDS,
    FRONTEND_WORKERS_PER_SITE,
    format_table,
    redis_costs,
    run_closed_loop_raw,
    walter_costs,
)
from repro.deployment import Deployment
from repro.net import Host, Network, Topology
from repro.sim import Kernel, Resource
from repro.storage import FLUSH_MEMORY

N_USERS = 2000
FOLLOWS = 10
WORKLOADS = ["status", "post", "follow", "mixed"]
PAPER_POST = {"redis-1": 5.74, "walter-1": 4.713, "walter-2": 9.527}


def pick_kind(workload, rng):
    if workload != "mixed":
        return workload
    roll = rng.random()
    if roll < 0.85:
        return "status"
    return "post" if roll < 0.925 else "follow"


def run_walter(n_sites, workload):
    world = Deployment(
        n_sites=n_sites, costs=walter_costs("ec2"), flush_latency=FLUSH_MEMORY, seed=23
    )
    retwis = WalterReTwis(world)
    retwis.populate(N_USERS, follows_per_user=FOLLOWS, seed=23)
    by_site = {s: [] for s in range(n_sites)}
    for name, user in retwis.users.items():
        by_site[user.home_site].append(name)
    frontends = {
        s: Resource(world.kernel, FRONTEND_WORKERS_PER_SITE, name="fe%d" % s)
        for s in range(n_sites)
    }

    def factory(client, rng):
        locals_ = by_site[client.site.id]
        frontend = frontends[client.site.id]

        def op():
            yield from frontend.use(FRONTEND_OP_SECONDS)
            kind = pick_kind(workload, rng)
            user = rng.choice(locals_)
            if kind == "status":
                yield from retwis.status(client, user)
            elif kind == "post":
                result = yield from retwis.post(client, user, "t%d" % rng.randrange(10**6))
                if result["status"] != "COMMITTED":
                    raise RuntimeError("post aborted")
            else:
                other = rng.choice(locals_)
                yield from retwis.follow(client, user, other)
            return kind

        return op

    clients = [world.new_client(s) for s in range(n_sites) for _ in range(40)]
    result = run_closed_loop_raw(
        world.kernel, clients, factory, warmup=0.3, measure=0.8,
        name="walter%d-%s" % (n_sites, workload),
    )
    return result.throughput


def run_redis(workload):
    kernel = Kernel()
    net = Network(kernel, Topology.ec2(1), jitter_frac=0.0)
    server = RedisServer(kernel, net, 0, "redis-master", costs=redis_costs())
    server.start()
    retwis = RedisReTwis("redis-master")
    retwis.populate_direct(server, N_USERS, follows_per_user=FOLLOWS, seed=23)
    names = list(retwis.users)
    frontend = Resource(kernel, FRONTEND_WORKERS_PER_SITE, name="fe")

    def factory(client, rng):
        def op():
            yield from frontend.use(FRONTEND_OP_SECONDS)
            kind = pick_kind(workload, rng)
            user = rng.choice(names)
            if kind == "status":
                yield from retwis.status(client, user)
            elif kind == "post":
                yield from retwis.post(client, user, "t%d" % rng.randrange(10**6))
            else:
                yield from retwis.follow(client, user, rng.choice(names))
            return kind

        return op

    clients = []
    for i in range(40):
        c = Host(kernel, net, 0, "web-%d" % i)
        c.start()
        clients.append(c)
    result = run_closed_loop_raw(
        kernel, clients, factory, warmup=0.3, measure=0.8, name="redis-%s" % workload
    )
    return result.throughput


def run_all():
    results = {}
    for workload in WORKLOADS:
        results[("redis-1", workload)] = run_redis(workload)
        results[("walter-1", workload)] = run_walter(1, workload)
        results[("walter-2", workload)] = run_walter(2, workload)
    return results


def test_fig23_retwis_throughput(once):
    results = once(run_all)

    print()
    print("Figure 23: ReTwis throughput (ops/s)")
    rows = [
        [workload] + ["%.0f" % results[(system, workload)] for system in ["redis-1", "walter-1", "walter-2"]]
        for workload in WORKLOADS
    ]
    print(format_table(["workload", "Redis 1-site", "Walter 1-site", "Walter 2-sites"], rows))

    for workload in WORKLOADS:
        redis1 = results[("redis-1", workload)]
        walter1 = results[("walter-1", workload)]
        walter2 = results[("walter-2", workload)]
        # "the slowdown is no more than 25%" at one site (small slack).
        assert walter1 >= 0.65 * redis1, (workload, walter1, redis1)
        assert walter1 <= 1.15 * redis1
        # Two sites roughly double the Walter throughput.
        assert 1.5 <= walter2 / walter1 <= 2.3, (workload, walter2 / walter1)

    # The post magnitudes land near the paper's (in Kops/s).
    assert 0.5 * PAPER_POST["redis-1"] <= results[("redis-1", "post")] / 1000 <= 2.0 * PAPER_POST["redis-1"]
    assert 0.5 * PAPER_POST["walter-1"] <= results[("walter-1", "post")] / 1000 <= 2.0 * PAPER_POST["walter-1"]
