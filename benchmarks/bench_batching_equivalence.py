"""Batching behavior-transparency gate (DESIGN.md §14).

Runs the *same* fixed workload twice -- ``Deployment(batching=None)``
and ``Deployment(batching=True)`` -- to completion (every transaction
issued, every propagation settled), writes one run artifact per arm, and
fails unless the outcome counters (commits, aborts, remote applies,
durable WAL records) are *exactly* equal.  Batching is allowed to change
when things happen, never what happens.

Unlike the closed-loop throughput benches, the workload here is
count-bound, not duration-bound: each client runs a fixed number of
transactions, so both arms perform identical logical work and the
comparison is exact rather than statistical.

Usage::

    PYTHONPATH=src python benchmarks/bench_batching_equivalence.py \\
        [--artifact-dir DIR] [--txs-per-client 40]

Writes ``obs_batch_off.jsonl`` / ``obs_batch_on.jsonl`` into
``--artifact-dir`` (default: current directory); CI re-checks them with
``python -m repro.obs diff --outcomes-only``.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import PAYLOAD, populate, walter_costs  # noqa: E402
from repro.deployment import Deployment  # noqa: E402
from repro.obs import diff_outcomes, format_diff, write_run_artifact  # noqa: E402
from repro.storage import FLUSH_EC2  # noqa: E402

N_SITES = 3
CLIENTS_PER_SITE = 4
SEED = 20260808


def run_arm(batching, txs_per_client):
    """One arm: every client runs ``txs_per_client`` mixed transactions
    (2 reads + 1 write, some remote-preferred so slow commits and the
    remote-read path are exercised), then the world settles until all
    propagation has drained."""
    world = Deployment(
        n_sites=N_SITES,
        costs=walter_costs("ec2"),
        flush_latency=FLUSH_EC2,
        seed=SEED,
        batching=batching,
    )
    keys = populate(world, n_keys=300)
    import random

    done = []

    def driver(client, rng, n_tx):
        site = client.site.id
        for i in range(n_tx):
            tx = client.start_tx()
            yield from client.read(tx, rng.choice(keys.oids))
            yield from client.read(tx, rng.choice(keys.oids))
            # 1 in 4 transactions writes a remote-preferred key: slow
            # commit, so the 2PC path is part of the equivalence check.
            pool = (
                keys.oids
                if i % 4 == 0
                else keys.by_site[site]
            )
            yield from client.write(tx, rng.choice(pool), PAYLOAD, last=True)
        done.append(1)

    n_clients = 0
    for site in range(world.n_sites):
        for c in range(CLIENTS_PER_SITE):
            client = world.new_client(site)
            rng = random.Random(SEED * 1009 + site * 31 + c)
            world.kernel.spawn(
                driver(client, rng, txs_per_client),
                name="eq-client-%d-%d" % (site, c),
            )
            n_clients += 1
    world.run(until=world.kernel.now + 120.0)
    if len(done) != n_clients:
        raise RuntimeError(
            "only %d/%d clients finished" % (len(done), n_clients)
        )
    world.settle(5.0)
    return world


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact-dir", default=".")
    parser.add_argument("--txs-per-client", type=int, default=40)
    args = parser.parse_args(argv)

    arms = {}
    for label, batching in (("off", None), ("on", True)):
        world = run_arm(batching, args.txs_per_client)
        path = os.path.join(args.artifact_dir, "obs_batch_%s.jsonl" % label)
        arms[label] = write_run_artifact(
            path, world, "batching_equivalence",
            meta={"batching": label, "seed": SEED,
                  "txs_per_client": args.txs_per_client},
        )
        print("wrote %s (sim time %.3fs)" % (path, world.kernel.now))

    mismatches, notes = diff_outcomes(arms["off"], arms["on"])
    print(format_diff(mismatches, notes))
    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
