"""Figure 17: aggregate transaction throughput on EC2, 1-4 sites.

Three panels: read-only (tx size 1 and 5), write-only (size 1 and 5),
and a 90% read / 10% write mix (all four size combinations).  Objects are
replicated at all sites with preferred sites assigned evenly (§8.3).

Shape requirements from the paper:

* read throughput scales ~linearly with sites, reaching ~157 Ktps for
  size-1 reads at 4 sites;
* write throughput grows with sites but sub-linearly (replication work
  grows with the number of sites), ~52 Ktps for size-1 writes at 4 sites;
* EC2 throughput is 50-60% of the private-cluster numbers of Fig 16;
* the mixed workload tracks the average number of requests per
  transaction (~80 Ktps at 4 sites for 90% read-1 / 10% write-5).
"""

import pytest

from repro.bench import (
    format_table,
    mixed_tx_factory,
    populate,
    read_tx_factory,
    run_closed_loop,
    walter_costs,
    write_tx_factory,
)
from repro.deployment import Deployment
from repro.storage import FLUSH_EC2

SITE_COUNTS = [1, 2, 3, 4]


def make_world(n_sites):
    return Deployment(
        n_sites=n_sites,
        costs=walter_costs("ec2"),
        flush_latency=FLUSH_EC2,
        seed=17,
    )


def measure(n_sites, factory_builder, clients, name, warmup=0.1, measure_s=0.25):
    world = make_world(n_sites)
    keys = populate(world, n_keys=4000)
    factory = factory_builder(keys)
    result = run_closed_loop(
        world, factory, clients_per_site=clients, warmup=warmup, measure=measure_s,
        name="%s-%dsite" % (name, n_sites),
    )
    return result.ktps


def run_panels():
    results = {}
    for n in SITE_COUNTS:
        results[("read", 1, n)] = measure(n, lambda k: read_tx_factory(k, 1), 64, "read1")
        results[("read", 5, n)] = measure(n, lambda k: read_tx_factory(k, 5), 64, "read5")
        # Write runs span several propagation batch cycles (~RTTmax each)
        # so that steady-state remote-apply work is captured.
        results[("write", 1, n)] = measure(
            n, lambda k: write_tx_factory(k, 1), 128, "write1",
            warmup=2.0, measure_s=1.5,
        )
        results[("write", 5, n)] = measure(
            n, lambda k: write_tx_factory(k, 5), 96, "write5",
            warmup=2.0, measure_s=1.5,
        )
    for n in SITE_COUNTS:
        for rs, ws in [(1, 1), (1, 5), (5, 1), (5, 5)]:
            results[("mixed", (rs, ws), n)] = measure(
                n, lambda k: mixed_tx_factory(k, rs, ws), 64, "mix%d-%d" % (rs, ws),
                warmup=0.3, measure_s=0.6,
            )
    return results


def test_fig17_aggregate_throughput(once):
    results = once(run_panels)

    print()
    print("Figure 17: aggregate throughput on EC2 (Ktps)")
    for panel, sizes in [("read", [1, 5]), ("write", [1, 5])]:
        rows = [
            ["%s tx size=%d" % (panel, size)] + [results[(panel, size, n)] for n in SITE_COUNTS]
            for size in sizes
        ]
        print(format_table([panel] + ["%d-site" % n for n in SITE_COUNTS], rows))
        print()
    rows = [
        ["mix r=%d w=%d" % combo] + [results[("mixed", combo, n)] for n in SITE_COUNTS]
        for combo in [(1, 1), (1, 5), (5, 1), (5, 5)]
    ]
    print(format_table(["90/10 mixed"] + ["%d-site" % n for n in SITE_COUNTS], rows))

    # --- Shape assertions -------------------------------------------------
    # Read throughput scales ~linearly with sites.
    r1 = [results[("read", 1, n)] for n in SITE_COUNTS]
    assert r1[3] / r1[0] == pytest.approx(4.0, rel=0.25)
    # Paper: ~157 Ktps for size-1 reads at 4 sites.
    assert 110 <= r1[3] <= 200
    # Size-5 reads are ~5x fewer transactions.
    assert results[("read", 5, 4)] == pytest.approx(r1[3] / 5.0, rel=0.35)

    # Write throughput grows with sites but sub-linearly.
    w1 = [results[("write", 1, n)] for n in SITE_COUNTS]
    assert w1[3] > w1[0] * 1.8          # it does grow...
    assert w1[3] < w1[0] * 3.4          # ...but clearly less than linearly
    # Paper: ~52 Ktps for size-1 writes at 4 sites.
    assert 35 <= w1[3] <= 70
    # Writes are slower than reads everywhere.
    for n in SITE_COUNTS:
        assert results[("write", 1, n)] < results[("read", 1, n)]

    # EC2 read throughput per site is 50-60% of the private cluster's
    # 72 Ktps (Fig 16) -- §8.3's observation.
    assert 0.4 * 72 <= r1[0] <= 0.7 * 72

    # Mixed 90% read-1 / 10% write-5: the paper reports ~80 Ktps at 4
    # sites; the request-count model (1.4 RPCs/tx average) predicts
    # ~115, which is where the simulation lands.
    m15 = results[("mixed", (1, 5), 4)]
    assert 55 <= m15 <= 130
    # Mixed throughput ordered by average requests per transaction.
    assert results[("mixed", (1, 1), 4)] >= results[("mixed", (1, 5), 4)]
    assert results[("mixed", (1, 5), 4)] >= results[("mixed", (5, 5), 4)]
