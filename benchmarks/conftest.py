"""Shared helpers for the paper-reproduction benchmarks.

Every ``bench_*`` file regenerates one table or figure from the paper's
evaluation (§8) -- see DESIGN.md §4 for the experiment index.  The
simulations are deterministic, so each benchmark runs exactly once
(``benchmark.pedantic`` with one round) and prints a paper-vs-measured
report (visible with ``pytest -s`` or on assertion failure).
"""

import pytest


def run_once(benchmark, fn):
    """Run a deterministic simulation once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner
