"""Ablation: slow-commit starvation and the §6 mitigation.

"The protocol for slow commit may starve because of repeated conflicting
instances of fast commit.  A simple solution ... is to mark objects that
caused the abort of slow commit and briefly delay access to them in
subsequent fast commits."  The authors did not implement it; we do,
behind ``anti_starvation=True``, and measure slow-commit success under a
hot conflicting fast-commit stream with the mitigation off and on.
"""

from repro.bench import PAYLOAD, format_table, run_closed_loop, walter_costs
from repro.deployment import Deployment
from repro.storage import FLUSH_EC2


def measure(anti_starvation):
    world = Deployment(
        n_sites=2,
        costs=walter_costs("ec2"),
        flush_latency=FLUSH_EC2,
        seed=33,
        anti_starvation=anti_starvation,
    )
    if anti_starvation:
        # The delay must cover the remote writer's snapshot staleness:
        # the last fast-committed version needs ~2.5 RTT to propagate,
        # become DS-durable, and commit at the remote site before a new
        # slow commit can see it in its snapshot.
        for server in world.servers:
            server.anti_starvation_delay = 0.5
    container = world.create_container("hot", preferred_site=0)
    hot_oid = container.new_id()
    outcomes = {"slow_ok": 0, "slow_abort": 0}

    def fast_factory(client, rng):
        def op():
            tx = client.start_tx()
            yield from client.write(tx, hot_oid, PAYLOAD)
            yield from client.commit(tx)
            yield client.kernel.timeout(0.010)
            return "fast"

        return op

    def slow_factory(client, rng):
        def op():
            tx = client.start_tx()
            yield from client.write(tx, hot_oid, PAYLOAD)
            status = yield from client.commit(tx)
            outcomes["slow_ok" if status == "COMMITTED" else "slow_abort"] += 1
            return "slow"

        return op

    # Hot fast-commit stream at the preferred site (site 0)...
    fast_clients = [world.new_client(0) for _ in range(2)]
    # ...competing with slow commits from site 1.
    slow_clients = [world.new_client(1) for _ in range(2)]

    from repro.bench import run_closed_loop_raw

    def combined_factory(client, rng):
        if client in fast_clients:
            return fast_factory(client, rng)
        return slow_factory(client, rng)

    result = run_closed_loop_raw(
        world.kernel,
        fast_clients + slow_clients,
        combined_factory,
        warmup=0.5,
        measure=8.0,
        name="anti=%s" % anti_starvation,
    )
    attempts = outcomes["slow_ok"] + outcomes["slow_abort"]
    success = outcomes["slow_ok"] / attempts if attempts else 0.0
    return success, attempts


def run_all():
    return {"off": measure(False), "on": measure(True)}


def test_ablation_anti_starvation(once):
    results = once(run_all)

    print()
    print("Ablation: slow-commit success rate under conflicting fast commits")
    rows = [
        [mode, "%.0f%%" % (rate * 100), attempts]
        for mode, (rate, attempts) in results.items()
    ]
    print(format_table(["anti-starvation", "slow-commit success", "attempts"], rows))

    rate_off, attempts_off = results["off"]
    rate_on, attempts_on = results["on"]
    assert attempts_off > 10 and attempts_on > 10
    # Without the mitigation the slow commits starve outright.
    assert rate_off < 0.05
    # With it they make steady progress.  The rate stays well below 100%
    # because a remote transaction's snapshot lags the preferred site by
    # the propagation delay (~2.5 RTT): retries issued inside that stale
    # window still vote NO, and the delay cannot eliminate that -- it
    # only holds off new fast commits so that *some* retry lands.
    assert rate_on > rate_off + 0.1
    assert rate_on > 0.10
