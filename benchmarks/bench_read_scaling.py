"""Read-path scaling: indexed histories vs the seed's linear scans.

The seed implementation materialized every snapshot read by scanning the
object's full history -- O(n) per read for an n-entry history, with n
growing forever (no GC).  A hot cset (a WaltSocial wall) therefore got
slower with every update ever applied to it.  The indexed history makes
``latest_visible`` a per-site binary search, ``unmodified_since`` an
O(sites) summary check, and ``read_cset`` a fold of only the suffix
beyond the GC watermark's cached base.

This benchmark builds one hot cset and one hot regular object with N
versions spread round-robin over 4 origin sites, reads them both through
the indexed path (with the periodic GC a live server runs), and through
a reference reimplementation of the seed's linear scan.  Reported per
size: per-read latency of each, and the speedup.

Acceptance (ISSUE): at 10k-entry cset histories the indexed read must be
>= 10x faster than the linear scan, and indexed read cost must be flat-ish
in N (bounded by churn since the last GC, not lifetime updates).

Run standalone: ``python benchmarks/bench_read_scaling.py [--small]``.
"""

import argparse
import time

from repro.core import (
    CSet,
    CSetAdd,
    DataUpdate,
    ObjectId,
    ObjectKind,
    SiteHistories,
    VectorTimestamp,
    Version,
)

SET = ObjectId("bench", "timeline", ObjectKind.CSET)
REG = ObjectId("bench", "profile", ObjectKind.REGULAR)
N_SITES = 4
DISTINCT = 128     # element universe of the hot cset
GC_EVERY = 256     # server GC cadence, in applied versions
REPEATS = 7        # timing repeats; min is reported
READS_PER_REPEAT = 50


def build(n_entries, gc_every=None):
    """A site's histories with one hot cset and one hot regular object,
    ``n_entries`` committed versions each, origins round-robined over
    sites.  ``gc_every`` mimics the server's periodic GC loop (watermark
    = everything applied; no snapshot pins in a microbenchmark).  Also
    returns the flat entry list the seed-style scan reads."""
    hists = SiteHistories()
    flat = []
    seqnos = [0] * N_SITES
    for i in range(n_entries):
        site = i % N_SITES
        seqnos[site] += 1
        version = Version(site, seqnos[site])
        updates = [CSetAdd(SET, i % DISTINCT), DataUpdate(REG, b"v%d" % i)]
        hists.apply(updates, version)
        for update in updates:
            flat.append((update, version))
        if gc_every and (i + 1) % gc_every == 0:
            hists.gc(VectorTimestamp(seqnos), fold_cset=lambda oid: True)
    return hists, flat, VectorTimestamp(seqnos)


# ----------------------------------------------------------------------
# Reference: the seed's O(n) read paths, one linear pass per read.
# ----------------------------------------------------------------------
def naive_read_cset(flat, vts):
    cset = CSet()
    for update, version in flat:
        if update.oid == SET and vts.visible(version):
            cset.add(update.elem)
    return cset


def naive_read_regular(flat, vts):
    value = None
    for update, version in flat:
        if update.oid == REG and vts.visible(version):
            value = update.data
    return value


def naive_unmodified(flat, vts):
    return all(
        vts.visible(version) for update, version in flat if update.oid == REG
    )


def _time_per_call(fn):
    """Min-of-repeats per-call latency in microseconds."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(READS_PER_REPEAT):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / READS_PER_REPEAT * 1e6


def measure(n_entries):
    hists, flat, vts = build(n_entries, gc_every=GC_EVERY)
    _plain, plain_flat, _vts2 = build(n_entries, gc_every=None)
    # Same values, or the comparison is meaningless.
    assert hists.read_cset(SET, vts) == naive_read_cset(plain_flat, vts)
    assert hists.read_regular(REG, vts) == naive_read_regular(plain_flat, vts)
    return {
        "n": n_entries,
        "cset_indexed": _time_per_call(lambda: hists.read_cset(SET, vts)),
        "cset_naive": _time_per_call(lambda: naive_read_cset(plain_flat, vts)),
        "reg_indexed": _time_per_call(lambda: hists.read_regular(REG, vts)),
        "reg_naive": _time_per_call(lambda: naive_read_regular(plain_flat, vts)),
        "unmod_indexed": _time_per_call(lambda: hists.unmodified(REG, vts)),
        "unmod_naive": _time_per_call(lambda: naive_unmodified(plain_flat, vts)),
    }


def run_all(sizes):
    return [measure(n) for n in sizes]


def report(rows):
    header = "%8s  %12s  %12s  %8s  %12s  %12s  %8s" % (
        "entries", "cset idx us", "cset scan us", "speedup",
        "reg idx us", "reg scan us", "speedup",
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            "%8d  %12.2f  %12.2f  %7.1fx  %12.2f  %12.2f  %7.1fx"
            % (
                r["n"],
                r["cset_indexed"], r["cset_naive"],
                r["cset_naive"] / r["cset_indexed"],
                r["reg_indexed"], r["reg_naive"],
                r["reg_naive"] / r["reg_indexed"],
            )
        )
    return "\n".join(lines)


def check(rows, min_speedup=10.0, flatness=6.0):
    """The ISSUE's acceptance bars.  ``flatness`` is generous because
    indexed reads are microsecond-scale and timing noise is real."""
    largest, smallest = rows[-1], rows[0]
    for kind in ("cset", "reg", "unmod"):
        speedup = largest["%s_naive" % kind] / largest["%s_indexed" % kind]
        assert speedup >= min_speedup, (
            "%s: %.1fx < %.1fx at n=%d"
            % (kind, speedup, min_speedup, largest["n"])
        )
    growth = largest["cset_indexed"] / smallest["cset_indexed"]
    linear = largest["n"] / smallest["n"]
    assert growth <= min(flatness, linear / 2.0), (
        "cset read grew %.1fx from n=%d to n=%d (linear would be %.1fx)"
        % (growth, smallest["n"], largest["n"], linear)
    )


def test_read_scaling(once):
    rows = once(lambda: run_all([1000, 10000]))
    print()
    print("Read-path scaling (indexed vs seed-style linear scan)")
    print(report(rows))
    check(rows)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--small", action="store_true",
        help="CI smoke scale (fast; same assertions)",
    )
    args = parser.parse_args()
    sizes = [500, 2000] if args.small else [1000, 10000]
    rows = run_all(sizes)
    print(report(rows))
    check(rows)
    print("OK: indexed reads sublinear and >=10x over linear scan at n=%d" % sizes[-1])
