"""§8.1: the EC2 round-trip latency matrix.

Measures RTTs end-to-end through the message layer (ping/pong between
hosts at every site pair) and compares against the paper's table.
"""

from repro.bench import format_table
from repro.net import EC2_RTT_MS, EC2_SITE_NAMES, Host, Network, Topology
from repro.sim import Kernel


class Pinger(Host):
    def rpc_ping(self):
        return "pong"


def measure_rtts():
    kernel = Kernel()
    topo = Topology.ec2(4)
    net = Network(kernel, topo, jitter_frac=0.0)
    hosts = {name: Pinger(kernel, net, name, "ping-%s" % name) for name in EC2_SITE_NAMES}
    for host in hosts.values():
        host.start()

    measured = {}

    def ping(src, dst):
        start = kernel.now
        yield from hosts[src].call("ping-%s" % dst, "ping")
        measured[(src, dst)] = (kernel.now - start) * 1000.0

    for i, a in enumerate(EC2_SITE_NAMES):
        for b in EC2_SITE_NAMES[i:]:
            kernel.run_process(ping(a, b), until=kernel.now + 5.0)
    return measured


def test_sec81_rtt_matrix(once):
    measured = once(measure_rtts)

    rows = []
    for (a, b), paper_ms in sorted(EC2_RTT_MS.items()):
        rows.append([f"{a}-{b}", paper_ms, measured[(a, b)]])
    print()
    print("Section 8.1: round-trip latencies (ms), paper vs measured")
    print(format_table(["pair", "paper", "measured"], rows))

    for pair, paper_ms in EC2_RTT_MS.items():
        got = measured[pair]
        # Within the RTT plus per-message software overheads.
        assert paper_ms <= got <= paper_ms + 2.0, (pair, paper_ms, got)
