"""Ablation: batched vs eager propagation.

DESIGN.md calls out group propagation (§6: "Walter propagates
transactions in periodic batches") as a design choice.  This ablation
compares the default ~RTTmax batch cycle against eager dispatch (a tiny
batch period):

* eager dispatch lowers disaster-safe durability latency toward one
  round trip (no waiting for the previous batch),
* but sends many more (smaller) propagation messages for the same work.
"""

from repro.bench import LatencyRecorder, PAYLOAD, format_table, populate, run_closed_loop, walter_costs
from repro.deployment import Deployment
from repro.storage import FLUSH_EC2


def measure(eager):
    world = Deployment(
        n_sites=2, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=31
    )
    if eager:
        for server in world.servers:
            server._batch_period = lambda: 0.002
    keys = populate(world, n_keys=1000)
    ds_rec = LatencyRecorder("ds")

    def factory(client, rng):
        def op():
            tx = client.start_tx()
            oid = rng.choice(keys.by_site[0])
            yield from client.write(tx, oid, PAYLOAD)
            status = yield from client.commit(tx)
            if status != "COMMITTED":
                return "aborted"
            committed = client.kernel.now
            yield tx.ds_event
            ds_rec.record(client.kernel.now - committed)
            return "write"

        return op

    result = run_closed_loop(
        world, factory, sites=[0], clients_per_site=8,
        warmup=1.0, measure=5.0, name="eager" if eager else "batched",
    )
    batches = sum(s.stats.batches_sent for s in world.servers)
    return ds_rec, batches, result.throughput


def run_all():
    return {"batched": measure(eager=False), "eager": measure(eager=True)}


def test_ablation_propagation_batching(once):
    results = once(run_all)

    print()
    print("Ablation: propagation batching (2 sites, light write load)")
    rows = []
    for mode, (ds_rec, batches, tput) in results.items():
        rows.append([mode, ds_rec.p50 * 1000, ds_rec.percentile(90) * 1000, batches, tput])
    print(format_table(["mode", "DS p50 (ms)", "DS p90 (ms)", "batches", "ops/s"], rows))

    ds_batched, batches_batched, _ = results["batched"]
    ds_eager, batches_eager, _ = results["eager"]
    rtt = 0.082  # VA-CA
    # Batched: uniform in [RTT, 2*RTT] (plus a few ms of fixed model
    # overheads); eager: concentrated near one RTT.
    assert 1.2 * rtt <= ds_batched.p50 <= 2.0 * rtt + 0.020
    assert ds_eager.p50 <= 1.25 * rtt + 0.020
    assert ds_eager.p50 < ds_batched.p50
    # Eager dispatch sends many more propagation messages.
    assert batches_eager > batches_batched * 3
