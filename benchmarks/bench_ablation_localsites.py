"""Ablation: scaling a data center with "local sites" (§5.8).

Walter has one server per site, and per-site write throughput is bounded
by that server's serialized commit section.  §5.8's proposed scale-out is
to split a data center into several local sites and partition objects
across them.  This ablation measures a single data center's aggregate
write throughput with 1, 2, and 4 local sites: it should scale with the
number of local servers (each brings its own commit lock and CPU).
"""

from repro.bench import PAYLOAD, format_table, run_closed_loop, walter_costs
from repro.deployment import Deployment
from repro.net import Topology
from repro.storage import FLUSH_EC2

LOCAL_SITE_COUNTS = [1, 2, 4]


def measure(n_local_sites):
    topo = Topology.datacenters([n_local_sites], lan_rtt_ms=0.3)
    world = Deployment(
        topology=topo, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=58
    )
    keyspace = {}
    for site in range(n_local_sites):
        container = world.create_container("part%d" % site, preferred_site=site)
        keyspace[site] = [container.new_id() for _ in range(500)]
    world.preload({oid: PAYLOAD for oids in keyspace.values() for oid in oids})

    def factory(client, rng):
        site = client.site.id

        def op():
            tx = client.start_tx()
            oid = rng.choice(keyspace[site])
            yield from client.write(tx, oid, PAYLOAD, last=True)
            if tx.status != "COMMITTED":
                raise RuntimeError("aborted")
            return "write"

        return op

    result = run_closed_loop(
        world, factory, clients_per_site=64, warmup=0.2, measure=0.4,
        name="%d-local-sites" % n_local_sites,
    )
    return result.ktps


def run_all():
    return {n: measure(n) for n in LOCAL_SITE_COUNTS}


def test_ablation_local_site_scaling(once):
    results = once(run_all)

    print()
    print("Ablation §5.8: write throughput of one data center (Ktps)")
    rows = [["%d local sites" % n, results[n]] for n in LOCAL_SITE_COUNTS]
    print(format_table(["configuration", "Ktps"], rows))

    # Aggregate write throughput scales with the number of local servers
    # (each adds a commit lock).  Scaling is sub-linear because every
    # local site still applies the other partitions' updates (the same
    # effect as Fig 17's cross-site write scaling, just over the LAN).
    assert results[2] > 1.5 * results[1]
    assert results[4] > 2.4 * results[1]
