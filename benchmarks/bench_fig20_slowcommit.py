"""Figure 20: latency of slow commit and its replication.

Clients at VA issue write-only transactions of 2-4 objects whose
preferred sites are VA, CA, IE, SG in order, forcing the two-phase slow
commit among those preferred sites.

Paper shape: commit latency is the round trip from VA to the *farthest
preferred site* in the write-set -- ~82 ms for size 2 (VA-CA), ~87 ms for
size 3 (VA-IE), ~261 ms for size 4 (VA-SG); disaster-safe durability adds
the usual [RTTmax, 2*RTTmax] replication latency on top.
"""

from repro.bench import (
    LatencyRecorder,
    PAYLOAD,
    format_table,
    populate,
    run_closed_loop,
    slow_commit_tx_factory,
    walter_costs,
)
from repro.deployment import Deployment
from repro.obs import aggregate_budgets, format_budget_table
from repro.storage import FLUSH_EC2

TX_SIZES = [2, 3, 4]
#: RTT from VA to the farthest preferred site per tx size (paper §8.5).
FARTHEST_RTT = {2: 0.082, 3: 0.087, 4: 0.261}


def measure(tx_size):
    # Deep tracing feeds the latency-budget table printed below; it is
    # recording-only, so the measured latencies are unaffected.
    world = Deployment(
        n_sites=4, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=20,
        tracing="deep",
    )
    keys = populate(world, n_keys=1000)
    commit_rec = LatencyRecorder("slow-commit-%d" % tx_size)
    ds_rec = LatencyRecorder("slow-ds-%d" % tx_size)

    def factory(client, rng):
        def op():
            tx = client.start_tx()
            for site in range(tx_size):
                oid = rng.choice(keys.by_site[site])
                yield from client.write(tx, oid, PAYLOAD)
            start = client.kernel.now
            status = yield from client.commit(tx)
            if status != "COMMITTED":
                return "aborted"
            commit_rec.record(client.kernel.now - start)
            yield tx.ds_event
            ds_rec.record(client.kernel.now - start)
            return "slow"

        return op

    run_closed_loop(
        world, factory, sites=[0], clients_per_site=8,
        warmup=1.0, measure=6.0, name="fig20-%d" % tx_size,
    )
    return commit_rec, ds_rec, world


def run_all():
    return {size: measure(size) for size in TX_SIZES}


def test_fig20_slow_commit_latency(once):
    results = once(run_all)

    print()
    print("Figure 20: slow commit and DS-durability latency from VA (ms)")
    rows = []
    for size in TX_SIZES:
        commit_rec, ds_rec, _world = results[size]
        rows.append([
            "tx size=%d" % size,
            FARTHEST_RTT[size] * 1000,
            commit_rec.p50 * 1000,
            commit_rec.p99 * 1000,
            ds_rec.p50 * 1000,
        ])
    print(format_table(
        ["workload", "paper commit~RTT", "commit p50", "commit p99", "DS p50"], rows
    ))

    # Critical-path attribution for the farthest-site workload: the
    # cross-site vote round must dominate the slow-commit budget.
    budget_table = aggregate_budgets(
        results[4][2].obs.tracer.traces(), client_only=True
    )
    print()
    print(format_budget_table(budget_table))
    slow_budget = budget_table.classes.get("slow")
    assert slow_budget is not None and slow_budget["count"] > 30
    assert slow_budget["segments"]["2pc_votes"]["share"] > 0.5

    rtt_max = 0.261  # VA-SG, the farthest site in the 4-site deployment
    for size in TX_SIZES:
        commit_rec, ds_rec, _world = results[size]
        assert len(commit_rec) > 30
        expected = FARTHEST_RTT[size]
        # Commit latency == round trip to the farthest preferred site.
        assert expected * 0.95 <= commit_rec.p50 <= expected * 1.4, (
            size, commit_rec.p50,
        )
        # DS durability: commit plus [RTTmax, 2*RTTmax] replication.
        assert ds_rec.p50 >= commit_rec.p50 + 0.9 * rtt_max
        assert ds_rec.p50 <= commit_rec.p50 + 2.4 * rtt_max
    # Size 4 commits are much slower than sizes 2-3 (SG joins the 2PC).
    assert results[4][0].p50 > results[3][0].p50 * 2
    # Sizes 2 and 3 are close (82 vs 87 ms round trips).
    assert abs(results[3][0].p50 - results[2][0].p50) < 0.04
