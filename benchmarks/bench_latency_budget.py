"""Latency-budget tables from deep traces (critical-path attribution).

Re-runs the fig18 fast-commit and fig20 slow-commit scenarios with
``Deployment(tracing="deep")`` and aggregates per-transaction
critical-path budgets (see ``repro.obs.critical_path``) into the
latency-budget table: where each millisecond of commit latency goes
(request/reply network hops, CPU admission, the 2PC vote round, lock
wait, the commit critical section, the WAL group-commit flush).

The budgets are exact, not sampled estimates: segment sums telescope to
the client-observed round trip, so the table's totals must reproduce the
client-side recorders' measurements -- this benchmark asserts agreement
within 1%.

Run as a script to write a JSONL run artifact for the ``python -m
repro.obs diff`` regression gate::

    python benchmarks/bench_latency_budget.py --out base.jsonl
    python benchmarks/bench_latency_budget.py --out slow.jsonl --flush-scale 3
    python -m repro.obs diff base.jsonl slow.jsonl   # exits 1

``--flush-scale`` multiplies the WAL flush latency, the injected
regression CI uses to prove the gate fails when latency moves.
"""

import argparse
import sys

from repro.bench import (
    DISK_PRESETS,
    LatencyRecorder,
    PAYLOAD,
    format_table,
    populate,
    run_closed_loop,
    walter_costs,
)
from repro.deployment import Deployment
from repro.obs import aggregate_budgets, format_budget_table, write_run_artifact
from repro.storage import FLUSH_EC2

#: Retain every trace: the budget table must cover the same transaction
#: population as the client-side latency recorders for the 1% check.
TRACE_CAPACITY = 65536


def run_fast(seed=18, flush_scale=1.0, small=False):
    """Fig18's EC2 cell (write-5 fast commits) under deep tracing."""
    world = Deployment(
        n_sites=2,
        costs=walter_costs("ec2"),
        flush_latency=DISK_PRESETS["ec2"] * flush_scale,
        seed=seed,
        tracing="deep",
        trace_capacity=TRACE_CAPACITY,
    )
    keys = populate(world, n_keys=4000)
    commit_latencies = LatencyRecorder("fast-commit")

    def factory(client, rng):
        site = client.site.id

        def op():
            tx = client.start_tx()
            for _ in range(5):
                oid = rng.choice(keys.by_site[site])
                yield from client.write(tx, oid, PAYLOAD)
            start = client.kernel.now
            status = yield from client.commit(tx)
            if status == "COMMITTED":
                commit_latencies.record(client.kernel.now - start)
            return "write5"

        return op

    run_closed_loop(
        world, factory,
        clients_per_site=8 if small else 24,
        warmup=0.1 if small else 0.2,
        measure=0.2 if small else 0.5,
        name="budget-fast",
    )
    return commit_latencies, world


def run_slow(seed=20, small=False):
    """Fig20's size-3 workload (VA-CA-IE slow commits) under deep tracing."""
    world = Deployment(
        n_sites=4, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2,
        seed=seed, tracing="deep", trace_capacity=TRACE_CAPACITY,
    )
    keys = populate(world, n_keys=1000)
    commit_latencies = LatencyRecorder("slow-commit")

    def factory(client, rng):
        def op():
            # fig20's op (slow_commit_tx_factory) with the clock started
            # at the commit call, matching the budget's client window.
            tx = client.start_tx()
            for site in range(3):
                oid = rng.choice(keys.by_site[site])
                yield from client.write(tx, oid, PAYLOAD)
            start = client.kernel.now
            status = yield from client.commit(tx)
            if status != "COMMITTED":
                raise RuntimeError("slow tx aborted")
            commit_latencies.record(client.kernel.now - start)
            return "slow-3"

        return op

    run_closed_loop(
        world, factory, sites=[0],
        clients_per_site=4 if small else 8,
        warmup=0.5 if small else 1.0,
        measure=1.5 if small else 3.0,
        name="budget-slow",
    )
    return commit_latencies, world


def budget_report(world, recorder, cls):
    """(table, budget-class dict) plus the measured-vs-attributed row."""
    table = aggregate_budgets(world.obs.tracer.traces(), client_only=True)
    budget = table.classes.get(cls)
    return table, budget


def test_latency_budget(once):
    fast, slow = once(lambda: (run_fast(), run_slow()))
    fast_rec, fast_world = fast
    slow_rec, slow_world = slow

    print()
    print("Latency budget: critical-path attribution (deep traces)")
    rows = []
    for cls, (rec, world) in (("fast", fast), ("slow", slow)):
        table, budget = budget_report(world, rec, cls)
        print()
        print(format_budget_table(table))
        assert budget is not None, "no %s-commit budgets traced" % cls
        # The recorder and the budget table saw the same committed
        # transactions (capacity retains every trace), and each budget's
        # segments telescope to the client round trip -- so the table's
        # mean must reproduce the measured mean within 1%.
        assert budget["count"] == len(rec), (cls, budget["count"], len(rec))
        measured = rec.mean
        attributed = budget["total"]["mean"]
        assert abs(attributed - measured) <= 0.01 * measured, (
            cls, attributed, measured,
        )
        seg_sum = sum(s["mean"] for s in budget["segments"].values())
        assert abs(seg_sum - attributed) <= 1e-9 + 1e-6 * attributed
        rows.append([
            cls, budget["count"], measured * 1e3, attributed * 1e3,
            abs(attributed - measured) / measured * 100.0,
        ])
    print()
    print(format_table(
        ["class", "n", "measured mean (ms)", "attributed (ms)", "gap (%)"], rows
    ))

    # Shape checks: fast commits are flush-dominated with no 2PC
    # segments; slow commits are dominated by the cross-site vote round.
    _, fast_budget = budget_report(fast_world, fast_rec, "fast")
    assert "2pc_votes" not in fast_budget["segments"]
    assert fast_budget["segments"]["wal_flush"]["share"] > 0.3
    _, slow_budget = budget_report(slow_world, slow_rec, "slow")
    assert slow_budget["segments"]["2pc_votes"]["share"] > 0.5


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="PATH", help="write a JSONL run artifact")
    parser.add_argument("--seed", type=int, default=18)
    parser.add_argument(
        "--flush-scale", type=float, default=1.0,
        help="multiply WAL flush latency (inject a latency regression)",
    )
    parser.add_argument("--small", action="store_true", help="CI-sized run")
    args = parser.parse_args(argv)

    recorder, world = run_fast(
        seed=args.seed, flush_scale=args.flush_scale, small=args.small
    )
    table = aggregate_budgets(world.obs.tracer.traces(), client_only=True)
    print(format_budget_table(table))
    print(
        "measured client mean: %.3fms over %d commits"
        % (recorder.mean * 1e3, len(recorder))
    )
    if args.out:
        write_run_artifact(
            args.out, world, "latency-budget-fast",
            meta={"seed": args.seed, "flush_scale": args.flush_scale},
        )
        print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
