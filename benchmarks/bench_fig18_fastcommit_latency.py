"""Figure 18: fast-commit latency CDF on EC2 and the private cluster.

Write-only transactions of 5 objects at a moderate load (~70% of maximal
throughput); the commit latency is the time from issuing the commit RPC
to its acknowledgement.  Three disk configurations:

* EC2 instance storage,
* private cluster with write caching enabled,
* private cluster with write caching disabled.

Paper shape: no cross-site coordination, so latency is dominated by
server queueing and the commit-log flush; on EC2 the 99th percentile is
~20 ms and the 99.9th ~27 ms; with write caching off the 99.9th stays
under 90 ms.
"""

import random

from repro.bench import (
    DISK_PRESETS,
    LatencyRecorder,
    PAYLOAD,
    format_cdf,
    format_metric_histogram,
    format_site_observability,
    format_table,
    populate,
    run_closed_loop,
    walter_costs,
)
from repro.deployment import Deployment
from repro.obs import aggregate_budgets, format_budget_table

CONFIGS = [
    ("ec2", "ec2", DISK_PRESETS["ec2"]),
    ("write_caching_on", "private", DISK_PRESETS["write_caching_on"]),
    ("write_caching_off", "private", DISK_PRESETS["write_caching_off"]),
]


def measure_commit_latency(platform, flush_latency, clients_per_site, tracing=False):
    world = Deployment(
        n_sites=2, costs=walter_costs(platform), flush_latency=flush_latency, seed=18,
        tracing=tracing,
    )
    keys = populate(world, n_keys=4000)
    commit_latencies = LatencyRecorder("commit")

    def factory(client, rng):
        site = client.site.id

        def op():
            tx = client.start_tx()
            for _ in range(5):
                oid = rng.choice(keys.by_site[site])
                yield from client.write(tx, oid, PAYLOAD)
            start = client.kernel.now
            status = yield from client.commit(tx)
            if status == "COMMITTED":
                commit_latencies.record(client.kernel.now - start)
            return "write5"

        return op

    run_closed_loop(
        world, factory, clients_per_site=clients_per_site, warmup=0.2, measure=0.6,
        name="fig18-%s" % platform,
    )
    return commit_latencies, world


def run_all():
    results = {}
    worlds = {}
    for name, platform, flush in CONFIGS:
        # Saturation for write-5 is ~60 clients/site; ~70% load below it.
        # The EC2 cell runs with deep tracing for the latency-budget
        # table below; tracing is recording-only, so the measured
        # latencies are unaffected.
        results[name], worlds[name] = measure_commit_latency(
            platform, flush, clients_per_site=40, tracing="deep" if name == "ec2" else False
        )
    return results, worlds


def test_fig18_fast_commit_latency(once):
    results, worlds = once(run_all)

    print()
    print("Figure 18: fast commit latency (write-only tx, 5 objects)")
    rows = []
    for name, _platform, flush in CONFIGS:
        rec = results[name]
        rows.append([name, flush * 1000, rec.p50 * 1000, rec.p99 * 1000, rec.p999 * 1000])
    print(format_table(["config", "flush (ms)", "p50 (ms)", "p99 (ms)", "p99.9 (ms)"], rows))
    print()
    print(format_cdf(results["ec2"], n_points=10))
    # Per-site decomposition from the repro.obs layer (counters only; no
    # tracing overhead): commit-latency histogram, replication lag,
    # ds-durability lag, visibility lag, cache hit-rate.
    ec2_world = worlds["ec2"]
    print()
    print(format_site_observability(ec2_world))
    print()
    print(
        format_metric_histogram(
            ec2_world.obs.registry.histogram("server.commit_latency", site=0)
        )
    )
    # Critical-path attribution from the deep traces (retained window):
    # where the commit milliseconds go.  See benchmarks/
    # bench_latency_budget.py for the exactness (within-1%) assertions.
    budget_table = aggregate_budgets(ec2_world.obs.tracer.traces(), client_only=True)
    print()
    print(format_budget_table(budget_table))
    fast_budget = budget_table.classes.get("fast")
    assert fast_budget is not None and fast_budget["count"] > 100
    # No cross-site coordination on the fast path.
    assert "2pc_votes" not in fast_budget["segments"]
    # The flush dominates the fast-commit budget (paper: latency is
    # "dominated by ... the commit-log flush").
    assert fast_budget["segments"]["wal_flush"]["share"] > 0.3

    ec2 = results["ec2"]
    on = results["write_caching_on"]
    off = results["write_caching_off"]

    # The obs-layer commit histogram saw the same population the
    # client-side recorder did (server-side, so >= the recorder's count
    # includes nothing extra for write-only committed tx).
    server_hist = ec2_world.obs.registry.histogram("server.commit_latency", site=0)
    assert server_hist.count > 0
    for site in range(ec2_world.n_sites):
        repl = ec2_world.obs.registry.histogram("server.replication_lag", site=site)
        assert repl.count > 0  # both sites applied the other's commits
        hits = ec2_world.obs.registry.counter("cache.hits", site=site).value
        misses = ec2_world.obs.registry.counter("cache.misses", site=site).value
        assert hits + misses == 0  # write-only workload never reads
    for rec in (ec2, on, off):
        assert len(rec) > 500

    # No cross-site coordination: well under one WAN round trip at p50.
    assert ec2.p50 < 0.041
    # Paper: EC2 p99 ~20 ms, p99.9 ~27 ms.
    assert ec2.p99 < 0.030
    assert ec2.p999 < 0.050
    # Write-caching-off is the slowest configuration; p99.9 < 90 ms.
    assert off.p50 > on.p50
    assert off.p999 < 0.090
    # Latency floor: at least one log flush.
    assert on.min >= 0.001
    assert off.min >= 0.008
