"""Figure 19: replication latency for disaster-safe durability.

Clients at VA commit write transactions and wait for the disaster-safe
durability callback.  Walter propagates in batches, so a committed
transaction waits for the previous batch cycle before being shipped;
the paper observes the latency "distributed approximately uniformly
between [RTTmax, 2*RTTmax] where RTTmax is the maximum round-trip
latency between VA and the other three sites" -- 82 ms for 2 sites,
87 ms for 3, 261 ms for 4.
"""

from repro.bench import (
    LatencyRecorder,
    PAYLOAD,
    format_cdf,
    format_site_observability,
    format_table,
    populate,
    run_closed_loop,
    walter_costs,
)
from repro.deployment import Deployment
from repro.obs import compute_lag_report
from repro.storage import FLUSH_EC2

SITE_COUNTS = [2, 3, 4]


def measure_ds_latency(n_sites):
    # Tracing on: Fig 19's latency decomposes from the span events too
    # (see EXPERIMENTS.md "Observability").
    world = Deployment(
        n_sites=n_sites, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=19,
        tracing=True,
    )
    keys = populate(world, n_keys=1000)
    recorder = LatencyRecorder("ds-%dsites" % n_sites)

    def factory(client, rng):
        def op():
            tx = client.start_tx()
            oid = rng.choice(keys.by_site[0])
            yield from client.write(tx, oid, PAYLOAD)
            status = yield from client.commit(tx)
            if status != "COMMITTED":
                return "aborted"
            committed_at = client.kernel.now
            yield tx.ds_event
            recorder.record(client.kernel.now - committed_at)
            return "ds"

        return op

    # Light load at VA only: this measures replication, not queueing.
    run_closed_loop(
        world, factory, sites=[0], clients_per_site=8,
        warmup=1.0, measure=6.0, name="fig19-%d" % n_sites,
    )
    return recorder, world


def run_all():
    out = {n: measure_ds_latency(n) for n in SITE_COUNTS}
    return {n: rec for n, (rec, _) in out.items()}, {n: w for n, (_, w) in out.items()}


def test_fig19_ds_durability_latency(once):
    results, worlds = once(run_all)

    print()
    print("Figure 19: disaster-safe durability latency from VA (ms)")
    rows = []
    for n in SITE_COUNTS:
        rec = results[n]
        rtt = Deployment(n_sites=n).topology.max_rtt_from(0)
        rows.append([
            "%d-sites" % n, rtt * 1000, rec.min * 1000, rec.p50 * 1000,
            rec.percentile(90) * 1000, rec.max * 1000,
        ])
    print(format_table(
        ["sites", "RTTmax", "min", "p50", "p90", "max"], rows
    ))
    print()
    print(format_cdf(results[4], n_points=10))
    print()
    print(format_site_observability(worlds[4]))

    # The trace-derived ds lag agrees with the client-observed latency:
    # the client adds one local notification hop on top of the span.
    report = compute_lag_report(worlds[4].obs.tracer, worlds[4].n_sites)
    traced = report.ds_durability[0]
    assert len(traced) > 50
    assert abs(traced.p50 - results[4].p50) < 0.010

    for n in SITE_COUNTS:
        rec = results[n]
        rtt = Deployment(n_sites=n).topology.max_rtt_from(0)
        assert len(rec) > 50
        # Approximately uniform on [RTTmax, 2*RTTmax]; the model adds a
        # few fixed milliseconds (batch serialization on the 22 Mbps
        # link, the remote WAL flush, and ack processing) on top.
        overhead = 0.020
        assert rec.min >= 0.9 * rtt
        assert rec.max <= 2.4 * rtt + overhead
        assert 1.2 * rtt <= rec.p50 <= 2.0 * rtt + overhead
    # Ordering across deployments follows RTTmax (82, 87, 261 ms).
    assert results[2].p50 < results[4].p50
    assert results[3].p50 < results[4].p50
