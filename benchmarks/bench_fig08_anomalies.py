"""Figure 8: anomalies allowed by each isolation property.

Regenerates the paper's anomaly table by executing every scenario against
the executable reference models and checks each cell against the printed
figure; then widens the figure along both axes (strict serializability
and NMSI columns; write skew and the two timing-anomaly rows) and checks
the extended matrix the same way.
"""

from repro.protocols.levels import LEVEL_LABELS
from repro.spec import (
    ANOMALY_NAMES,
    EXPECTED_TABLE,
    EXTENDED_ANOMALY_NAMES,
    EXTENDED_EXPECTED_TABLE,
    EXTENDED_ISOLATION_LEVELS,
    ISOLATION_LEVELS,
    anomaly_table,
    extended_anomaly_table,
)
from repro.bench import format_table


def test_fig08_anomaly_table(once):
    table = once(anomaly_table)

    rows = []
    for anomaly in ANOMALY_NAMES:
        rows.append(
            [anomaly.replace("_", " ")]
            + ["Yes" if table[anomaly][level] else "No" for level in ISOLATION_LEVELS]
        )
    print()
    print("Figure 8: anomalies allowed by each isolation property")
    print(format_table(["anomaly"] + list(ISOLATION_LEVELS), rows))

    assert table == EXPECTED_TABLE


def test_fig08_extended_anomaly_table(once):
    table = once(extended_anomaly_table)

    rows = []
    for anomaly in EXTENDED_ANOMALY_NAMES:
        rows.append(
            [anomaly.replace("_", " ")]
            + [
                "Yes" if table[anomaly][level] else "No"
                for level in EXTENDED_ISOLATION_LEVELS
            ]
        )
    print()
    print("Extended anomaly table: the protocol zoo's six levels")
    print(
        format_table(
            ["anomaly"]
            + [LEVEL_LABELS[level] for level in EXTENDED_ISOLATION_LEVELS],
            rows,
        )
    )

    assert table == EXTENDED_EXPECTED_TABLE
