"""Figure 8: anomalies allowed by each isolation property.

Regenerates the paper's anomaly table by executing every scenario against
the executable reference models and checks each cell against the printed
figure.
"""

from repro.spec import ANOMALY_NAMES, EXPECTED_TABLE, ISOLATION_LEVELS, anomaly_table
from repro.bench import format_table


def test_fig08_anomaly_table(once):
    table = once(anomaly_table)

    rows = []
    for anomaly in ANOMALY_NAMES:
        rows.append(
            [anomaly.replace("_", " ")]
            + ["Yes" if table[anomaly][level] else "No" for level in ISOLATION_LEVELS]
        )
    print()
    print("Figure 8: anomalies allowed by each isolation property")
    print(format_table(["anomaly"] + list(ISOLATION_LEVELS), rows))

    assert table == EXPECTED_TABLE
