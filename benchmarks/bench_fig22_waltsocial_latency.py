"""Figure 22: latency of WaltSocial operations under moderate load.

Paper shape: operations finish quickly because no transaction involves
cross-site communication (reads hit the local replica, updates use csets
and fast commit).  The 99.9-percentile of every operation is below 50 ms;
read-info touches the fewest objects and is the fastest.
"""

from repro.bench import format_table, run_closed_loop, walter_costs
from repro.deployment import Deployment
from repro.storage import FLUSH_EC2

from bench_fig21_waltsocial_tput import build_world, op_factory

OPS = ["read_info", "befriend", "status_update", "post_message"]


def run_all():
    latencies = {}
    for op_name in OPS:
        world, db, social, by_site = build_world()
        all_names = list(db.users)
        result = run_closed_loop(
            world,
            op_factory(social, by_site, all_names, op_name),
            clients_per_site=12,  # moderate load
            warmup=0.3,
            measure=1.0,
            name=op_name,
        )
        latencies[op_name] = result.latencies
    return latencies


def test_fig22_waltsocial_latency(once):
    latencies = once(run_all)

    print()
    print("Figure 22: WaltSocial operation latency (ms, moderate load)")
    rows = [
        [name, rec.p50 * 1000, rec.p99 * 1000, rec.p999 * 1000]
        for name, rec in latencies.items()
    ]
    print(format_table(["operation", "p50", "p99", "p99.9"], rows))

    for name in OPS:
        rec = latencies[name]
        assert len(rec) > 500
        # Paper: "The 99.9-percentile latency of all operations ... is
        # below 50 ms."
        assert rec.p999 < 0.050, (name, rec.p999)
        # No cross-site communication: median well under one WAN RTT.
        assert rec.p50 < 0.041
    # read-info involves the fewest objects and is the fastest.
    for other in ["befriend", "status_update", "post_message"]:
        assert latencies["read_info"].p50 <= latencies[other].p50
