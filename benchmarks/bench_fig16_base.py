"""Figure 16: base read/write transaction throughput, Walter vs Berkeley DB.

Paper (private-cluster primary + one async EC2 replica, 100-byte objects,
one object per transaction):

    Walter       read 72 Ktps    write 33.5 Ktps
    Berkeley DB  read 80 Ktps    write 32 Ktps

Shape requirements: comparable read throughput with Walter slightly lower
(it assigns a start vector and takes a local lock per transaction), and
comparable write throughput.
"""

from repro.baselines import build_bdb_pair
from repro.bench import (
    PAYLOAD,
    bdb_costs,
    format_table,
    paper_comparison,
    populate,
    read_tx_factory,
    run_closed_loop,
    run_closed_loop_raw,
    walter_costs,
    write_tx_factory,
)
from repro.deployment import Deployment
from repro.net import Host, Network, Topology
from repro.sim import Kernel
from repro.storage import FLUSH_WRITE_CACHING_ON

N_KEYS = 5000
PAPER = {
    ("walter", "read"): 72.0,
    ("walter", "write"): 33.5,
    ("bdb", "read"): 80.0,
    ("bdb", "write"): 32.0,
}


def walter_world():
    # Two sites as in §8.2 (primary in the private cluster, replica in
    # CA), updates issued at one site only.
    return Deployment(
        n_sites=2,
        costs=walter_costs("private"),
        flush_latency=FLUSH_WRITE_CACHING_ON,
        seed=16,
    )


def measure_walter(kind):
    world = walter_world()
    keys = populate(world, n_keys=N_KEYS)
    factory = (
        read_tx_factory(keys, 1) if kind == "read" else write_tx_factory(keys, 1)
    )
    clients = 64 if kind == "read" else 128
    return run_closed_loop(
        world, factory, sites=[0], clients_per_site=clients,
        warmup=0.1, measure=0.3, name="walter-%s" % kind,
    )


def measure_bdb(kind):
    kernel = Kernel()
    net = Network(kernel, Topology.ec2(2), jitter_frac=0.0)
    primary, replica = build_bdb_pair(
        kernel, net, costs=bdb_costs("private"), flush_latency=FLUSH_WRITE_CACHING_ON
    )
    # Populate.
    for i in range(N_KEYS):
        primary._install("key%d" % i, 0, PAYLOAD)

    def factory(client, rng):
        def op():
            key = "key%d" % rng.randrange(N_KEYS)
            if kind == "read":
                yield from client.call("bdb-primary", "get", key=key)
            else:
                yield from client.call("bdb-primary", "put", key=key, value=PAYLOAD)
            return kind

        return op

    n_clients = 64 if kind == "read" else 128
    clients = []
    for i in range(n_clients):
        c = Host(kernel, net, 0, "bdb-client-%d" % i)
        c.start()
        clients.append(c)
    return run_closed_loop_raw(
        kernel, clients, factory, warmup=0.1, measure=0.3, name="bdb-%s" % kind
    )


def run_all():
    return {
        ("walter", "read"): measure_walter("read").ktps,
        ("walter", "write"): measure_walter("write").ktps,
        ("bdb", "read"): measure_bdb("read").ktps,
        ("bdb", "write"): measure_bdb("write").ktps,
    }


def test_fig16_base_throughput(once):
    measured = once(run_all)

    print()
    print("Figure 16: base transaction throughput (Ktps)")
    print(
        paper_comparison(
            [
                ("%s %s tx" % (system, kind), PAPER[(system, kind)], measured[(system, kind)])
                for system, kind in PAPER
            ]
        )
    )

    # Shape: all magnitudes within 40% of the paper.
    for key, paper in PAPER.items():
        assert 0.6 * paper <= measured[key] <= 1.4 * paper, (key, measured[key])
    # Shape: BDB reads slightly faster than Walter reads; writes comparable.
    assert measured[("bdb", "read")] > measured[("walter", "read")]
    ratio = measured[("walter", "write")] / measured[("bdb", "write")]
    assert 0.8 <= ratio <= 1.3
