"""Wall-clock speed of the simulation substrate (not a paper figure).

Measures how fast the simulator itself runs -- wall-clock seconds and
kernel events per second -- on fixed workloads (see
``repro.bench.wallclock``): the Fig 17 mixed-throughput cell (untraced
and deep-traced, whose within-run ratio gates tracing overhead), the
chaos seed-corpus replay (which also asserts byte-identical verdicts),
and an 8-site write-scaling run.  Results are recorded in
``BENCH_wallclock.json`` at the repo root so the perf trajectory is
tracked across PRs.

Usage::

    # run and print (no file written)
    PYTHONPATH=src python benchmarks/bench_wallclock.py [--small]

    # record results under a label (baseline | optimized)
    PYTHONPATH=src python benchmarks/bench_wallclock.py \\
        --write BENCH_wallclock.json --label optimized

    # CI regression gate: fail if events/sec drops > tolerance vs the
    # committed "optimized" numbers
    PYTHONPATH=src python benchmarks/bench_wallclock.py \\
        --check BENCH_wallclock.json --tolerance 0.20 --small
"""

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.wallclock import SCENARIOS, run_scenarios  # noqa: E402


def _print_table(results):
    print("%-22s %10s %12s %14s  %s" % ("scenario", "wall s", "events", "events/s", "sim"))
    for name, out in results.items():
        print(
            "%-22s %10.3f %12d %14.1f  %s"
            % (name, out["wall_s"], out["events"], out["events_per_s"], out["sim"])
        )


def _load(path):
    if os.path.exists(path):
        with open(path) as fh:
            return json.load(fh)
    return {}


def _speedups(doc):
    base = doc.get("baseline", {}).get("scenarios", {})
    opt = doc.get("optimized", {}).get("scenarios", {})
    speedup = {}
    for name in base:
        if name in opt and opt[name]["wall_s"] > 0:
            speedup[name] = round(base[name]["wall_s"] / opt[name]["wall_s"], 2)
    return speedup


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="CI-sized workloads")
    parser.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS), default=None,
        help="run only this scenario (repeatable)",
    )
    parser.add_argument("--write", metavar="PATH", help="record results into PATH")
    parser.add_argument(
        "--label", default="optimized", choices=["baseline", "optimized"],
        help="which label to record under (with --write)",
    )
    parser.add_argument(
        "--check", metavar="PATH",
        help="compare events/sec against PATH's 'optimized' numbers; "
        "exit non-zero on regression beyond --tolerance",
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument(
        "--trace-overhead-max", type=float, default=0.20,
        help="max fractional events/sec drop of fig17_traced vs "
        "fig17_throughput in this invocation (relative, so it holds on "
        "any machine); exit non-zero beyond it",
    )
    parser.add_argument(
        "--repeats", type=int, default=4,
        help="repetitions per scenario; wall_s is the median, and every "
        "repeat must execute the identical simulated schedule",
    )
    parser.add_argument(
        "--shard-speedup-min", type=float, default=2.0,
        help="with shard_scaling selected: fail unless aggregate "
        "simulated throughput at 4 shards/site is >= this multiple of "
        "the 1-shard run (a simulated-schedule property, so it holds on "
        "any machine)",
    )
    parser.add_argument(
        "--parallel-speedup-min", type=float, default=None,
        help="with eight_site_scaling and eight_site_parallel both "
        "selected: fail unless parallel wall-clock speedup >= this",
    )
    parser.add_argument(
        "--batching-speedup-min", type=float, default=None,
        help="with eight_site_batching_ab selected: fail unless the "
        "batched arm's wall-clock speedup over the unbatched arm (same "
        "invocation, interleaved A/B) is >= this",
    )
    args = parser.parse_args(argv)

    results = run_scenarios(args.scenario, small=args.small, repeats=args.repeats)
    _print_table(results)

    status = 0
    # Tracing-overhead gate: both fig17 variants run the same simulated
    # schedule, so their events/sec ratio within this run is the cost of
    # deep tracing alone.
    if "fig17_throughput" in results and "fig17_traced" in results:
        plain = results["fig17_throughput"]["events_per_s"]
        traced = results["fig17_traced"]["events_per_s"]
        overhead = 1.0 - traced / plain
        verdict = "ok" if overhead <= args.trace_overhead_max else "REGRESSED"
        print(
            "tracing overhead: %.1f%% events/s drop (max %.0f%%) %s"
            % (overhead * 100.0, args.trace_overhead_max * 100.0, verdict)
        )
        if overhead > args.trace_overhead_max:
            status = 1
    # Dual-executor gate: the serial and parallel 8-site scenarios run
    # the identical workload, so their simulated outcomes must agree
    # exactly; their wall-clock ratio is the multi-core speedup.  On a
    # machine with fewer free cores than workers, measured wall-clock
    # cannot show the speedup (the workers time-slice), so the critical
    # path -- the busiest worker's CPU seconds -- is reported alongside
    # as the projected speedup with enough cores.
    parallel_speedup = None
    parallel_projected = None
    cpus = os.cpu_count() or 1
    if "eight_site_scaling" in results and "eight_site_parallel" in results:
        serial = results["eight_site_scaling"]
        par = results["eight_site_parallel"]
        fields = ("ops", "now", "metrics_sha256")
        agree = serial["events"] == par["events"] and all(
            serial["sim"][f] == par["sim"][f] for f in fields
        )
        parallel_speedup = round(serial["wall_s"] / par["wall_s"], 2)
        # Prefer the solo-replay critical path: each worker's cost when
        # replayed alone on a quiet core, i.e. what it costs with one
        # core per worker.  The live concurrent CPU is the fallback; it
        # over-counts on core-starved machines (time-slicing workers
        # pollute each other's caches).
        critical_path = (
            par["sim"].get("solo_max_cpu_s") or par["sim"]["max_worker_cpu_s"]
        )
        if critical_path > 0:
            # CPU-to-CPU: serial process CPU over the busiest worker's
            # thread CPU.  Both exclude descheduling, so the projection
            # is stable even when this machine is loaded or has fewer
            # cores than workers (where wall clocks are meaningless).
            serial_cost = serial["sim"].get("cpu_s") or serial["wall_s"]
            parallel_projected = round(serial_cost / critical_path, 2)
        print(
            "parallel executor: %s, speedup %.2fx measured on %d cpus"
            "%s (%d workers)"
            % (
                "equivalent" if agree else "DIVERGED",
                parallel_speedup,
                cpus,
                (
                    ", %.2fx projected from the %.1fs critical path"
                    % (parallel_projected, critical_path)
                    if parallel_projected is not None
                    else ""
                ),
                par["sim"]["workers"],
            )
        )
        if not agree:
            for f in fields:
                if serial["sim"][f] != par["sim"][f]:
                    print(
                        "  %s: serial=%s parallel=%s"
                        % (f, serial["sim"][f], par["sim"][f])
                    )
            if serial["events"] != par["events"]:
                print(
                    "  events: serial=%d parallel=%d"
                    % (serial["events"], par["events"])
                )
            status = 1
        if args.parallel_speedup_min is not None:
            # Gate on measured wall-clock when the machine has enough
            # cores to actually run the workers concurrently; otherwise
            # on the critical-path projection.
            workers = par["sim"]["workers"]
            effective = (
                parallel_speedup
                if cpus >= workers
                else (parallel_projected or parallel_speedup)
            )
            if effective < args.parallel_speedup_min:
                print(
                    "parallel speedup %.2fx below required %.2fx"
                    % (effective, args.parallel_speedup_min)
                )
                status = 1
    # Shard-scaling gate: per-shard servers bring their own cores and WAL
    # devices, so aggregate simulated throughput must scale with shards.
    if "shard_scaling" in results:
        speedup = results["shard_scaling"]["sim"]["speedup"]
        verdict = "ok" if speedup >= args.shard_speedup_min else "REGRESSED"
        print(
            "shard scaling: %.2fx aggregate throughput at 4 shards/site "
            "(min %.1fx) %s" % (speedup, args.shard_speedup_min, verdict)
        )
        if speedup < args.shard_speedup_min:
            status = 1
    # Batching A/B gate: both arms run in one invocation (interleaved),
    # so the wall ratio is machine-independent up to co-tenant noise that
    # hits both arms alike.  The simulated-throughput columns of the
    # fig17/shard A/B scenarios are schedule properties and must not
    # regress below parity.
    if "eight_site_batching_ab" in results:
        sim = results["eight_site_batching_ab"]["sim"]
        speedup = round(sim["wall_off_s"] / sim["wall_on_s"], 2)
        required = args.batching_speedup_min
        verdict = "ok" if required is None or speedup >= required else "REGRESSED"
        print(
            "batching A/B: %.2fx wall-clock speedup (off %.2fs / on %.2fs)%s %s"
            % (
                speedup,
                sim["wall_off_s"],
                sim["wall_on_s"],
                "" if required is None else " (min %.2fx)" % required,
                verdict,
            )
        )
        if required is not None and speedup < required:
            status = 1
    # Committed throughput is CPU/WAL-latency-bound under PSI (clients
    # never wait on propagation), so Ktps gates parity (within 2%); the
    # bandwidth batching frees from the cross-site pipes must be a real
    # gain (>= 2% fewer bytes on --small runs; full-size runs reach
    # ~1.2x) -- both are simulated-schedule properties, so they hold on
    # any machine.
    for ab in ("fig17_batching_ab", "shard_batching_ab"):
        if ab in results:
            sim = results[ab]["sim"]
            ok = sim["ktps_gain"] >= 0.98 and sim["bytes_gain"] >= 1.02
            print(
                "%s: simulated ktps %.3f -> %.3f (%.3fx, parity floor 0.98), "
                "cross-site bytes %d -> %d (%.2fx saved, floor 1.02) %s"
                % (
                    ab,
                    sim["ktps_off"],
                    sim["ktps_on"],
                    sim["ktps_gain"],
                    sim["bytes_off"],
                    sim["bytes_on"],
                    sim["bytes_gain"],
                    "ok" if ok else "REGRESSED",
                )
            )
            if not ok:
                status = 1
    if args.check:
        doc = _load(args.check)
        ref = doc.get("optimized", {}).get("scenarios", {})
        for name, out in results.items():
            if name not in ref:
                print("check: %s has no committed numbers, skipping" % name)
                continue
            committed = ref[name]["events_per_s"]
            floor = committed * (1.0 - args.tolerance)
            verdict = "ok" if out["events_per_s"] >= floor else "REGRESSED"
            print(
                "check: %-22s %14.1f ev/s vs committed %14.1f (floor %14.1f) %s"
                % (name, out["events_per_s"], committed, floor, verdict)
            )
            if out["events_per_s"] < floor:
                status = 1

    if args.write:
        doc = _load(args.write)
        merged = dict(doc.get(args.label, {}).get("scenarios", {}))
        merged.update(results)
        doc[args.label] = {
            "scenarios": merged,
            "small": args.small,
            "python": platform.python_version(),
        }
        speedup = _speedups(doc)
        if speedup:
            doc["speedup_wall_clock"] = speedup
        if parallel_speedup is not None:
            doc["parallel_executor"] = {
                "speedup_vs_serial_measured": parallel_speedup,
                "speedup_vs_serial_projected": parallel_projected,
                "max_worker_cpu_s": results["eight_site_parallel"]["sim"][
                    "max_worker_cpu_s"
                ],
                "solo_max_cpu_s": results["eight_site_parallel"]["sim"].get(
                    "solo_max_cpu_s"
                ),
                "cpus": cpus,
                "workers": results["eight_site_parallel"]["sim"]["workers"],
                "equivalent": True,
            }
        with open(args.write, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s (label=%s)" % (args.write, args.label))
        if speedup:
            print("wall-clock speedup vs baseline: %s" % speedup)

    return status


if __name__ == "__main__":
    sys.exit(main())
