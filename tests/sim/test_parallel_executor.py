"""Dual-executor determinism gates for the conservative parallel
executor (ISSUE 8).

The parallel executor's contract is *bit-identical schedules*: a serial
run and a run partitioned over any worker count must produce the same
canonical span digest, the same merged metrics snapshot, the same
execution-trace fingerprint, and the same PSI-checker verdict.  These
tests enforce that contract on the reference workloads, plus the
supporting invariants the executor depends on:

* per-directed-link jitter streams (a link's draws must not depend on
  traffic interleaving on other links);
* process-portable pickles (no ``PYTHONHASHSEED``-dependent cached
  hashes on the wire -- the bug class that silently breaks dict lookups
  in spawn workers);
* ``__reduce__`` roundtrips for every wire class the barrier exchange
  ships.
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro.bench.workloads import (
    fig17_mixed_scenario,
    fig18_write5_scenario,
    mixed_rw_scenario,
)
from repro.deployment import Deployment
from repro.sim.parallel import (
    canonical_verdict,
    partition_sites,
    run_scenario,
    serial_payloads,
    trace_fingerprint,
)

DEPLOY_KWARGS = dict(n_sites=4, seed=1234, tracing=True, trace=True)
PARAMS = dict(n_keys=80, measure=0.15)


def _serial(scenario_fn, deploy_kwargs, params):
    world = Deployment(**deploy_kwargs)
    sim = scenario_fn(world, **(params or {}))
    return serial_payloads(world, sim)


def _assert_equivalent(serial, parallel):
    assert serial.canonical_digest() == parallel.canonical_digest()
    assert serial.metrics_snapshot() == parallel.metrics_snapshot()
    assert serial.events_executed == parallel.events_executed
    assert round(serial.now, 12) == round(parallel.now, 12)
    s_trace, p_trace = serial.merged_trace(), parallel.merged_trace()
    assert trace_fingerprint(s_trace) == trace_fingerprint(p_trace)
    assert canonical_verdict(s_trace, serial.abandoned_versions) == canonical_verdict(
        p_trace, parallel.abandoned_versions
    )
    assert canonical_verdict(s_trace, serial.abandoned_versions) == []


class TestDualExecutorGate:
    @pytest.fixture(scope="class")
    def serial(self):
        return _serial(mixed_rw_scenario, DEPLOY_KWARGS, PARAMS)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_inline_workers_match_serial(self, serial, workers):
        parallel = run_scenario(
            "repro.bench.workloads:mixed_rw_scenario",
            deploy_kwargs=DEPLOY_KWARGS,
            params=PARAMS,
            workers=workers,
            mode="inline",
        )
        assert parallel.workers == workers
        _assert_equivalent(serial, parallel)

    def test_mp_replay_matches_serial_and_measures_solo_cost(self, serial):
        """The spawn-process path, in mp-replay mode: equivalence plus
        the contention-free critical-path measurement the wall-clock
        bench records."""
        parallel = run_scenario(
            "repro.bench.workloads:mixed_rw_scenario",
            deploy_kwargs=DEPLOY_KWARGS,
            params=PARAMS,
            workers=2,
            mode="mp-replay",
        )
        _assert_equivalent(serial, parallel)
        assert parallel.live_wall_s is not None and parallel.live_wall_s > 0
        solo = parallel.solo_cpu_s
        assert solo is not None and len(solo) == 2
        assert all(cpu > 0 for cpu in solo)

    @pytest.mark.parametrize(
        "scenario_fn,ref,params",
        [
            (
                fig17_mixed_scenario,
                "repro.bench.workloads:fig17_mixed_scenario",
                dict(n_keys=400, clients_per_site=4, warmup=0.05, measure=0.1,
                     settle=0.3),
            ),
            (
                fig18_write5_scenario,
                "repro.bench.workloads:fig18_write5_scenario",
                dict(n_keys=200, clients_per_site=4, warmup=0.05, measure=0.1,
                     settle=0.3),
            ),
        ],
        ids=["fig17-mixed", "fig18-write5"],
    )
    def test_figure_scenarios_gate(self, scenario_fn, ref, params):
        serial = _serial(scenario_fn, DEPLOY_KWARGS, params)
        parallel = run_scenario(
            ref, deploy_kwargs=DEPLOY_KWARGS, params=params,
            workers=2, mode="inline",
        )
        _assert_equivalent(serial, parallel)


SHARDED_KWARGS = dict(n_sites=2, shards=2, seed=1234, tracing=True, trace=True)


class TestShardedDualExecutorGate:
    """The dual-executor contract on a sharded topology (ISSUE 9): the
    parallel executor cuts clusters on base-site boundaries, so the LAN
    links between co-located shard servers never cross a cluster and the
    lookahead stays WAN-scale."""

    @pytest.fixture(scope="class")
    def serial(self):
        return _serial(mixed_rw_scenario, SHARDED_KWARGS, PARAMS)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_inline_workers_match_serial(self, serial, workers):
        parallel = run_scenario(
            "repro.bench.workloads:mixed_rw_scenario",
            deploy_kwargs=SHARDED_KWARGS,
            params=PARAMS,
            workers=workers,
            mode="inline",
        )
        # 2 base sites: worker counts clamp to base-aligned clusters.
        assert parallel.workers <= 2
        _assert_equivalent(serial, parallel)

    def test_mp_matches_serial(self, serial):
        parallel = run_scenario(
            "repro.bench.workloads:mixed_rw_scenario",
            deploy_kwargs=SHARDED_KWARGS,
            params=PARAMS,
            workers=2,
            mode="mp",
        )
        _assert_equivalent(serial, parallel)


class TestPartitioning:
    def test_balanced_contiguous(self):
        assert partition_sites(8, 4) == ((0, 1), (2, 3), (4, 5), (6, 7))
        assert partition_sites(5, 2) == ((0, 1, 2), (3, 4))
        assert partition_sites(3, 8) == ((0,), (1,), (2,))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            partition_sites(0, 2)

    def test_sharded_clusters_align_to_base_sites(self):
        """run_scenario with shards must never split a base site's shard
        servers across clusters (their LAN RTT would collapse the
        lookahead)."""
        from repro.net import Topology

        topo = Topology.sharded(Topology.ec2(4), 2)
        base_clusters = partition_sites(4, 2)
        clusters = tuple(
            tuple(b * 2 + k for b in members for k in range(2))
            for members in base_clusters
        )
        assert clusters == ((0, 1, 2, 3), (4, 5, 6, 7))
        # Crossing latency over these clusters is WAN-scale, not LAN.
        assert topo.min_crossing_latency_s(clusters) > 0.005


class TestJitterStreamIndependence:
    """One jitter stream per directed site link: a link's delivery times
    must be byte-identical whether or not other links carry traffic --
    the property that lets each cluster draw its own links' jitter
    without seeing the global send interleaving."""

    @staticmethod
    def _probe_delivery_times(with_cross_traffic):
        from repro.net import Network, Topology
        from repro.sim import Kernel, RandomStreams

        kernel = Kernel()
        net = Network(
            kernel, Topology.uniform(4, rtt_ms=80.0),
            streams=RandomStreams(7), jitter_frac=0.05,
        )
        boxes = [net.register("h%d" % s, s) for s in range(4)]
        if with_cross_traffic:
            for i in range(5):
                net.send("h2", "h3", ("noise", i), size_bytes=200)
            net.send("h3", "h0", ("noise", 5), size_bytes=200)
        for i in range(8):
            net.send("h0", "h1", ("probe", i), size_bytes=200)
        kernel.run()
        return [
            m.delivered_at for m in boxes[1]._items if m.payload[0] == "probe"
        ]

    def test_cross_traffic_does_not_move_link_draws(self):
        quiet = self._probe_delivery_times(False)
        noisy = self._probe_delivery_times(True)
        assert len(quiet) == 8
        assert quiet == noisy


_PICKLE_PROBE = r"""
import hashlib, pickle
from repro.core.objects import ObjectId, ObjectKind
from repro.core.transaction import CommitRecord
from repro.core.updates import CSetAdd, DataUpdate
from repro.core.versions import VectorTimestamp, Version
from repro.net.network import Envelope
from repro.net.rpc import Cast, RpcReply, RpcRequest

oid = ObjectId("bench-site0", "k17")
cset = ObjectId("bench-site0", "s3", ObjectKind.CSET)
record = CommitRecord(
    tid="tx-9", site=1, seqno=4,
    start_vts=VectorTimestamp._wrap((3, 1, 0)),
    updates=[DataUpdate(oid, b"x" * 20), CSetAdd(cset, "elem")],
    committed_at=0.125,
)
objects = [
    oid,
    Version(2, 7),
    VectorTimestamp._wrap((1, 2, 3)),
    record,
    Cast("propagate", {"records": [record]}, "walter-1"),
    RpcRequest(3, "tx_read", {"oid": oid}, "client-0", None),
    RpcReply(3, b"value", None),
    Envelope(0.04, 0, 1, 1, "walter-0", "walter-1",
             Cast("ping", {}, "walter-0"), 256, 0.0),
]
blob = pickle.dumps(objects, pickle.HIGHEST_PROTOCOL)
print(hashlib.sha256(blob).hexdigest())
"""


class TestProcessPortablePickles:
    def test_wire_pickles_independent_of_hashseed(self):
        """Regression for the cached-hash-on-the-wire bug: the pickled
        bytes of every wire class must be identical across processes
        with different ``PYTHONHASHSEED`` (spawn workers inherit the
        parent's seed only by accident; the wire format must not care)."""
        digests = set()
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        for seed in ("0", "1", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.path.abspath(src)
            out = subprocess.run(
                [sys.executable, "-c", _PICKLE_PROBE],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1, digests

    def test_objectid_unpickles_into_same_bucket(self):
        """An unpickled ObjectId must land in the same dict bucket as a
        locally minted equal id (the cached hash is recomputed, never
        shipped)."""
        from repro.core.objects import ObjectId

        local = ObjectId("c", "k1")
        shipped = pickle.loads(pickle.dumps(local))
        assert hash(shipped) == hash(local)
        assert {local: 1}[shipped] == 1

    def test_reduce_roundtrips(self):
        from repro.core.objects import ObjectId, ObjectKind
        from repro.core.transaction import CommitRecord
        from repro.core.updates import CSetAdd, CSetDel, DataUpdate
        from repro.core.versions import VectorTimestamp, Version
        from repro.net.network import Envelope
        from repro.net.rpc import Cast, RpcReply, RpcRequest

        oid = ObjectId("cont", "obj-3")
        cset = ObjectId("cont", "set-1", ObjectKind.CSET)
        vts = VectorTimestamp._wrap((4, 0, 9))
        samples = [
            oid,
            Version(1, 12),
            vts,
            DataUpdate(oid, b"payload"),
            CSetAdd(cset, "e1"),
            CSetDel(cset, "e2"),
            CommitRecord("tx-1", 0, 5, vts, [DataUpdate(oid, b"p")], 1.5),
            RpcRequest(7, "m", {"a": 1}, "h0", None),
            RpcReply(7, "v", None),
            Cast("m", {"a": 1}, "h0"),
            Envelope(0.08, 2, 3, 9, "a", "b", Cast("m", {}, "a"), 128, 0.04),
        ]
        for obj in samples:
            clone = pickle.loads(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))
            assert clone == obj, obj

    def test_commit_record_version_cache_not_shipped(self):
        from repro.core.transaction import CommitRecord
        from repro.core.versions import VectorTimestamp

        record = CommitRecord("tx-2", 1, 3, VectorTimestamp.zeros(3), [], 0.5)
        _ = record.version  # populate the lazy cache
        clone = pickle.loads(pickle.dumps(record))
        assert clone._version is None
        assert clone.version == record.version


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
