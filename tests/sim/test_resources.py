"""Unit tests for simulation synchronization primitives."""

import pytest

from repro.sim import Kernel, Lock, Resource, Semaphore, SimError, Store


def test_lock_mutual_exclusion_and_fifo():
    kernel = Kernel()
    lock = Lock(kernel)
    trace = []

    def worker(tag, hold):
        yield lock.acquire()
        trace.append(("in", tag, kernel.now))
        yield kernel.timeout(hold)
        trace.append(("out", tag, kernel.now))
        lock.release()

    kernel.spawn(worker("a", 2.0))
    kernel.spawn(worker("b", 1.0))
    kernel.spawn(worker("c", 1.0))
    kernel.run()
    assert trace == [
        ("in", "a", 0.0),
        ("out", "a", 2.0),
        ("in", "b", 2.0),
        ("out", "b", 3.0),
        ("in", "c", 3.0),
        ("out", "c", 4.0),
    ]


def test_lock_release_unheld_raises():
    kernel = Kernel()
    lock = Lock(kernel)
    with pytest.raises(SimError):
        lock.release()


def test_resource_capacity_two_admits_two():
    kernel = Kernel()
    res = Resource(kernel, capacity=2)
    finish_times = {}

    def worker(tag):
        yield from res.use(10.0)
        finish_times[tag] = kernel.now

    for tag in ["a", "b", "c"]:
        kernel.spawn(worker(tag))
    kernel.run()
    assert finish_times == {"a": 10.0, "b": 10.0, "c": 20.0}


def test_resource_queue_length_and_utilization():
    kernel = Kernel()
    res = Resource(kernel, capacity=1)

    def worker():
        yield from res.use(5.0)

    def observer():
        yield kernel.timeout(1.0)
        return (res.in_use, res.queue_length)

    kernel.spawn(worker())
    kernel.spawn(worker())
    obs = kernel.spawn(observer())
    kernel.run()
    assert obs.value == (1, 1)
    assert res.utilization(kernel.now) == pytest.approx(1.0)


def test_resource_invalid_capacity():
    kernel = Kernel()
    with pytest.raises(ValueError):
        Resource(kernel, capacity=0)


def test_resource_release_idle_raises():
    kernel = Kernel()
    res = Resource(kernel, capacity=1)
    with pytest.raises(SimError):
        res.release()


def test_store_put_then_get():
    kernel = Kernel()
    store = Store(kernel)
    store.put("x")

    def getter():
        item = yield store.get()
        return item

    assert kernel.run_process(getter()) == "x"


def test_store_get_blocks_until_put():
    kernel = Kernel()
    store = Store(kernel)

    def getter():
        item = yield store.get()
        return (item, kernel.now)

    def putter():
        yield kernel.timeout(4.0)
        store.put("late")

    proc = kernel.spawn(getter())
    kernel.spawn(putter())
    kernel.run()
    assert proc.value == ("late", 4.0)


def test_store_fifo_order():
    kernel = Kernel()
    store = Store(kernel)
    for i in range(3):
        store.put(i)

    def getter():
        out = []
        for _ in range(3):
            item = yield store.get()
            out.append(item)
        return out

    assert kernel.run_process(getter()) == [0, 1, 2]


def test_store_drain_and_nowait():
    kernel = Kernel()
    store = Store(kernel)
    store.put(1)
    store.put(2)
    assert store.get_nowait() == 1
    assert store.drain() == [2]
    assert len(store) == 0
    with pytest.raises(SimError):
        store.get_nowait()


def test_semaphore_counts():
    kernel = Kernel()
    sem = Semaphore(kernel, value=2)
    admitted = []

    def worker(tag):
        yield sem.acquire()
        admitted.append((tag, kernel.now))
        yield kernel.timeout(1.0)
        sem.release()

    for tag in ["a", "b", "c"]:
        kernel.spawn(worker(tag))
    kernel.run()
    assert admitted == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_semaphore_negative_value_rejected():
    kernel = Kernel()
    with pytest.raises(ValueError):
        Semaphore(kernel, value=-1)
