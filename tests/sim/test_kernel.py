"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Kernel, SimError, Timeout


def test_timeout_advances_clock():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(5.0)
        return kernel.now

    assert kernel.run_process(proc()) == 5.0


def test_zero_delay_timeout_runs_same_time():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(0.0)
        return kernel.now

    assert kernel.run_process(proc()) == 0.0


def test_negative_timeout_rejected():
    kernel = Kernel()
    with pytest.raises(ValueError):
        kernel.timeout(-1.0)


def test_process_return_value():
    kernel = Kernel()

    def child():
        yield kernel.timeout(1.0)
        return "result"

    def parent():
        value = yield kernel.spawn(child())
        return value

    assert kernel.run_process(parent()) == "result"


def test_join_already_finished_process():
    kernel = Kernel()

    def child():
        yield kernel.timeout(1.0)
        return 42

    def parent():
        proc = kernel.spawn(child())
        yield kernel.timeout(10.0)
        assert proc.done
        value = yield proc
        return value

    assert kernel.run_process(parent()) == 42


def test_event_trigger_wakes_waiters():
    kernel = Kernel()
    event = kernel.event()
    results = []

    def waiter(tag):
        value = yield event
        results.append((tag, value, kernel.now))

    def trigger():
        yield kernel.timeout(3.0)
        event.trigger("go")

    kernel.spawn(waiter("a"))
    kernel.spawn(waiter("b"))
    kernel.spawn(trigger())
    kernel.run()
    assert results == [("a", "go", 3.0), ("b", "go", 3.0)]


def test_event_double_trigger_is_error():
    kernel = Kernel()
    event = kernel.event()
    event.trigger(1)
    with pytest.raises(SimError):
        event.trigger(2)
    assert event.trigger_once(3) is False


def test_event_fail_raises_in_waiter():
    kernel = Kernel()
    event = kernel.event()

    def waiter():
        try:
            yield event
        except RuntimeError as exc:
            return "caught:%s" % exc
        return "no exception"

    def failer():
        yield kernel.timeout(1.0)
        event.fail(RuntimeError("boom"))

    proc = kernel.spawn(waiter())
    kernel.spawn(failer())
    kernel.run()
    assert proc.value == "caught:boom"


def test_exception_propagates_to_joiner():
    kernel = Kernel()

    def child():
        yield kernel.timeout(1.0)
        raise ValueError("child failed")

    def parent():
        try:
            yield kernel.spawn(child())
        except ValueError as exc:
            return str(exc)

    assert kernel.run_process(parent()) == "child failed"


def test_orphan_exception_surfaces_from_run():
    kernel = Kernel()

    def bad():
        yield kernel.timeout(1.0)
        raise ValueError("orphan")

    kernel.spawn(bad())
    with pytest.raises(ValueError, match="orphan"):
        kernel.run()


def test_same_time_events_fire_in_schedule_order():
    kernel = Kernel()
    order = []

    def proc(tag):
        yield kernel.timeout(1.0)
        order.append(tag)

    for tag in ["first", "second", "third"]:
        kernel.spawn(proc(tag))
    kernel.run()
    assert order == ["first", "second", "third"]


def test_run_until_stops_clock():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(100.0)

    kernel.spawn(proc())
    stopped_at = kernel.run(until=10.0)
    assert stopped_at == 10.0
    assert kernel.now == 10.0


def test_run_until_past_queue_end_advances_clock():
    kernel = Kernel()
    assert kernel.run(until=50.0) == 50.0


def test_cannot_schedule_in_past():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(5.0)
        with pytest.raises(SimError):
            kernel.call_at(1.0, lambda: None)

    kernel.run_process(proc())


def test_yield_non_waitable_is_error():
    kernel = Kernel()

    def bad():
        yield 42

    def parent():
        try:
            yield kernel.spawn(bad())
        except SimError as exc:
            return "caught: %s" % exc

    assert "not a Waitable" in kernel.run_process(parent())


def test_all_of_collects_results_in_order():
    kernel = Kernel()

    def child(delay, value):
        yield kernel.timeout(delay)
        return value

    def parent():
        procs = [kernel.spawn(child(3.0, "slow")), kernel.spawn(child(1.0, "fast"))]
        values = yield AllOf(procs)
        return (values, kernel.now)

    values, now = kernel.run_process(parent())
    assert values == ["slow", "fast"]
    assert now == 3.0


def test_all_of_empty_completes_immediately():
    kernel = Kernel()

    def parent():
        values = yield AllOf([])
        return values

    assert kernel.run_process(parent()) == []


def test_any_of_returns_first():
    kernel = Kernel()

    def child(delay, value):
        yield kernel.timeout(delay)
        return value

    def parent():
        procs = [kernel.spawn(child(3.0, "slow")), kernel.spawn(child(1.0, "fast"))]
        index, value = yield AnyOf(procs)
        return (index, value, kernel.now)

    assert kernel.run_process(parent()) == (1, "fast", 1.0)


def test_interrupt_raises_in_process():
    kernel = Kernel()

    def sleeper():
        try:
            yield kernel.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", intr.cause, kernel.now)
        return "finished"

    def interrupter(target):
        yield kernel.timeout(2.0)
        target.interrupt("shutdown")

    proc = kernel.spawn(sleeper())
    kernel.spawn(interrupter(proc))
    kernel.run()
    assert proc.value == ("interrupted", "shutdown", 2.0)


def test_interrupt_after_done_is_noop():
    kernel = Kernel()

    def quick():
        yield kernel.timeout(1.0)
        return "ok"

    proc = kernel.spawn(quick())
    kernel.run()
    proc.interrupt()
    kernel.run()
    assert proc.value == "ok"


def test_deterministic_replay():
    def build_and_run():
        kernel = Kernel()
        trace = []

        def proc(tag, delay):
            yield kernel.timeout(delay)
            trace.append((tag, kernel.now))
            yield kernel.timeout(delay)
            trace.append((tag, kernel.now))

        kernel.spawn(proc("a", 1.5))
        kernel.spawn(proc("b", 1.5))
        kernel.spawn(proc("c", 0.5))
        kernel.run()
        return trace

    assert build_and_run() == build_and_run()


def test_process_value_before_done_raises():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(1.0)

    handle = kernel.spawn(proc())
    with pytest.raises(SimError):
        _ = handle.value


def test_timeout_carries_value():
    kernel = Kernel()

    def proc():
        value = yield Timeout(1.0, value="payload")
        return value

    assert kernel.run_process(proc()) == "payload"
