"""Golden-digest schedule regression (ISSUE 5 satellite).

These tests pin a cryptographic digest of the *ordered* event trace of
two fixed workloads -- a multi-site transactional run and a seeded chaos
run with faults -- against values recorded before the kernel fast-lane /
propagation-index optimizations landed.  Any change that perturbs the
simulated schedule (event ordering, timing, RNG draw order) changes the
digest; wall-clock-only optimizations must keep it bit-for-bit stable.

If one of these digests changes, the simulator's *behaviour* changed:
either you introduced nondeterminism, or you reordered events.  Do not
re-pin the constant without understanding exactly why -- every figure
benchmark and the chaos corpus verdicts move with it.
"""

import hashlib

from repro.bench import PAYLOAD, populate, run_closed_loop
from repro.chaos import ChaosConfig, run_chaos
from repro.deployment import Deployment
from repro.obs import trace_events_jsonl

# Digests re-recorded when network jitter moved from one shared RNG
# stream to a per-directed-link stream ("net.jitter.<src>-<dst>"),
# which the parallel executor needs: a link's jitter draws must not
# depend on which other links' messages interleave with it.  The
# re-pin changed RNG draw *assignment*, not protocol behavior -- the
# chaos corpus was re-recorded in the same commit and still passes.
WORKLOAD_DIGEST = "4fe953e7ad001eae7fccaa5061bb54944278dab9e8adbba65930316996197ad3"
CHAOS_DIGEST = "88820c4d23e653fff46cd69fd8a048e88b6ab75234a59b4ae602e3ea5ea2194b"


def run_digest_workload(tracing=True, **deploy_kwargs):
    """Run the fixed 3-site read/write workload; returns the settled
    world."""
    world = Deployment(n_sites=3, seed=1234, tracing=tracing, **deploy_kwargs)
    keys = populate(world, n_keys=120)

    def factory(client, rng):
        site = client.site.id

        def op():
            tx = client.start_tx()
            oid = rng.choice(keys.by_site[site])
            yield from client.read(tx, oid)
            if rng.random() < 0.4:
                remote = keys.by_site[(site + 1) % world.n_sites]
                yield from client.write(tx, rng.choice(remote), PAYLOAD)
            yield from client.write(tx, oid, PAYLOAD)
            status = yield from client.commit(tx)
            return status

        return op

    run_closed_loop(
        world, factory, clients_per_site=3, warmup=0.05, measure=0.3,
        name="digest", seed=99,
    )
    world.settle(1.0)
    return world


def workload_digest(**deploy_kwargs) -> str:
    """Run the fixed workload with tracing on and hash the ordered
    (time, host-site, event-kind, tid) span stream plus the final
    simulated clock."""
    world = run_digest_workload(tracing=True, **deploy_kwargs)
    stream = trace_events_jsonl(world.obs.tracer)
    blob = stream + "\nnow=%.9f" % world.kernel.now
    return hashlib.sha256(blob.encode()).hexdigest()


def chaos_digest() -> str:
    """Run a fixed generated chaos schedule (faults included) and hash
    its canonical verdict, which embeds oracle results and the exact
    simulated end time."""
    result = run_chaos(ChaosConfig(seed=9))
    return hashlib.sha256(result.verdict_json().encode()).hexdigest()


class TestScheduleDigest:
    def test_workload_schedule_digest_pinned(self):
        assert workload_digest() == WORKLOAD_DIGEST

    def test_chaos_schedule_digest_pinned(self):
        assert chaos_digest() == CHAOS_DIGEST

    def test_batching_off_digest_identical(self):
        """``batching=None`` (explicitly off) must take the exact
        unbatched code path -- no window, no encoded casts, no
        coalescing indirection -- so the pinned digest holds
        bit-for-bit with the knob spelled out."""
        assert workload_digest(batching=None) == WORKLOAD_DIGEST

    def test_single_shard_digest_identical_to_unsharded(self):
        """``shards=1`` must take the exact pre-sharding code path --
        same topology object, no routing indirection -- so the pinned
        digest holds bit-for-bit with sharding explicitly requested."""
        assert workload_digest(shards=1) == WORKLOAD_DIGEST

    def test_tracing_mode_does_not_perturb_schedule(self):
        """Span tracing (lifecycle or deep) is recording-only: every
        tracing mode must execute the identical simulated schedule --
        same kernel event count, same final clock -- as tracing off."""
        fingerprints = {}
        for tracing in (False, True, "deep"):
            world = run_digest_workload(tracing=tracing)
            fingerprints[tracing] = (
                world.kernel.events_executed,
                round(world.kernel.now, 12),
            )
        assert fingerprints[False] == fingerprints[True] == fingerprints["deep"]


if __name__ == "__main__":
    print("WORKLOAD_DIGEST = %r" % workload_digest())
    print("CHAOS_DIGEST = %r" % chaos_digest())
