"""Model-based testing: run the real distributed implementation under
randomized workloads (and schedule jitter), record the execution trace,
and check the three PSI properties of §3.2 with the spec checker.

This is the central correctness argument of the reproduction: whatever
schedules the simulator produces, every committed execution must satisfy
Site Snapshot Reads, No Write-Write Conflicts, and Commit Causality.
"""

import random

import pytest

from repro.core import ObjectKind
from repro.deployment import Deployment
from repro.spec import check_trace
from repro.storage import FLUSH_MEMORY


def run_random_workload(
    seed: int,
    n_sites: int = 3,
    n_clients_per_site: int = 2,
    n_objects: int = 6,
    n_csets: int = 2,
    txs_per_client: int = 12,
    inject_partition: bool = False,
):
    world = Deployment(
        n_sites=n_sites, flush_latency=FLUSH_MEMORY, seed=seed, trace=True,
        jitter_frac=0.10,
    )
    for site in range(n_sites):
        world.create_container("c%d" % site, preferred_site=site)
    rng = random.Random(seed)
    oids = [
        world.config.container("c%d" % rng.randrange(n_sites)).new_id()
        for _ in range(n_objects)
    ]
    csets = [
        world.config.container("c%d" % rng.randrange(n_sites)).new_id(ObjectKind.CSET)
        for _ in range(n_csets)
    ]

    def client_loop(client, crng):
        outcomes = []
        for _ in range(txs_per_client):
            yield client.kernel.timeout(crng.random() * 0.05)
            tx = client.start_tx()
            try:
                for _op in range(crng.randint(1, 4)):
                    kind = crng.random()
                    if kind < 0.45:
                        oid = crng.choice(oids)
                        yield from client.read(tx, oid)
                    elif kind < 0.75:
                        oid = crng.choice(oids)
                        yield from client.write(
                            tx, oid, ("%s" % crng.random()).encode()
                        )
                    elif kind < 0.9:
                        yield from client.set_add(tx, crng.choice(csets), crng.randrange(5))
                    else:
                        yield from client.set_del(tx, crng.choice(csets), crng.randrange(5))
                status = yield from client.commit(tx)
                outcomes.append(status)
            except Exception:
                outcomes.append("ERROR")
        return outcomes

    procs = []
    for site in range(n_sites):
        for c in range(n_clients_per_site):
            client = world.new_client(site)
            crng = random.Random(seed * 1000 + site * 10 + c)
            procs.append(world.kernel.spawn(client_loop(client, crng)))

    if inject_partition:
        def partitioner():
            yield world.kernel.timeout(0.2)
            world.network.partition(0, 1)
            yield world.kernel.timeout(0.5)
            world.network.heal(0, 1)

        world.kernel.spawn(partitioner())

    world.run(until=30.0)
    world.settle(5.0)
    assert all(p.done for p in procs)
    committed = sum(p.value.count("COMMITTED") for p in procs)
    return world, committed


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_workload_satisfies_psi(seed):
    world, committed = run_random_workload(seed)
    assert committed > 0
    violations = check_trace(world.trace)
    assert violations == [], "\n".join(str(v) for v in violations)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_random_workload_with_partition_satisfies_psi(seed):
    world, committed = run_random_workload(seed, inject_partition=True)
    assert committed > 0
    violations = check_trace(world.trace)
    assert violations == [], "\n".join(str(v) for v in violations)


def test_heavy_contention_single_object_satisfies_psi():
    # Every client hammers one object: heavy aborts, but PSI must hold.
    world = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY, seed=42, trace=True)
    world.create_container("hot", preferred_site=0)
    oid = world.config.container("hot").new_id()
    statuses = []

    def hammer(client, crng):
        for _ in range(15):
            yield client.kernel.timeout(crng.random() * 0.02)
            tx = client.start_tx()
            yield from client.read(tx, oid)
            yield from client.write(tx, oid, ("%s" % crng.random()).encode())
            status = yield from client.commit(tx)
            statuses.append(status)

    for site in range(2):
        for c in range(3):
            world.kernel.spawn(hammer(world.new_client(site), random.Random(site * 7 + c)))
    world.run(until=30.0)
    world.settle(5.0)
    assert "COMMITTED" in statuses
    assert "ABORTED" in statuses  # contention produced conflicts
    violations = check_trace(world.trace)
    assert violations == [], "\n".join(str(v) for v in violations)


def test_cset_contention_commits_everything():
    # The same contention on a cset aborts nothing (conflict-freedom).
    world = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY, seed=43, trace=True)
    world.create_container("hot", preferred_site=0)
    cset_oid = world.config.container("hot").new_id(ObjectKind.CSET)
    statuses = []

    def hammer(client, crng):
        for _ in range(15):
            yield client.kernel.timeout(crng.random() * 0.02)
            tx = client.start_tx()
            if crng.random() < 0.5:
                yield from client.set_add(tx, cset_oid, crng.randrange(3))
            else:
                yield from client.set_del(tx, cset_oid, crng.randrange(3))
            statuses.append((yield from client.commit(tx)))

    for site in range(2):
        for c in range(3):
            world.kernel.spawn(hammer(world.new_client(site), random.Random(site * 9 + c)))
    world.run(until=30.0)
    world.settle(5.0)
    assert statuses and all(s == "COMMITTED" for s in statuses)
    violations = check_trace(world.trace)
    assert violations == [], "\n".join(str(v) for v in violations)


def test_cset_replicas_converge_to_same_counts():
    world, _ = run_random_workload(seed=77, n_objects=2, n_csets=3)
    world.settle(10.0)
    # After settling, all sites agree on every cset's counts at their
    # committed frontier.
    csets = [
        oid for oid in world.servers[0].histories.known_oids() if oid.is_cset
    ]
    for oid in csets:
        values = []
        for server in world.servers:
            values.append(
                server.histories.read_cset(oid, server.committed_vts).counts()
            )
        assert all(v == values[0] for v in values), "divergent cset %s: %r" % (oid, values)
