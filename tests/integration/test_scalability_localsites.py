"""§5.8 scalability: multiple "local sites" per data center.

"A simple way to scale the system is to divide a data center into
several local sites, each with its own server, and then partition the
objects across the local sites in the data center ... Walter supports
partial replication and allows transactions to operate on an object not
replicated at the site -- in which case, the transaction accesses the
object at another site within the same data center."
"""

import pytest

from repro.core import ObjectKind
from repro.deployment import Deployment
from repro.net import Topology
from repro.storage import FLUSH_MEMORY


def make_datacenter_world(sites_per_dc=(2, 1)):
    topo = Topology.datacenters(sites_per_dc, wan_rtt_ms=85.0, lan_rtt_ms=0.3)
    world = Deployment(topology=topo, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    return world


def test_datacenter_topology_latencies():
    topo = Topology.datacenters([2, 2])
    assert len(topo) == 4
    assert topo.rtt(0, 1) == pytest.approx(0.0003)   # same DC: LAN
    assert topo.rtt(0, 2) == pytest.approx(0.085)    # cross DC: WAN
    assert topo.dc_of[0] == topo.dc_of[1] == 0
    assert topo.dc_of[2] == topo.dc_of[3] == 1


def test_partitioned_objects_accessible_across_local_sites():
    # DC0 has local sites 0 and 1; an object partitioned to local site 1
    # (not replicated at 0) is read from local site 0 via a LAN fetch.
    world = make_datacenter_world((2, 1))
    world.create_container("p", preferred_site=1, replica_sites={1, 2})
    client0 = world.new_client(0)
    client1 = world.new_client(1)
    oid = client1.new_id("p")

    def writer():
        tx = client1.start_tx()
        yield from client1.write(tx, oid, b"partitioned")
        return (yield from client1.commit(tx))

    assert world.run_process(writer()) == "COMMITTED"
    world.settle(1.0)

    def lan_reader():
        tx = client0.start_tx()
        start = world.kernel.now
        value = yield from client0.read(tx, oid)
        elapsed = world.kernel.now - start
        yield from client0.commit(tx)
        return (value, elapsed)

    value, elapsed = world.run_process(lan_reader())
    assert value == b"partitioned"
    # The remote fetch crossed the LAN, not the WAN.
    assert elapsed < 0.005


def test_writes_partition_across_local_site_commit_locks():
    # Two local sites in DC0: writes to each partition fast-commit on
    # their own server, so the data center's aggregate write capacity has
    # two independent commit locks (the §5.8 scaling argument).
    world = make_datacenter_world((2, 1))
    world.create_container("part0", preferred_site=0, replica_sites={0, 1, 2})
    world.create_container("part1", preferred_site=1, replica_sites={0, 1, 2})
    client_a = world.new_client(0)
    client_b = world.new_client(1)
    oid_a = client_a.new_id("part0")
    oid_b = client_b.new_id("part1")

    def writer(client, oid):
        statuses = []
        for _ in range(5):
            tx = client.start_tx()
            yield from client.write(tx, oid, b"x")
            statuses.append((yield from client.commit(tx)))
        return statuses

    pa = world.kernel.spawn(writer(client_a, oid_a))
    pb = world.kernel.spawn(writer(client_b, oid_b))
    world.run(until=10.0)
    assert pa.value == ["COMMITTED"] * 5
    assert pb.value == ["COMMITTED"] * 5
    # Each local server committed its own partition's writes.
    assert world.server(0).stats.commits >= 5
    assert world.server(1).stats.commits >= 5
    assert world.server(0).stats.slow_commit_attempts == 0
    assert world.server(1).stats.slow_commit_attempts == 0


def test_divergence_hidden_when_user_pinned_to_local_site():
    # §5.8: "applications can be designed so that a user always logs into
    # the same local site in the data center" -- a user pinned to local
    # site 0 always observes her own writes in order.
    world = make_datacenter_world((2, 1))
    world.create_container("u", preferred_site=0)
    client = world.new_client(0)
    oid = client.new_id("u")

    def session():
        values = []
        for i in range(4):
            tx = client.start_tx()
            yield from client.write(tx, oid, b"v%d" % i)
            yield from client.commit(tx)
            tx2 = client.start_tx()
            values.append((yield from client.read(tx2, oid)))
            yield from client.commit(tx2)
        return values

    assert world.run_process(session()) == [b"v0", b"v1", b"v2", b"v3"]


def test_cross_dc_propagation_still_works():
    world = make_datacenter_world((2, 1))
    world.create_container("c", preferred_site=0)
    client0 = world.new_client(0)
    client2 = world.new_client(2)  # the other data center
    oid = client0.new_id("c")

    def writer():
        tx = client0.start_tx()
        yield from client0.write(tx, oid, b"wan")
        return (yield from client0.commit(tx))

    assert world.run_process(writer()) == "COMMITTED"
    world.settle(1.0)

    def reader():
        tx = client2.start_tx()
        value = yield from client2.read(tx, oid)
        yield from client2.commit(tx)
        return value

    assert world.run_process(reader()) == b"wan"


def test_periodic_gc_prunes_histories():
    world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY)
    world.create_container("c", preferred_site=0)
    world.server(0).start_gc(interval=0.5)
    client = world.new_client(0)
    oid = client.new_id("c")

    def writes():
        for i in range(6):
            tx = client.start_tx()
            yield from client.write(tx, oid, b"v%d" % i)
            yield from client.commit(tx)

    world.run_process(writes())
    world.settle(1.0)  # at least one GC tick
    assert world.server(0).stats.gc_removed >= 5
    assert len(world.server(0).histories.history(oid)) == 1
