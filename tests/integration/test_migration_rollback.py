"""Rollback path of ``Deployment.migrate_preferred_site`` (ISSUE 9
bugfix).

The migration suspends the container's fast-commit lease, waits for the
target to catch up, and grants.  On *any* failure -- timeout, target
crash, or the driving generator being killed -- the old site's lease
must come back exactly once, and at no point may two sites hold it
(dual fast-commit would break the PSI conflict check).
"""

import pytest

from repro.chaos import FaultEvent, FaultInjector, Schedule
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


def make_world(n_sites=3):
    world = Deployment(
        n_sites=n_sites, flush_latency=FLUSH_MEMORY, seed=11, jitter_frac=0.0
    )
    for site in range(n_sites):
        world.create_container("c%d" % site, preferred_site=site)
    return world


def holder(world, cid):
    return world.config._lease_holder.get(cid)


def test_successful_migration_moves_lease_once():
    world = make_world()
    world.run_process(world.migrate_preferred_site("c0", 1))
    assert world.config.container("c0").preferred_site == 1
    assert holder(world, "c0") == 1


def test_timeout_rolls_back_to_old_site():
    world = make_world()
    world.crash_server(1)
    with pytest.raises(TimeoutError):
        world.run_process(world.migrate_preferred_site("c0", 1, within=1.0))
    assert world.config.container("c0").preferred_site == 0
    assert holder(world, "c0") == 0


def test_target_crash_mid_catchup_rolls_back():
    """Crash the target while the migration is waiting for it to catch
    up: the old lease must be restored (exactly once) and the container
    must fast-commit at the old site again afterwards."""
    world = make_world()
    client = world.new_client(0)
    oid = world.config.container("c0").new_id()

    def write(value):
        tx = client.start_tx()
        yield from client.write(tx, oid, value)
        return (yield from client.commit(tx))

    assert world.run_process(write(b"before")) == "COMMITTED"

    # Block 0 -> 1 propagation so the catch-up wait cannot complete.
    world.network.partition(0, 1)
    failures = []

    def driver():
        try:
            yield from world.migrate_preferred_site("c0", 1, within=2.0)
        except TimeoutError as exc:
            failures.append(exc)

    migration = world.kernel.spawn(driver(), name="migration")
    # Mid-handover: lease suspended, no site holds it.
    world.run(until=world.kernel.now + 0.05)
    assert holder(world, "c0") is None
    world.crash_server(1)
    world.run(until=world.kernel.now + 3.0)
    assert migration.done
    assert len(failures) == 1

    assert world.config.container("c0").preferred_site == 0
    assert holder(world, "c0") == 0
    world.network.heal(0, 1)
    assert world.run_process(write(b"after")) == "COMMITTED"


def test_killed_migration_process_still_restores_lease():
    """The driving process dying mid-migration (GeneratorExit) must not
    leave the lease suspended forever: the finally-path re-grants."""
    world = make_world()
    client = world.new_client(0)
    oid = world.config.container("c0").new_id()

    def write():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"v")
        return (yield from client.commit(tx))

    assert world.run_process(write()) == "COMMITTED"
    world.network.partition(0, 1)  # catch-up cannot complete
    migration = world.kernel.spawn(
        world.migrate_preferred_site("c0", 1, within=10.0),
        name="migration",
        absorb_interrupt=True,
    )
    world.run(until=world.kernel.now + 0.05)
    assert holder(world, "c0") is None
    migration.interrupt()
    world.run(until=world.kernel.now + 0.1)
    assert migration.done
    assert world.config.container("c0").preferred_site == 0
    assert holder(world, "c0") == 0


def test_no_dual_fast_commit_window_during_rollback():
    """From revoke to the terminal grant, writes at the *target* must
    never fast-commit: the lease is either suspended or back at the old
    site, so at most one site ever admits fast commits."""
    world = make_world()
    oid = world.config.container("c0").new_id()
    owner_client = world.new_client(0)

    def seed_write():
        tx = owner_client.start_tx()
        yield from owner_client.write(tx, oid, b"seed")
        return (yield from owner_client.commit(tx))

    # A committed write the target has not seen keeps the catch-up wait
    # from completing trivially once the partition is in place.
    assert world.run_process(seed_write()) == "COMMITTED"
    target_client = world.new_client(1)
    outcomes = []

    def prober():
        while world.kernel.now < 2.5:
            tx = target_client.start_tx()
            try:
                yield from target_client.write(tx, oid, b"probe")
                outcomes.append((yield from target_client.commit(tx)))
            except Exception:  # noqa: BLE001 - aborts/timeouts expected
                outcomes.append("ERROR")
            yield world.kernel.timeout(0.1)

    world.kernel.spawn(prober(), name="prober")
    world.network.partition(0, 1)

    def driver():
        try:
            yield from world.migrate_preferred_site("c0", 1, within=2.0)
        except TimeoutError:
            pass

    migration = world.kernel.spawn(driver(), name="migration")
    world.run(until=world.kernel.now + 0.05)
    world.crash_server(1)
    # Stay crashed past the migration deadline so the rollback path runs
    # (an early replacement could legitimately let the grant succeed).
    world.run(until=world.kernel.now + 3.0)
    assert migration.done
    assert holder(world, "c0") == 0
    world.replace_server(1)
    world.network.heal(0, 1)
    world.run(until=world.kernel.now + 1.0)
    assert holder(world, "c0") == 0
    # The target never fast-committed the container while site 0 could.
    assert "COMMITTED" not in outcomes


def test_chaos_migration_crash_fault_rolls_back():
    """The injector's ``migration_crash`` fault end-to-end: start a
    handover, kill the target mid-flight, and verify the lease came back
    to the old preferred site."""
    world = make_world()
    client = world.new_client(0)
    oid = world.config.container("c0").new_id()

    def write():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"v")
        return (yield from client.commit(tx))

    assert world.run_process(write()) == "COMMITTED"
    # Keep the target behind so the migration is still mid-catch-up when
    # the fault's killer fires.
    world.network.partition(0, 1)
    injector = FaultInjector(
        world,
        Schedule(
            [
                FaultEvent(
                    0.2,
                    "migration_crash",
                    {"cid": "c0", "to_site": 1, "kill_after": 0.1},
                )
            ]
        ),
    )
    injector.start()
    world.run(until=8.0)
    world.run_process(injector.quiesce())
    assert "migration_crash" in injector.applied
    # The migration itself timed out (recorded, not raised) ...
    assert any(fault == "migration_crash" for fault, _ in injector.errors)
    # ... and the rollback restored the old site's lease exactly once.
    assert world.config.container("c0").preferred_site == 0
    assert holder(world, "c0") == 0
