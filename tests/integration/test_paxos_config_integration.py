"""Integration: drive a deployment's reconfiguration through the
Paxos-replicated configuration service (§5.1 + §5.7 together).

The deployment's servers consult a shared LocalConfig; here the
authoritative decisions flow through the ConfigurationService (a Paxos
group running on the same simulated network) and are mirrored into the
deployment's config -- as the paper's lease-holding servers do with their
caches of the configuration service's state.
"""

import pytest

from repro.config_service import ConfigurationService
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


def make_world():
    world = Deployment(n_sites=3, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    service = ConfigurationService(world.kernel, world.network, sites=[0, 1, 2])
    return world, service


def mirror(world, service, replica=0):
    """Apply the service's authoritative state to the deployment config."""
    state = service.state_at(replica)
    for cid, info in state.containers.items():
        try:
            current = world.config.container(cid)
        except Exception:
            current = None
        if current is None:
            world.config.register(info.to_container())
        elif current.preferred_site != info.preferred_site:
            world.config.reassign_preferred_site(cid, info.preferred_site)


def test_container_creation_via_paxos():
    world, service = make_world()

    def driver():
        yield from service.create_container("alice", 1, {0, 1, 2})

    world.run_process(driver(), within=60.0)
    world.settle(2.0)
    mirror(world, service)

    client = world.new_client(1)
    oid = client.new_id("alice")

    def tx():
        handle = client.start_tx()
        yield from client.write(handle, oid, b"via paxos")
        return (yield from client.commit(handle))

    assert world.run_process(tx()) == "COMMITTED"
    assert world.server(1).stats.slow_commit_attempts == 0  # fast path


def test_site_removal_decided_by_paxos_and_applied():
    world, service = make_world()

    def setup():
        yield from service.create_container("c2", 2, {0, 1, 2})

    world.run_process(setup(), within=60.0)
    world.settle(2.0)
    mirror(world, service)

    # Site 2 fails; the removal decision goes through the (remaining)
    # Paxos majority, then the deployment executes the data recovery.
    world.fail_site(2)
    service.nodes[2].crash()

    def decide():
        yield from service.remove_site(2, reassign_to=0, via=0)

    world.run_process(decide(), within=120.0)
    assert service.state_at(0).containers["c2"].preferred_site == 0
    assert service.state_at(0).active_sites == {0, 1}

    world.remove_site(failed_site=2, reassign_to=0, within=120.0)
    mirror(world, service)
    assert world.config.container("c2").preferred_site == 0

    # Writes to the moved container now fast-commit at site 0.
    client = world.new_client(0)
    oid = client.new_id("c2")

    def tx():
        handle = client.start_tx()
        yield from client.write(handle, oid, b"new preferred site")
        return (yield from client.commit(handle))

    assert world.run_process(tx(), within=60.0) == "COMMITTED"


def test_service_survives_minority_failure_during_reconfig():
    world, service = make_world()
    service.nodes[1].crash()

    def driver():
        yield from service.create_container("resilient", 0, {0, 1, 2}, via=0)

    world.run_process(driver(), within=120.0)
    assert "resilient" in service.state_at(0).containers
    assert service.consistent_prefixes()
