"""Tests for the Deployment assembler itself."""

import pytest

from repro.deployment import Deployment
from repro.errors import ConfigurationError
from repro.net import Topology
from repro.storage import FLUSH_MEMORY


def test_default_deployment_is_four_ec2_sites():
    world = Deployment()
    assert world.n_sites == 4
    assert [s.name for s in world.topology.sites] == ["VA", "CA", "IE", "SG"]
    assert len(world.servers) == 4


def test_custom_topology():
    world = Deployment(topology=Topology.uniform(3, rtt_ms=50.0))
    assert world.n_sites == 3


def test_create_container_defaults_replicate_everywhere():
    world = Deployment(n_sites=3)
    container = world.create_container(preferred_site=1)
    assert container.preferred_site == 1
    assert container.replica_sites == {0, 1, 2}
    assert world.config.container(container.id) is container


def test_create_container_validates_replicas():
    world = Deployment(n_sites=2)
    with pytest.raises(ConfigurationError):
        world.create_container(preferred_site=1, replica_sites={0})


def test_auto_generated_container_ids_unique():
    world = Deployment(n_sites=1)
    a = world.create_container()
    b = world.create_container()
    assert a.id != b.id


def test_clients_bind_to_their_site_server():
    world = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY)
    client = world.new_client(1)
    assert client.site.id == 1
    assert client.server_address == world.addresses[1]


def test_two_deployments_coexist():
    # Address namespaces must not collide between deployments (each has
    # its own kernel/network, but unique ids guard against cross-use).
    w1 = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY)
    w2 = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY)
    assert w1.addresses[0] != w2.addresses[0]


def test_invalid_ds_mode_rejected():
    with pytest.raises(ValueError):
        Deployment(n_sites=1, ds_mode="quorum")


def test_f_plus_1_ds_mode_durable_without_all_sites():
    # With f=1 and ds_mode="f_plus_1", a transaction is DS-durable after
    # reaching 2 of 3 sites -- before the farthest site acks.
    world = Deployment(
        n_sites=3, f=1, ds_mode="f_plus_1", flush_latency=FLUSH_MEMORY,
        jitter_frac=0.0,
    )
    world.create_container("c", preferred_site=0)
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"v")
        yield from client.commit(tx)
        committed = world.kernel.now
        ds_at = yield tx.ds_event
        return ds_at - committed

    latency = world.run_process(scenario(), within=120.0)
    # CA (82 ms RTT) acks long before IE (87 ms) in the 3-site world --
    # DS is reached at ~the CA round trip, under the IE one.
    assert latency < 0.087 + 0.020


def test_settle_advances_time():
    world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY)
    before = world.kernel.now
    world.settle(1.5)
    assert world.kernel.now == pytest.approx(before + 1.5)


def test_f_plus_1_with_partial_replication_waits_for_replicas():
    # Container replicated only at sites 0 and 2 (f=1): DS durability
    # requires the ack from site 2 (the only other replica), so it takes
    # about the VA-IE round trip even though CA acks much sooner.
    world = Deployment(
        n_sites=3, f=1, ds_mode="f_plus_1", flush_latency=FLUSH_MEMORY,
        jitter_frac=0.0,
    )
    world.create_container("p", preferred_site=0, replica_sites={0, 2})
    client = world.new_client(0)
    oid = client.new_id("p")

    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"v")
        yield from client.commit(tx)
        committed = world.kernel.now
        yield tx.ds_event
        return world.kernel.now - committed

    latency = world.run_process(scenario(), within=120.0)
    # Must wait for IE (87 ms RTT), not just CA (82 ms): the CA ack alone
    # never satisfies the per-object replica condition.
    assert latency >= 0.087 * 0.95
