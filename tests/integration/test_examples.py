"""Smoke tests: every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_shows_psi_lifecycle():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    out = result.stdout
    assert "committed at VA" in out
    assert "disaster-safe durable" in out
    assert "globally visible" in out
