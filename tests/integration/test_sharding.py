"""Intra-site keyspace sharding with partial replication (ISSUE 9).

Every base site runs ``shards`` co-located shard servers, each a full
logical Walter site (own seqno stream, WAL, cache, propagation stream);
clients route containers to shards by a deterministic keyspace hash.
``replication=R`` additionally stores each container's shard group at
only R base sites (metadata still propagates everywhere, data is trimmed
per destination), with non-replica reads served by the nearest replica.

These tests pin the tentpole's contract:

* ``shards=1`` takes the exact legacy code path (same topology object);
* routing is a pure function of the container id (crc32, not the
  salted builtin ``hash``);
* fast commits stay shard-local, slow commits 2PC across (site, shard)
  participants, and conflicts abort exactly one of the racers;
* partial replication stores no data at non-replica sites but keeps
  every site's committed frontier converging;
* a stalled shard stream does not make ``SnapshotTooOldError`` fire for
  *other* shards' objects (per-site watermark precision).
"""

import pytest

import zlib

from repro.chaos import ChaosConfig, run_chaos
from repro.deployment import Deployment
from repro.errors import SnapshotTooOldError
from repro.net import Topology
from repro.storage import FLUSH_MEMORY


def make_world(n_sites=2, shards=2, **kwargs):
    kwargs.setdefault("flush_latency", FLUSH_MEMORY)
    kwargs.setdefault("jitter_frac", 0.0)
    return Deployment(n_sites=n_sites, shards=shards, **kwargs)


def write_value(world, client, oid, value):
    def op():
        tx = client.start_tx()
        yield from client.write(tx, oid, value)
        return (yield from client.commit(tx))

    return world.run_process(op())


def read_value(world, client, oid):
    def op():
        tx = client.start_tx()
        value = yield from client.read(tx, oid)
        yield from client.commit(tx)
        return value

    return world.run_process(op())


class TestShardedTopology:
    def test_sharded_structure(self):
        base = Topology.ec2(3)
        topo = Topology.sharded(base, 4)
        assert len(topo) == 12
        assert topo.shards == 4
        # Names: "<base>/s<k>", grouped contiguously per base site.
        assert topo.sites[0].name == "%s/s0" % base.sites[0].name
        assert topo.sites[5].name == "%s/s1" % base.sites[1].name
        for logical in range(12):
            assert topo.base_of[logical] == logical // 4
            assert topo.shard_of[logical] == logical % 4

    def test_lan_vs_wan_rtts(self):
        base = Topology.ec2(2)
        topo = Topology.sharded(base, 2, lan_rtt_ms=0.3)
        # Same base, different shard: LAN.
        assert topo.rtt(0, 1) == pytest.approx(0.3e-3)
        # Different bases inherit the base pair's WAN RTT.
        assert topo.rtt(0, 2) == pytest.approx(base.rtt(0, 1))
        assert topo.rtt(1, 3) == pytest.approx(base.rtt(0, 1))
        # Same logical site: the base's local RTT.
        assert topo.rtt(0, 0) == pytest.approx(base.rtt(0, 0))

    def test_intra_base_links_get_intra_bandwidth(self):
        topo = Topology.sharded(Topology.ec2(2), 2)
        assert topo.bandwidth_bps(0, 1) == topo.intra_bandwidth_bps
        assert topo.bandwidth_bps(0, 2) == topo.cross_bandwidth_bps

    def test_single_shard_is_identity(self):
        base = Topology.ec2(3)
        world = Deployment(n_sites=3, topology=base, shards=1)
        # Not a copy: shards=1 must take the exact legacy path.
        assert world.topology is base
        assert world.n_sites == 3
        assert world.n_base_sites == 3


class TestShardRouting:
    def test_shard_of_is_crc32(self):
        world = make_world(shards=4)
        for cid in ("a", "users", "acct-17", "éclair"):
            assert world.shard_of(cid) == zlib.crc32(cid.encode("utf-8")) % 4

    def test_logical_site_layout(self):
        world = make_world(n_sites=3, shards=4)
        assert world.logical_site(1, 2) == 6
        assert world.base_site_of(6) == 1
        with pytest.raises(ValueError):
            world.logical_site(0, 4)

    def test_hash_routing_places_container_on_its_shard(self):
        world = make_world(n_sites=2, shards=4)
        for cid in ("alpha", "beta", "gamma"):
            container = world.create_container(cid, preferred_base_site=1)
            shard = world.shard_of(cid)
            assert container.preferred_site == world.logical_site(1, shard)

    def test_default_replica_set_anchors_on_preferred_base(self):
        world = make_world(n_sites=3, shards=2, replication=2)
        container = world.create_container("c", preferred_base_site=1)
        shard = world.shard_of("c")
        expected = {
            world.logical_site(1, shard),
            world.logical_site(2, shard),
        }
        assert set(container.replica_sites) == expected


class TestShardedCommits:
    def test_write_read_across_shards_and_bases(self):
        world = make_world(n_sites=2, shards=2)
        values = {}
        for cid in ("a", "bb", "ccc", "dddd"):
            container = world.create_container(cid, preferred_base_site=0)
            client = world.new_client(container.preferred_site)
            oid = container.new_id()
            assert write_value(world, client, oid, cid.encode()) == "COMMITTED"
            values[oid] = cid.encode()
        world.settle(2.0)
        # Every logical site serves every value after propagation.
        for site in range(world.n_sites):
            reader = world.new_client(site)
            for oid, expected in values.items():
                assert read_value(world, reader, oid) == expected

    def test_cross_shard_slow_commit(self):
        world = make_world(n_sites=2, shards=2)
        a = world.create_container("alpha", preferred_site=0)
        b = world.create_container("beta", preferred_site=1)
        client = world.new_client(0)
        oa, ob = a.new_id(), b.new_id()

        def op():
            tx = client.start_tx()
            yield from client.write(tx, oa, b"A")
            yield from client.write(tx, ob, b"B")
            return (yield from client.commit(tx))

        assert world.run_process(op()) == "COMMITTED"
        world.settle(2.0)
        reader = world.new_client(3)
        assert read_value(world, reader, oa) == b"A"
        assert read_value(world, reader, ob) == b"B"

    def test_cross_shard_conflict_aborts_one_then_retry_commits(self):
        world = make_world(n_sites=2, shards=2)
        a = world.create_container("alpha", preferred_site=0)
        b = world.create_container("beta", preferred_site=1)
        oa, ob = a.new_id(), b.new_id()
        c0 = world.new_client(0)
        c1 = world.new_client(1)

        def racer(client, value):
            tx = client.start_tx()
            yield from client.write(tx, oa, value)
            yield from client.write(tx, ob, value)
            return (yield from client.commit(tx))

        p0 = world.kernel.spawn(racer(c0, b"zero"), name="racer-0")
        p1 = world.kernel.spawn(racer(c1, b"one"), name="racer-1")
        world.run(until=world.kernel.now + 10.0)
        statuses = sorted([p0.value, p1.value])
        # Both write both objects concurrently: 2PC admits at most one.
        assert statuses.count("COMMITTED") <= 1
        assert "ABORTED" in statuses

        # The loser's retry (fresh snapshot) must go through.
        assert world.run_process(racer(c0, b"retry")) == "COMMITTED"
        world.settle(2.0)
        reader = world.new_client(2)
        assert read_value(world, reader, oa) == b"retry"
        assert read_value(world, reader, ob) == b"retry"


class TestPartialReplication:
    def test_non_replica_site_stores_no_data(self):
        world = make_world(n_sites=3, shards=2, replication=2)
        container = world.create_container("c", preferred_base_site=0)
        client = world.new_client(container.preferred_site)
        oid = container.new_id()
        assert write_value(world, client, oid, b"v") == "COMMITTED"
        world.settle(3.0)
        for site in range(world.n_sites):
            server = world.servers[site]
            if container.replicated_at(site):
                assert oid in server.histories.known_oids()
            else:
                assert oid not in server.histories.known_oids()

    def test_frontiers_converge_despite_trimming(self):
        world = make_world(n_sites=3, shards=2, replication=2)
        container = world.create_container("c", preferred_base_site=1)
        client = world.new_client(container.preferred_site)
        oid = container.new_id()
        for i in range(3):
            assert write_value(world, client, oid, b"v%d" % i) == "COMMITTED"
        world.settle(3.0)
        frontiers = {
            tuple(world.servers[s].committed_vts) for s in range(world.n_sites)
        }
        # Metadata propagates everywhere even when the data was trimmed.
        assert len(frontiers) == 1

    def test_non_replica_read_returns_value(self):
        world = make_world(n_sites=3, shards=2, replication=2)
        container = world.create_container("c", preferred_base_site=0)
        client = world.new_client(container.preferred_site)
        oid = container.new_id()
        assert write_value(world, client, oid, b"remote") == "COMMITTED"
        world.settle(3.0)
        non_replica = next(
            s for s in range(world.n_sites) if not container.replicated_at(s)
        )
        reader = world.new_client(non_replica)
        assert read_value(world, reader, oid) == b"remote"

    def test_nearest_replica_selection(self):
        world = make_world(n_sites=3, shards=2, replication=2)
        container = world.create_container("c", preferred_base_site=1)
        non_replica = next(
            s for s in range(world.n_sites) if not container.replicated_at(s)
        )
        server = world.servers[non_replica]
        best = server._nearest_replica(container)
        assert container.replicated_at(best)
        rtts = {
            s: world.topology.rtt(non_replica, s)
            for s in sorted(container.replica_sites)
        }
        assert rtts[best] == min(rtts.values())


class TestStalledShardWatermarkPrecision:
    def test_snapshot_too_old_stays_object_precise(self):
        """One shard's propagation stream stalls while another shard's
        objects churn and get GC'd: an old snapshot must still read the
        stalled shard's objects -- only the churned objects (whose old
        versions were actually collected) may raise SnapshotTooOldError.
        """
        world = make_world(n_sites=2, shards=2)
        # Container A on (base 0, shard 0) churns; container B on
        # (base 0, shard 1) is the shard whose stream will stall.
        a = world.create_container("churn", preferred_site=0)
        b = world.create_container("stall", preferred_site=1)
        oa, ob = a.new_id(), b.new_id()
        ca = world.new_client(0)
        cb = world.new_client(1)
        assert write_value(world, ca, oa, b"A1") == "COMMITTED"
        assert write_value(world, cb, ob, b"B1") == "COMMITTED"
        world.settle(2.0)

        observer = world.servers[2]  # base 1, shard 0
        old_vts = observer.committed_vts
        assert old_vts[0] >= 1 and old_vts[1] >= 1

        # Stall shard 1's stream toward the observer, then churn shard 0.
        world.network.partition(1, 2)
        for i in range(2, 6):
            assert write_value(world, ca, oa, b"A%d" % i) == "COMMITTED"
        world.settle(2.0)
        removed = observer.gc_histories()
        assert removed > 0  # superseded churn versions were collected

        # The stalled shard's object still reads fine at the old
        # snapshot: its per-site entries were never collected.
        assert observer.histories.read_regular(ob, old_vts) == b"B1"
        # The churned object's old version is legitimately gone.
        with pytest.raises(SnapshotTooOldError):
            observer.histories.read_regular(oa, old_vts)


class TestShardedChaos:
    def test_sharded_chaos_verdict_clean(self):
        result = run_chaos(
            ChaosConfig(seed=5, n_sites=2, shards=2, txs_per_client=4)
        )
        assert result.passed, result.verdict_json()

    def test_sharded_partial_replication_chaos_verdict_clean(self):
        result = run_chaos(
            ChaosConfig(
                seed=6, n_sites=3, shards=2, replication=2, txs_per_client=4
            )
        )
        assert result.passed, result.verdict_json()
