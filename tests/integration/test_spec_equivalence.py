"""Differential testing: the distributed implementation against the
centralized PSI specification.

Random operation sequences run on both the Fig 4/5/7 spec engine and the
real multi-site deployment.  Propagation is synchronized (the spec's
``propagate_all`` after each commit; the deployment settles until its
asynchronous propagation quiesces), after which every read value, cset
state, and commit outcome must agree -- the implementation "emulates the
return values of each operation" (§3.1).

Asynchronous (unsynchronized) schedules are covered separately by the
PSI trace checker tests.
"""

import random

import pytest

from repro.core import ObjectId, ObjectKind
from repro.deployment import Deployment
from repro.spec import ParallelSnapshotIsolation
from repro.storage import FLUSH_MEMORY

N_SITES = 3
N_OBJECTS = 5
N_CSETS = 2
OPS_PER_RUN = 60


def run_differential(seed):
    rng = random.Random(seed)
    world = Deployment(n_sites=N_SITES, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    spec = ParallelSnapshotIsolation(n_sites=N_SITES)
    for site in range(N_SITES):
        world.create_container("c%d" % site, preferred_site=site)
    oids = [
        world.config.container("c%d" % (i % N_SITES)).new_id()
        for i in range(N_OBJECTS)
    ]
    csets = [
        world.config.container("c%d" % (i % N_SITES)).new_id(ObjectKind.CSET)
        for i in range(N_CSETS)
    ]
    clients = [world.new_client(site) for site in range(N_SITES)]

    active = []  # list of (site, impl TxHandle, spec tx, has_updates)
    mismatches = []

    def impl(gen):
        return world.run_process(gen, within=120.0)

    for step in range(OPS_PER_RUN):
        action = rng.random()
        if action < 0.25 or not active:
            site = rng.randrange(N_SITES)
            handle = clients[site].start_tx()
            # Start eagerly on both sides so snapshots are taken at the
            # same logical moment.
            impl(clients[site].begin(handle))
            active.append([site, handle, spec.start_tx(site), False])
        elif action < 0.45:
            site, handle, spec_tx, _ = entry = rng.choice(active)
            oid = rng.choice(oids)
            impl_value = impl(clients[site].read(handle, oid))
            spec_value = spec.read(spec_tx, oid)
            if impl_value != spec_value:
                mismatches.append((step, "read", oid, impl_value, spec_value))
        elif action < 0.60:
            site, handle, spec_tx, _ = entry = rng.choice(active)
            # Fast-commit-only workload: write objects preferred at the
            # transaction's site, keeping outcomes deterministic.
            local = [o for o in oids if world.config.preferred_site(o) == site]
            if not local:
                continue
            oid = rng.choice(local)
            value = "v%d" % step
            impl(clients[site].write(handle, oid, value))
            spec.write(spec_tx, oid, value)
            entry[3] = True
        elif action < 0.75:
            site, handle, spec_tx, _ = entry = rng.choice(active)
            cset = rng.choice(csets)
            elem = rng.randrange(4)
            if rng.random() < 0.6:
                impl(clients[site].set_add(handle, cset, elem))
                spec.set_add(spec_tx, cset, elem)
            else:
                impl(clients[site].set_del(handle, cset, elem))
                spec.set_del(spec_tx, cset, elem)
            entry[3] = True
        elif action < 0.85:
            site, handle, spec_tx, _ = rng.choice(active)
            cset = rng.choice(csets)
            impl_state = impl(clients[site].set_read(handle, cset)).counts()
            spec_state = spec.set_read(spec_tx, cset).counts()
            if impl_state != spec_state:
                mismatches.append((step, "set_read", cset, impl_state, spec_state))
        else:
            index = rng.randrange(len(active))
            site, handle, spec_tx, _ = active.pop(index)
            impl_status = impl(clients[site].commit(handle))
            spec_status = spec.commit_tx(spec_tx)
            if impl_status != spec_status:
                mismatches.append((step, "commit", handle.tid, impl_status, spec_status))
            # Synchronize propagation on both sides.
            world.settle(3.0)
            spec.propagate_all()
    return mismatches


@pytest.mark.parametrize("seed", [101, 102, 103, 104])
def test_implementation_matches_psi_spec(seed):
    mismatches = run_differential(seed)
    assert mismatches == [], mismatches
