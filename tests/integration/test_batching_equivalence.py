"""Batching is behavior-transparent (DESIGN.md §14): the same workload
run with ``Deployment(batching=True)`` and with batching off must agree
on everything that is *not* timing -- commit outcomes, the final visible
value of every object at every site, lag-report completeness, and the
PSI verdict of the recorded trace.

The workloads here are count-bound and conflict-free by construction
(each client writes only its own keys), so both arms perform identical
logical work, every transaction commits in both, and the converged state
comparison is exact.  Conflict outcomes under contention are
deliberately *not* compared one-to-one -- batching legitimately shifts
timing, and which racer aborts is schedule-dependent; the chaos suite
(``--batching``) covers that regime against the PSI oracles instead.

Hypothesis drives the workload shape (seed, keys, transaction mix)
across the deployment grid the issue names: shards 1 and 4, full and
partial replication.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deployment import Deployment
from repro.spec import check_trace
from repro.storage import FLUSH_MEMORY


def _run_arm(seed, batching, shards, replication, n_base_sites=2):
    """One arm: per-client private-key writers plus shared readers, run
    to completion, then settled until propagation drains everywhere."""
    world = Deployment(
        n_sites=n_base_sites,
        flush_latency=FLUSH_MEMORY,
        seed=seed,
        trace=True,
        shards=shards,
        replication=replication,
        batching=batching,
    )
    rng = random.Random(seed)
    n_logical = world.n_sites
    containers = [
        world.create_container("c%d" % s, preferred_site=s)
        for s in range(n_logical)
    ]
    # Each (site, client) owns a private slice of keys: no write-write
    # conflicts, so every commit succeeds in both arms.
    clients_per_site = 2
    txs_per_client = rng.randint(4, 8)
    own = {}
    shared = []
    for s in range(n_logical):
        for c in range(clients_per_site):
            own[(s, c)] = [containers[s].new_id() for _ in range(3)]
        shared.append(containers[s].new_id())
    world.preload({oid: b"init" for oid in shared})
    statuses = []

    def driver(client, s, c, crng):
        for i in range(txs_per_client):
            yield client.kernel.timeout(crng.random() * 0.02)
            tx = client.start_tx()
            yield from client.read(tx, crng.choice(shared))
            oid = crng.choice(own[(s, c)])
            value = ("v-%d-%d-%d" % (s, c, i)).encode()
            yield from client.write(tx, oid, value)
            status = yield from client.commit(tx)
            statuses.append(status)

    procs = []
    for s in range(n_logical):
        for c in range(clients_per_site):
            client = world.new_client(s)
            crng = random.Random(seed * 7919 + s * 101 + c)
            procs.append(
                world.kernel.spawn(driver(client, s, c, crng))
            )
    world.run(until=60.0)
    assert all(p.done for p in procs)
    world.settle(5.0)

    # Final visible reads: every object from every logical site.
    all_oids = sorted(
        [oid for oids in own.values() for oid in oids] + shared,
        key=lambda o: (o.container, o.local),
    )
    reads = {}

    def read_all(client, site):
        for oid in all_oids:
            container = world.config.container(oid.container)
            if not container.replicated_at(site):
                continue  # partial replication: no local copy to compare
            tx = client.start_tx()
            value = yield from client.read(tx, oid)
            yield from client.commit(tx)
            reads[(site, oid.container, oid.local)] = value

    for s in range(n_logical):
        world.run_process(read_all(world.new_client(s), s))

    violations = check_trace(world.trace)
    assert violations == [], "\n".join(str(v) for v in violations)
    lag = world.obs.registry
    applied = tuple(
        lag.counter("server.remote_applied", site=s).value
        for s in range(n_logical)
    )
    return {
        "statuses": tuple(sorted(statuses)),
        "reads": reads,
        "applied": applied,
        "commits": tuple(
            lag.counter("server.commits", site=s).value
            for s in range(n_logical)
        ),
    }


def _assert_equivalent(seed, shards, replication):
    # Partial replication needs more base sites than the replication
    # factor, or every shard group is stored everywhere anyway.
    n_base = 3 if replication is not None else 2
    off = _run_arm(seed, None, shards, replication, n_base_sites=n_base)
    on = _run_arm(seed, True, shards, replication, n_base_sites=n_base)
    assert set(off["statuses"]) == {"COMMITTED"}
    assert on["statuses"] == off["statuses"]
    assert on["reads"] == off["reads"]
    # Lag-report completeness: every commit was applied at every other
    # replica in both arms (the *values* of the lags are timing and may
    # differ; the sample counts may not).
    assert on["applied"] == off["applied"]
    assert on["commits"] == off["commits"]


class TestBatchingEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_unsharded_full_replication(self, seed):
        _assert_equivalent(seed, shards=1, replication=None)

    @given(st.integers(0, 10_000))
    @settings(max_examples=4, deadline=None)
    def test_sharded_partial_replication(self, seed):
        _assert_equivalent(seed, shards=4, replication=2)

    @given(st.integers(0, 10_000))
    @settings(max_examples=3, deadline=None)
    def test_sharded_full_replication(self, seed):
        _assert_equivalent(seed, shards=4, replication=None)

    @given(st.integers(0, 10_000))
    @settings(max_examples=3, deadline=None)
    def test_unsharded_partial_replication(self, seed):
        _assert_equivalent(seed, shards=1, replication=2)

    def test_contended_runs_stay_psi_in_both_arms(self):
        # Contention regime: identical outcomes are not promised, but
        # both arms must satisfy PSI on their own traces.
        for batching in (None, True):
            world = Deployment(
                n_sites=2, flush_latency=FLUSH_MEMORY, seed=77,
                trace=True, batching=batching,
            )
            world.create_container("hot", preferred_site=0)
            oid = world.config.container("hot").new_id()
            statuses = []

            def hammer(client, crng):
                for _ in range(10):
                    yield client.kernel.timeout(crng.random() * 0.02)
                    tx = client.start_tx()
                    yield from client.read(tx, oid)
                    yield from client.write(
                        tx, oid, ("%s" % crng.random()).encode()
                    )
                    status = yield from client.commit(tx)
                    statuses.append(status)

            for site in range(2):
                for c in range(2):
                    world.kernel.spawn(
                        hammer(
                            world.new_client(site),
                            random.Random(site * 13 + c),
                        )
                    )
            world.run(until=30.0)
            world.settle(5.0)
            assert "COMMITTED" in statuses
            violations = check_trace(world.trace)
            assert violations == [], "\n".join(str(v) for v in violations)
