"""Tests for counting sets, including the paper's commutativity claims."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CSet


def test_add_and_count():
    cset = CSet()
    cset.add("x")
    assert cset.count("x") == 1
    cset.add("x")
    assert cset.count("x") == 2


def test_rem_makes_anti_element():
    # "removing element x from an empty cset results in -1 copies" (§2)
    cset = CSet()
    cset.rem("x")
    assert cset.count("x") == -1
    cset.add("x")
    assert cset.count("x") == 0
    assert cset.is_empty()


def test_paper_example_orderings_converge():
    # §2: add(x), add(y), rem(x) at one site and rem(x), add(x), add(y) at
    # another both reach {y: 1}.
    a = CSet()
    a.add("x")
    a.add("y")
    a.rem("x")
    b = CSet()
    b.rem("x")
    b.add("x")
    b.add("y")
    assert a == b
    assert a.counts() == {"y": 1}


def test_read_returns_nonzero_counts_only():
    cset = CSet()
    cset.add("pos")
    cset.rem("neg")
    cset.add("zero")
    cset.rem("zero")
    assert cset.counts() == {"pos": 1, "neg": -1}


def test_members_hides_nonpositive_counts():
    # §3.5: treat count >= 1 as present, count <= 0 as absent.
    cset = CSet({"friend": 1, "ghost": -1, "double": 2})
    assert sorted(cset.members()) == ["double", "friend"]
    assert "friend" in cset
    assert "ghost" not in cset
    assert "absent" not in cset


def test_len_counts_nonzero_entries():
    cset = CSet({"a": 1, "b": -2})
    assert len(cset) == 2


def test_constructor_drops_zero_counts():
    cset = CSet({"a": 0, "b": 1})
    assert cset.counts() == {"b": 1}


def test_add_rem_negative_n_rejected():
    cset = CSet()
    with pytest.raises(ValueError):
        cset.add("x", -1)
    with pytest.raises(ValueError):
        cset.rem("x", -1)


def test_bulk_add():
    cset = CSet()
    cset.add("x", 5)
    cset.rem("x", 2)
    assert cset.count("x") == 3


def test_copy_is_independent():
    a = CSet({"x": 1})
    b = a.copy()
    b.add("x")
    assert a.count("x") == 1
    assert b.count("x") == 2


def test_merge_is_pointwise_sum():
    a = CSet({"x": 1, "y": 2})
    b = CSet({"x": -1, "z": 3})
    merged = a.merge(b)
    assert merged.counts() == {"y": 2, "z": 3}


def test_unhashable():
    with pytest.raises(TypeError):
        hash(CSet())


def test_iter_yields_items():
    assert dict(iter(CSet({"a": 2}))) == {"a": 2}


def test_repr_is_stable():
    assert repr(CSet({"a": 1})) == "CSet{'a':+1}"


# ----------------------------------------------------------------------
# Property tests: cset operations commute -- the foundation of the
# conflict-freedom argument (§2, §3.3).
# ----------------------------------------------------------------------
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["add", "rem"]), st.integers(0, 5)), max_size=30
)


def apply_ops(ops):
    cset = CSet()
    for op, elem in ops:
        getattr(cset, op)(elem)
    return cset


@given(ops_strategy, st.randoms(use_true_random=False))
def test_any_permutation_converges(ops, rng):
    shuffled = list(ops)
    rng.shuffle(shuffled)
    assert apply_ops(ops) == apply_ops(shuffled)


@given(ops_strategy, ops_strategy)
def test_concurrent_interleavings_converge(ops_a, ops_b):
    # Site 1 applies A then B; site 2 applies B then A -- replicas converge.
    assert apply_ops(ops_a + ops_b) == apply_ops(ops_b + ops_a)


@given(ops_strategy, ops_strategy)
def test_merge_equals_sequential_application(ops_a, ops_b):
    merged = apply_ops(ops_a).merge(apply_ops(ops_b))
    assert merged == apply_ops(ops_a + ops_b)


@given(ops_strategy)
def test_add_then_rem_cancels(ops):
    cset = apply_ops(ops)
    snapshot = cset.counts()
    cset.add("probe")
    cset.rem("probe")
    assert cset.counts() == snapshot
