"""Tests for per-object version histories and snapshot reads."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    CSet,
    CSetAdd,
    CSetDel,
    DataUpdate,
    ObjectHistory,
    ObjectId,
    ObjectKind,
    SiteHistories,
    VectorTimestamp,
    Version,
)
from repro.errors import TypeMismatchError

REG = ObjectId("c", "obj", ObjectKind.REGULAR)
SET = ObjectId("c", "set", ObjectKind.CSET)


def vts(*seqnos):
    return VectorTimestamp(seqnos)


class TestObjectHistory:
    def test_append_and_iterate(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"v1"), Version(0, 1))
        hist.append(DataUpdate(REG, b"v2"), Version(1, 1))
        assert len(hist) == 2
        assert [e.version for e in hist] == [Version(0, 1), Version(1, 1)]

    def test_append_wrong_oid_rejected(self):
        hist = ObjectHistory(REG)
        other = ObjectId("c", "other", ObjectKind.REGULAR)
        with pytest.raises(ValueError):
            hist.append(DataUpdate(other, b"x"), Version(0, 1))

    def test_latest_visible_respects_snapshot(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"v1"), Version(0, 1))
        hist.append(DataUpdate(REG, b"v2"), Version(0, 2))
        assert hist.latest_visible(vts(1, 0)).update.data == b"v1"
        assert hist.latest_visible(vts(2, 0)).update.data == b"v2"
        assert hist.latest_visible(vts(0, 0)) is None

    def test_latest_visible_across_sites_uses_local_order(self):
        # Local apply order defines recency; both versions visible.
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"from-site0"), Version(0, 1))
        hist.append(DataUpdate(REG, b"from-site1"), Version(1, 1))
        assert hist.latest_visible(vts(1, 1)).update.data == b"from-site1"

    def test_unmodified_since(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"v1"), Version(0, 1))
        assert hist.unmodified_since(vts(1, 0))
        assert not hist.unmodified_since(vts(0, 0))
        hist.append(DataUpdate(REG, b"v2"), Version(1, 3))
        assert hist.unmodified_since(vts(1, 3))
        assert not hist.unmodified_since(vts(1, 2))

    def test_empty_history_is_unmodified(self):
        assert ObjectHistory(REG).unmodified_since(vts(0, 0))

    def test_truncate_versions(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"keep"), Version(0, 1))
        hist.append(DataUpdate(REG, b"drop"), Version(1, 1))
        removed = hist.truncate_versions([Version(0, 1)])
        assert removed == 1
        assert [e.update.data for e in hist] == [b"keep"]

    def test_gc_keeps_latest_visible_and_future(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"old"), Version(0, 1))
        hist.append(DataUpdate(REG, b"current"), Version(0, 2))
        hist.append(DataUpdate(REG, b"future"), Version(0, 5))
        removed = hist.gc_before(vts(2))
        assert removed == 1
        assert [e.update.data for e in hist] == [b"current", b"future"]

    def test_gc_never_touches_csets(self):
        hist = ObjectHistory(SET)
        hist.append(CSetAdd(SET, "x"), Version(0, 1))
        hist.append(CSetAdd(SET, "x"), Version(0, 2))
        assert hist.gc_before(vts(9)) == 0
        assert len(hist) == 2


class TestSiteHistories:
    def test_read_regular_returns_nil_when_unwritten(self):
        hists = SiteHistories()
        assert hists.read_regular(REG, vts(0)) is None

    def test_read_regular_snapshot(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v1")], Version(0, 1))
        hists.apply([DataUpdate(REG, b"v2")], Version(0, 2))
        assert hists.read_regular(REG, vts(1)) == b"v1"
        assert hists.read_regular(REG, vts(2)) == b"v2"

    def test_read_regular_buffer_shadows_snapshot(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"committed")], Version(0, 1))
        buffer = [DataUpdate(REG, b"mine")]
        assert hists.read_regular(REG, vts(1), buffer) == b"mine"

    def test_read_regular_type_check(self):
        hists = SiteHistories()
        with pytest.raises(TypeMismatchError):
            hists.read_regular(SET, vts(0))

    def test_read_cset_sums_visible_entries(self):
        hists = SiteHistories()
        hists.apply([CSetAdd(SET, "x")], Version(0, 1))
        hists.apply([CSetAdd(SET, "x"), CSetDel(SET, "y")], Version(1, 1))
        hists.apply([CSetDel(SET, "x")], Version(0, 2))
        assert hists.read_cset(SET, vts(1, 0)).counts() == {"x": 1}
        assert hists.read_cset(SET, vts(1, 1)).counts() == {"x": 2, "y": -1}
        assert hists.read_cset(SET, vts(2, 1)).counts() == {"x": 1, "y": -1}

    def test_read_cset_with_buffer(self):
        hists = SiteHistories()
        hists.apply([CSetAdd(SET, "x")], Version(0, 1))
        buffer = [CSetAdd(SET, "y"), CSetDel(SET, "x")]
        state = hists.read_cset(SET, vts(1), buffer)
        assert state.counts() == {"y": 1}
        assert isinstance(state, CSet)

    def test_read_cset_type_check(self):
        hists = SiteHistories()
        with pytest.raises(TypeMismatchError):
            hists.read_cset(REG, vts(0))

    def test_unmodified_delegates(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v")], Version(0, 3))
        assert hists.unmodified(REG, vts(3))
        assert not hists.unmodified(REG, vts(2))

    def test_apply_routes_by_oid(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v"), CSetAdd(SET, "e")], Version(0, 1))
        assert len(hists.history(REG)) == 1
        assert len(hists.history(SET)) == 1
        assert REG in hists and SET in hists

    def test_snapshot_state(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v"), CSetAdd(SET, "e")], Version(0, 1))
        state = hists.snapshot_state(vts(1))
        assert state[REG] == b"v"
        assert state[SET].counts() == {"e": 1}

    def test_gc_totals(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v1")], Version(0, 1))
        hists.apply([DataUpdate(REG, b"v2")], Version(0, 2))
        assert hists.gc(vts(2)) == 1


@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "del"]), st.integers(0, 3)),
        max_size=20,
    ),
    st.integers(0, 20),
)
def test_cset_snapshot_prefix_property(ops, cut):
    """Reading a cset at snapshot k equals applying the first k committed
    operations directly -- history replay is exact."""
    hists = SiteHistories()
    expected = CSet()
    for seqno, (op, elem) in enumerate(ops, start=1):
        update = CSetAdd(SET, elem) if op == "add" else CSetDel(SET, elem)
        hists.apply([update], Version(0, seqno))
        if seqno <= cut:
            expected.add(elem) if op == "add" else expected.rem(elem)
    assert hists.read_cset(SET, vts(cut)) == expected
