"""Tests for per-object version histories and snapshot reads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CSet,
    CSetAdd,
    CSetDel,
    DataUpdate,
    ObjectHistory,
    ObjectId,
    ObjectKind,
    SiteHistories,
    VectorTimestamp,
    Version,
)
from repro.errors import SnapshotTooOldError, TypeMismatchError

REG = ObjectId("c", "obj", ObjectKind.REGULAR)
SET = ObjectId("c", "set", ObjectKind.CSET)


def vts(*seqnos):
    return VectorTimestamp(seqnos)


class TestObjectHistory:
    def test_append_and_iterate(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"v1"), Version(0, 1))
        hist.append(DataUpdate(REG, b"v2"), Version(1, 1))
        assert len(hist) == 2
        assert [e.version for e in hist] == [Version(0, 1), Version(1, 1)]

    def test_append_wrong_oid_rejected(self):
        hist = ObjectHistory(REG)
        other = ObjectId("c", "other", ObjectKind.REGULAR)
        with pytest.raises(ValueError):
            hist.append(DataUpdate(other, b"x"), Version(0, 1))

    def test_latest_visible_respects_snapshot(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"v1"), Version(0, 1))
        hist.append(DataUpdate(REG, b"v2"), Version(0, 2))
        assert hist.latest_visible(vts(1, 0)).update.data == b"v1"
        assert hist.latest_visible(vts(2, 0)).update.data == b"v2"
        assert hist.latest_visible(vts(0, 0)) is None

    def test_latest_visible_across_sites_uses_local_order(self):
        # Local apply order defines recency; both versions visible.
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"from-site0"), Version(0, 1))
        hist.append(DataUpdate(REG, b"from-site1"), Version(1, 1))
        assert hist.latest_visible(vts(1, 1)).update.data == b"from-site1"

    def test_unmodified_since(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"v1"), Version(0, 1))
        assert hist.unmodified_since(vts(1, 0))
        assert not hist.unmodified_since(vts(0, 0))
        hist.append(DataUpdate(REG, b"v2"), Version(1, 3))
        assert hist.unmodified_since(vts(1, 3))
        assert not hist.unmodified_since(vts(1, 2))

    def test_empty_history_is_unmodified(self):
        assert ObjectHistory(REG).unmodified_since(vts(0, 0))

    def test_truncate_versions(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"keep"), Version(0, 1))
        hist.append(DataUpdate(REG, b"drop"), Version(1, 1))
        removed = hist.truncate_versions([Version(0, 1)])
        assert removed == 1
        assert [e.update.data for e in hist] == [b"keep"]

    def test_gc_keeps_latest_visible_and_future(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"old"), Version(0, 1))
        hist.append(DataUpdate(REG, b"current"), Version(0, 2))
        hist.append(DataUpdate(REG, b"future"), Version(0, 5))
        removed = hist.gc_before(vts(2))
        assert removed == 1
        assert [e.update.data for e in hist] == [b"current", b"future"]

    def test_gc_never_touches_csets(self):
        hist = ObjectHistory(SET)
        hist.append(CSetAdd(SET, "x"), Version(0, 1))
        hist.append(CSetAdd(SET, "x"), Version(0, 2))
        assert hist.gc_before(vts(9)) == 0
        assert len(hist) == 2


class TestSiteHistories:
    def test_read_regular_returns_nil_when_unwritten(self):
        hists = SiteHistories()
        assert hists.read_regular(REG, vts(0)) is None

    def test_read_regular_snapshot(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v1")], Version(0, 1))
        hists.apply([DataUpdate(REG, b"v2")], Version(0, 2))
        assert hists.read_regular(REG, vts(1)) == b"v1"
        assert hists.read_regular(REG, vts(2)) == b"v2"

    def test_read_regular_buffer_shadows_snapshot(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"committed")], Version(0, 1))
        buffer = [DataUpdate(REG, b"mine")]
        assert hists.read_regular(REG, vts(1), buffer) == b"mine"

    def test_read_regular_type_check(self):
        hists = SiteHistories()
        with pytest.raises(TypeMismatchError):
            hists.read_regular(SET, vts(0))

    def test_read_cset_sums_visible_entries(self):
        hists = SiteHistories()
        hists.apply([CSetAdd(SET, "x")], Version(0, 1))
        hists.apply([CSetAdd(SET, "x"), CSetDel(SET, "y")], Version(1, 1))
        hists.apply([CSetDel(SET, "x")], Version(0, 2))
        assert hists.read_cset(SET, vts(1, 0)).counts() == {"x": 1}
        assert hists.read_cset(SET, vts(1, 1)).counts() == {"x": 2, "y": -1}
        assert hists.read_cset(SET, vts(2, 1)).counts() == {"x": 1, "y": -1}

    def test_read_cset_with_buffer(self):
        hists = SiteHistories()
        hists.apply([CSetAdd(SET, "x")], Version(0, 1))
        buffer = [CSetAdd(SET, "y"), CSetDel(SET, "x")]
        state = hists.read_cset(SET, vts(1), buffer)
        assert state.counts() == {"y": 1}
        assert isinstance(state, CSet)

    def test_read_cset_type_check(self):
        hists = SiteHistories()
        with pytest.raises(TypeMismatchError):
            hists.read_cset(REG, vts(0))

    def test_unmodified_delegates(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v")], Version(0, 3))
        assert hists.unmodified(REG, vts(3))
        assert not hists.unmodified(REG, vts(2))

    def test_apply_routes_by_oid(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v"), CSetAdd(SET, "e")], Version(0, 1))
        assert len(hists.history(REG)) == 1
        assert len(hists.history(SET)) == 1
        assert REG in hists and SET in hists

    def test_snapshot_state(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v"), CSetAdd(SET, "e")], Version(0, 1))
        state = hists.snapshot_state(vts(1))
        assert state[REG] == b"v"
        assert state[SET].counts() == {"e": 1}

    def test_gc_totals(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v1")], Version(0, 1))
        hists.apply([DataUpdate(REG, b"v2")], Version(0, 2))
        assert hists.gc(vts(2)) == 1


class TestReadMissesDoNotAllocate:
    """Read paths on an unknown oid must not create its history: a
    site-wide scan keyed on ``known_oids()`` (GC, oracles, snapshots)
    must not grow just because someone probed a missing object."""

    def test_read_paths_leave_known_oids_fixed(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v")], Version(0, 1))
        before = set(hists.known_oids())
        missing_reg = ObjectId("c", "nothing", ObjectKind.REGULAR)
        missing_set = ObjectId("c", "noset", ObjectKind.CSET)
        assert hists.read_regular(missing_reg, vts(1)) is None
        assert hists.read_cset(missing_set, vts(1)).counts() == {}
        assert hists.unmodified(missing_reg, vts(0))
        assert hists.get(missing_reg) is None
        assert hists.remote_read_payload(missing_reg, vts(1)) == {
            "entries": [],
            "base": None,
            "gc_vts": None,
        }
        assert missing_reg not in hists and missing_set not in hists
        assert set(hists.known_oids()) == before

    def test_history_accessor_still_allocates_for_apply(self):
        hists = SiteHistories()
        hist = hists.history(REG)
        assert hist is hists.history(REG)
        assert set(hists.known_oids()) == {REG}


class TestGCWatermark:
    def test_cset_fold_preserves_visible_value(self):
        hist = ObjectHistory(SET)
        hist.append(CSetAdd(SET, "x"), Version(0, 1))
        hist.append(CSetAdd(SET, "y"), Version(1, 1))
        hist.append(CSetDel(SET, "x"), Version(0, 2))
        before = hist.cset_value(vts(2, 1)).counts()
        folded = hist.gc_before(vts(2, 1), fold_cset=True)
        assert folded == 3
        assert len(hist) == 0
        assert hist.base_counts == before == {"y": 1}
        assert hist.cset_value(vts(2, 1)).counts() == before

    def test_cset_fold_keeps_invisible_suffix(self):
        hist = ObjectHistory(SET)
        hist.append(CSetAdd(SET, "old"), Version(0, 1))
        hist.append(CSetAdd(SET, "new"), Version(0, 5))
        assert hist.gc_before(vts(2), fold_cset=True) == 1
        assert [e.update.elem for e in hist] == ["new"]
        assert hist.cset_value(vts(2)).counts() == {"old": 1}
        assert hist.cset_value(vts(5)).counts() == {"old": 1, "new": 1}

    def test_cset_read_below_absorbed_version_raises(self):
        hist = ObjectHistory(SET)
        hist.append(CSetAdd(SET, "x"), Version(0, 1))
        hist.append(CSetAdd(SET, "x"), Version(0, 2))
        hist.gc_before(vts(2, 0), fold_cset=True)
        with pytest.raises(SnapshotTooOldError):
            hist.cset_value(vts(1, 0))

    def test_too_old_check_is_object_precise(self):
        # The site watermark may be far ahead of what was absorbed for
        # THIS object: a lagging (remote) snapshot that still sees every
        # absorbed version reads exactly, instead of failing spuriously.
        hist = ObjectHistory(SET)
        hist.append(CSetAdd(SET, "x"), Version(0, 1))
        hist.gc_before(vts(1, 50), fold_cset=True)
        assert hist.cset_value(vts(1, 0)).counts() == {"x": 1}

    def test_regular_read_below_floor_raises(self):
        hists = SiteHistories()
        hists.apply([DataUpdate(REG, b"v1")], Version(0, 1))
        hists.apply([DataUpdate(REG, b"v2")], Version(0, 2))
        hists.get(REG).gc_before(vts(2))
        assert hists.read_regular(REG, vts(2)) == b"v2"
        with pytest.raises(SnapshotTooOldError):
            hists.read_regular(REG, vts(1))

    def test_unmodified_since_stays_exact_after_prune(self):
        hist = ObjectHistory(REG)
        hist.append(DataUpdate(REG, b"v1"), Version(0, 1))
        hist.append(DataUpdate(REG, b"v2"), Version(0, 2))
        assert hist.gc_before(vts(2)) == 1
        # The pruned <0:1> must still count as a modification after
        # snapshot (0): the per-site absorbed maxima remember it.
        assert not hist.unmodified_since(vts(0))
        assert not hist.unmodified_since(vts(1))
        assert hist.unmodified_since(vts(2))

    def test_watermark_is_monotone(self):
        hist = ObjectHistory(SET)
        hist.append(CSetAdd(SET, "a"), Version(0, 1))
        hist.append(CSetAdd(SET, "b"), Version(1, 1))
        hist.gc_before(vts(1, 0), fold_cset=True)
        # A "lower" second watermark must not move it backwards.
        hist.gc_before(vts(0, 1), fold_cset=True)
        assert list(hist.gc_vts) == [1, 1]

    def test_append_below_watermark_rejected(self):
        hist = ObjectHistory(SET)
        hist.append(CSetAdd(SET, "a"), Version(0, 2))
        hist.gc_before(vts(2, 0), fold_cset=True)
        with pytest.raises(ValueError, match="below the GC watermark"):
            hist.append(CSetAdd(SET, "late"), Version(0, 1))

    def test_gc_drops_empty_histories(self):
        hists = SiteHistories()
        hists.apply([CSetAdd(SET, "x")], Version(0, 1))
        hists.apply([DataUpdate(REG, b"v")], Version(0, 2))
        hists.gc(vts(2), fold_cset=lambda oid: True)
        # The cset folded entirely into its base -> history retained
        # (the base IS state); the regular object keeps its last value.
        assert set(hists.known_oids()) == {SET, REG}
        assert hists.read_cset(SET, vts(2)).counts() == {"x": 1}

    def test_dump_load_roundtrip_preserves_reads(self):
        hists = SiteHistories()
        hists.apply([CSetAdd(SET, "x"), DataUpdate(REG, b"v1")], Version(0, 1))
        hists.apply([CSetAdd(SET, "y")], Version(1, 1))
        hists.apply([DataUpdate(REG, b"v2")], Version(0, 2))
        hists.gc(vts(1, 1), fold_cset=lambda oid: True)
        restored = SiteHistories.load(hists.dump())
        for probe in (vts(1, 1), vts(2, 1)):
            assert restored.read_cset(SET, probe) == hists.read_cset(SET, probe)
            assert restored.read_regular(REG, probe) == hists.read_regular(REG, probe)
        assert restored.get(SET).base_counts == hists.get(SET).base_counts
        assert restored.get(SET).gc_vts == hists.get(SET).gc_vts
        with pytest.raises(ValueError, match="below the GC watermark"):
            restored.apply([CSetAdd(SET, "late")], Version(0, 1))

    def test_remote_read_payload_includes_base_and_watermark(self):
        hists = SiteHistories()
        hists.apply([CSetAdd(SET, "x")], Version(0, 1))
        hists.apply([CSetAdd(SET, "y")], Version(0, 2))
        hists.gc(vts(1), fold_cset=lambda oid: True)
        payload = hists.remote_read_payload(SET, vts(2))
        assert payload["base"] == {"x": 1}
        assert list(payload["gc_vts"]) == [1]
        assert [(u.elem, v) for u, v in payload["entries"]] == [("y", Version(0, 2))]


# Satellite: GC must never change what a still-serveable snapshot reads
# or what the commit-time conflict check concludes.  Random multi-site
# histories, a random watermark, and probes at watermark-dominating
# snapshots; compare against an identical never-GC'd history.
_ENTRY = st.tuples(
    st.integers(0, 2),                      # origin site
    st.sampled_from(["add", "del", "data"]),
    st.integers(0, 3),                      # element / payload id
)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(_ENTRY, min_size=1, max_size=30),
    st.lists(st.integers(0, 40), min_size=3, max_size=3),   # watermark caps
    st.lists(st.integers(0, 5), min_size=3, max_size=3),    # probe deltas
    st.booleans(),
)
def test_gc_never_changes_reads_or_verdicts(entries, caps, deltas, fold):
    seqnos = [0, 0, 0]
    plain_set, gcd_set = ObjectHistory(SET), ObjectHistory(SET)
    plain_reg, gcd_reg = ObjectHistory(REG), ObjectHistory(REG)
    for site, op, elem in entries:
        seqnos[site] += 1
        version = Version(site, seqnos[site])
        if op == "data":
            for hist in (plain_reg, gcd_reg):
                hist.append(DataUpdate(REG, b"d%d" % elem), version)
        else:
            update = CSetAdd(SET, elem) if op == "add" else CSetDel(SET, elem)
            for hist in (plain_set, gcd_set):
                hist.append(update, version)
    watermark = VectorTimestamp([min(c, s) for c, s in zip(caps, seqnos)])
    gcd_set.gc_before(watermark, fold_cset=fold)
    gcd_reg.gc_before(watermark)
    probe = VectorTimestamp([w + d for w, d in zip(watermark, deltas)])
    assert probe.dominates(watermark)
    assert gcd_set.cset_value(probe) == plain_set.cset_value(probe)
    assert gcd_set.unmodified_since(probe) == plain_set.unmodified_since(probe)
    assert gcd_reg.unmodified_since(probe) == plain_reg.unmodified_since(probe)
    before = plain_reg.latest_visible(probe)
    after = gcd_reg.latest_visible(probe)
    if before is None:
        assert after is None
    else:
        assert after is not None
        assert (after.version, after.update.data) == (before.version, before.update.data)


@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "del"]), st.integers(0, 3)),
        max_size=20,
    ),
    st.integers(0, 20),
)
def test_cset_snapshot_prefix_property(ops, cut):
    """Reading a cset at snapshot k equals applying the first k committed
    operations directly -- history replay is exact."""
    hists = SiteHistories()
    expected = CSet()
    for seqno, (op, elem) in enumerate(ops, start=1):
        update = CSetAdd(SET, elem) if op == "add" else CSetDel(SET, elem)
        hists.apply([update], Version(0, seqno))
        if seqno <= cut:
            expected.add(elem) if op == "add" else expected.rem(elem)
    assert hists.read_cset(SET, vts(cut)) == expected
