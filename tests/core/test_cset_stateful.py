"""Stateful property test: CSet against collections.Counter semantics."""

from collections import Counter

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import CSet

ELEMS = ["a", "b", "c", 0, 1]


class CSetMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cset = CSet()
        self.model = Counter()

    @rule(elem=st.sampled_from(ELEMS), n=st.integers(0, 5))
    def add(self, elem, n):
        self.cset.add(elem, n)
        self.model[elem] += n

    @rule(elem=st.sampled_from(ELEMS), n=st.integers(0, 5))
    def rem(self, elem, n):
        self.cset.rem(elem, n)
        self.model[elem] -= n

    @rule(other_ops=st.lists(st.tuples(st.sampled_from(ELEMS), st.integers(-3, 3)), max_size=5))
    def merge(self, other_ops):
        other = CSet()
        for elem, delta in other_ops:
            if delta >= 0:
                other.add(elem, delta)
            else:
                other.rem(elem, -delta)
            self.model[elem] += delta
        self.cset = self.cset.merge(other)

    @invariant()
    def counts_match(self):
        expected = {e: c for e, c in self.model.items() if c != 0}
        assert self.cset.counts() == expected

    @invariant()
    def members_are_positive_counts(self):
        assert set(self.cset.members()) == {
            e for e, c in self.model.items() if c >= 1
        }

    @invariant()
    def len_counts_nonzero(self):
        assert len(self.cset) == sum(1 for c in self.model.values() if c != 0)


TestCSetStateful = CSetMachine.TestCase
