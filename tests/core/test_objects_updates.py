"""Tests for object ids, containers, and update buffers."""

import pytest

from repro.core import (
    CSetAdd,
    CSetDel,
    Container,
    DataUpdate,
    ObjectId,
    ObjectKind,
    apply_cset_ops,
    cset_set,
    last_data,
    touched_oids,
    updates_for,
    write_set,
)
from repro.core import CSet
from repro.errors import ConfigurationError, TypeMismatchError


def rid(local="a", container="c"):
    return ObjectId(container, local, ObjectKind.REGULAR)


def cid(local="s", container="c"):
    return ObjectId(container, local, ObjectKind.CSET)


class TestObjectId:
    def test_str_tags_kind(self):
        assert str(rid()) == "c/a#r"
        assert str(cid()) == "c/s#c"

    def test_is_cset(self):
        assert cid().is_cset
        assert not rid().is_cset

    def test_ids_are_value_types(self):
        assert rid() == rid()
        assert rid() != cid("a")  # same container/local, different kind
        assert len({rid(), rid(), cid()}) == 2


class TestContainer:
    def test_new_id_unique_and_in_container(self):
        cont = Container("user1", preferred_site=0, replica_sites={0, 1})
        a = cont.new_id()
        b = cont.new_id()
        assert a != b
        assert a.container == "user1"
        assert a.kind is ObjectKind.REGULAR

    def test_new_id_cset_and_explicit_local(self):
        cont = Container("u", preferred_site=0, replica_sites={0})
        oid = cont.new_id(ObjectKind.CSET, local="friends")
        assert oid == ObjectId("u", "friends", ObjectKind.CSET)

    def test_preferred_site_must_be_replica(self):
        with pytest.raises(ConfigurationError):
            Container("bad", preferred_site=2, replica_sites={0, 1})

    def test_replicated_at(self):
        cont = Container("u", preferred_site=0, replica_sites={0, 2})
        assert cont.replicated_at(0)
        assert not cont.replicated_at(1)


class TestUpdateTypes:
    def test_data_update_rejects_cset_oid(self):
        with pytest.raises(TypeMismatchError):
            DataUpdate(cid(), b"data")

    def test_cset_ops_reject_regular_oid(self):
        with pytest.raises(TypeMismatchError):
            CSetAdd(rid(), "x")
        with pytest.raises(TypeMismatchError):
            CSetDel(rid(), "x")


class TestBufferHelpers:
    def setup_method(self):
        self.buffer = [
            DataUpdate(rid("a"), b"1"),
            CSetAdd(cid("s"), "e1"),
            DataUpdate(rid("b"), b"2"),
            CSetDel(cid("s"), "e2"),
            DataUpdate(rid("a"), b"3"),
        ]

    def test_write_set_excludes_csets(self):
        # Fig 11: the write-set excludes updates to set objects.
        assert write_set(self.buffer) == {rid("a"), rid("b")}

    def test_cset_set(self):
        assert cset_set(self.buffer) == {cid("s")}

    def test_touched_oids(self):
        assert touched_oids(self.buffer) == {rid("a"), rid("b"), cid("s")}

    def test_updates_for_preserves_order(self):
        upd = updates_for(self.buffer, rid("a"))
        assert [u.data for u in upd] == [b"1", b"3"]

    def test_last_data_shadowing(self):
        found, data = last_data(self.buffer, rid("a"))
        assert found and data == b"3"
        found, data = last_data(self.buffer, rid("zzz"))
        assert not found and data is None

    def test_apply_cset_ops(self):
        base = CSet({"e2": 1})
        out = apply_cset_ops(base, self.buffer, cid("s"))
        assert out.counts() == {"e1": 1}
        assert base.counts() == {"e2": 1}  # input untouched
