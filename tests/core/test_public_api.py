"""The public API surface: everything advertised in __all__ exists and
the error hierarchy is sound."""

import importlib

import pytest

import repro
from repro import errors


@pytest.mark.parametrize("name", repro.__all__)
def test_top_level_exports_resolve(name):
    assert getattr(repro, name) is not None


@pytest.mark.parametrize(
    "module",
    [
        "repro.sim",
        "repro.net",
        "repro.core",
        "repro.spec",
        "repro.storage",
        "repro.config_service",
        "repro.server",
        "repro.client",
        "repro.baselines",
        "repro.bench",
        "repro.apps.waltsocial",
        "repro.apps.retwis",
    ],
)
def test_subpackage_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name) is not None, "%s.%s" % (module, name)


def test_error_hierarchy():
    subclasses = [
        errors.TransactionAborted,
        errors.TransactionStateError,
        errors.TypeMismatchError,
        errors.NoSuchContainerError,
        errors.PreferredSiteUnavailableError,
        errors.ConfigurationError,
    ]
    for exc in subclasses:
        assert issubclass(exc, errors.WalterError)
        assert issubclass(exc, Exception)


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_public_docstrings_exist():
    # Every public module and top-level export carries documentation.
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, "%s lacks a docstring" % name
