"""Tests for Version and VectorTimestamp (paper §5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import VectorTimestamp, Version, merge_all


def test_zeros():
    vts = VectorTimestamp.zeros(3)
    assert list(vts) == [0, 0, 0]
    assert vts.n_sites == 3


def test_visibility_rule():
    # v = <site, seqno> is visible to VTS iff seqno <= VTS[site].
    vts = VectorTimestamp([2, 4, 5])
    assert vts.visible(Version(0, 2))
    assert vts.visible(Version(1, 1))
    assert not vts.visible(Version(0, 3))
    assert vts.visible(Version(2, 5))
    assert not vts.visible(Version(2, 6))


def test_visible_rejects_unknown_site():
    vts = VectorTimestamp([1, 1])
    with pytest.raises(ValueError):
        vts.visible(Version(5, 1))


def test_advance_is_pure():
    vts = VectorTimestamp([1, 2])
    bumped = vts.advance(0)
    assert list(bumped) == [2, 2]
    assert list(vts) == [1, 2]


def test_with_entry():
    vts = VectorTimestamp([1, 2, 3])
    assert list(vts.with_entry(1, 9)) == [1, 9, 3]


def test_merge_elementwise_max():
    a = VectorTimestamp([1, 5, 0])
    b = VectorTimestamp([3, 2, 0])
    assert list(a.merge(b)) == [3, 5, 0]


def test_dominates_partial_order():
    a = VectorTimestamp([2, 2])
    b = VectorTimestamp([1, 2])
    c = VectorTimestamp([3, 0])
    assert a.dominates(b)
    assert a >= b
    assert b <= a
    assert not a.dominates(c)
    assert not c.dominates(a)  # incomparable


def test_width_mismatch_raises():
    with pytest.raises(ValueError):
        VectorTimestamp([1]).merge(VectorTimestamp([1, 2]))
    with pytest.raises(ValueError):
        VectorTimestamp([1]).dominates(VectorTimestamp([1, 2]))


def test_negative_seqno_rejected():
    with pytest.raises(ValueError):
        VectorTimestamp([0, -1])


def test_equality_and_hash():
    assert VectorTimestamp([1, 2]) == VectorTimestamp([1, 2])
    assert hash(VectorTimestamp([1, 2])) == hash(VectorTimestamp([1, 2]))
    assert VectorTimestamp([1, 2]) != VectorTimestamp([2, 1])


def test_merge_all():
    out = merge_all([VectorTimestamp([1, 0]), VectorTimestamp([0, 2])])
    assert list(out) == [1, 2]
    with pytest.raises(ValueError):
        merge_all([])


def test_version_ordering_stable():
    vs = sorted([Version(1, 2), Version(0, 9), Version(1, 1)])
    assert vs == [Version(0, 9), Version(1, 1), Version(1, 2)]


def test_version_str():
    assert str(Version(2, 7)) == "<2:7>"


vts_strategy = st.lists(st.integers(0, 50), min_size=1, max_size=5).map(VectorTimestamp)


@given(st.lists(st.integers(0, 50), min_size=2, max_size=5))
def test_merge_commutative(seqnos):
    half = len(seqnos) // 2
    a = VectorTimestamp(seqnos[:half] + [0] * (len(seqnos) - half))
    b = VectorTimestamp([0] * half + seqnos[half:])
    assert a.merge(b) == b.merge(a)


@given(st.lists(st.integers(0, 50), min_size=1, max_size=5))
def test_merge_idempotent_and_dominating(seqnos):
    vts = VectorTimestamp(seqnos)
    assert vts.merge(vts) == vts
    other = VectorTimestamp([s + 1 for s in seqnos])
    merged = vts.merge(other)
    assert merged.dominates(vts)
    assert merged.dominates(other)


@given(st.integers(0, 4), st.integers(0, 50), st.lists(st.integers(0, 50), min_size=5, max_size=5))
def test_dominating_snapshot_sees_more(site, seqno, seqnos):
    version = Version(site, seqno)
    vts = VectorTimestamp(seqnos)
    bigger = vts.advance(site)
    if vts.visible(version):
        assert bigger.visible(version)
