"""Tests for the Transaction and CommitRecord data types."""

import pytest

from repro.core import (
    CommitRecord,
    ObjectId,
    ObjectKind,
    Transaction,
    TxStatus,
    VectorTimestamp,
    Version,
    fresh_tid,
)
from repro.errors import TransactionStateError

REG = ObjectId("c", "r", ObjectKind.REGULAR)
REG2 = ObjectId("c", "r2", ObjectKind.REGULAR)
SET = ObjectId("c", "s", ObjectKind.CSET)


def make_tx():
    return Transaction(tid=fresh_tid(), site=0, start_vts=VectorTimestamp([0, 0]))


def test_fresh_tids_are_unique():
    assert fresh_tid() != fresh_tid()


def test_buffering_and_derived_sets():
    tx = make_tx()
    tx.buffer_write(REG, b"a")
    tx.buffer_set_add(SET, "x")
    tx.buffer_set_del(SET, "y")
    tx.buffer_write(REG2, b"b")
    assert tx.write_set == {REG, REG2}
    assert tx.cset_set == {SET}
    assert tx.touched == {REG, REG2, SET}
    assert not tx.is_read_only


def test_read_only_flag():
    assert make_tx().is_read_only


def test_commit_lifecycle():
    tx = make_tx()
    tx.mark_committed(Version(0, 5), at=1.25)
    assert tx.status is TxStatus.COMMITTED
    assert tx.version == Version(0, 5)
    assert tx.commit_time == 1.25


def test_abort_lifecycle():
    tx = make_tx()
    tx.mark_aborted()
    assert tx.status is TxStatus.ABORTED


def test_operations_after_commit_rejected():
    tx = make_tx()
    tx.mark_committed(Version(0, 1), at=0.0)
    with pytest.raises(TransactionStateError):
        tx.buffer_write(REG, b"late")
    with pytest.raises(TransactionStateError):
        tx.mark_aborted()


def test_operations_after_abort_rejected():
    tx = make_tx()
    tx.mark_aborted()
    with pytest.raises(TransactionStateError):
        tx.buffer_set_add(SET, "x")
    with pytest.raises(TransactionStateError):
        tx.mark_committed(Version(0, 1), at=0.0)


def test_commit_record_version_and_size():
    from repro.core import CSetAdd, DataUpdate

    record = CommitRecord(
        tid="t1",
        site=2,
        seqno=7,
        start_vts=VectorTimestamp([0, 0, 0]),
        updates=[DataUpdate(REG, b"x" * 100), CSetAdd(SET, "e")],
    )
    assert record.version == Version(2, 7)
    size = record.payload_bytes()
    assert size >= 100  # at least the data payload
    assert size < 1000


def test_commit_record_size_grows_with_data():
    from repro.core import DataUpdate

    small = CommitRecord("t", 0, 1, VectorTimestamp([0]), [DataUpdate(REG, b"x")])
    large = CommitRecord("t", 0, 1, VectorTimestamp([0]), [DataUpdate(REG, b"x" * 1000)])
    assert large.payload_bytes() > small.payload_bytes()
