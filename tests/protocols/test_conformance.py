"""Cross-protocol conformance: one seeded workload, four protocols, each
judged by its own oracle and by the inclusion lattice.

The same deterministic workload runs through every backend in the
registry.  Each run must (a) pass the protocol's own oracle, (b) pass
the oracle of every *weaker* level with a mechanically derived witness
-- a strict-serializable history is in particular SI/PSI/NMSI-
acceptable, a PSI history NMSI-acceptable, and everything eventually
consistent.
"""

import pytest

from repro.protocols.levels import (
    EVENTUAL,
    LATTICE_CHAIN,
    NMSI,
    PSI,
    SNAPSHOT_ISOLATION,
    STRICT_SERIALIZABILITY,
    level_index,
    weaker_levels,
)
from repro.protocols.registry import PROTOCOL_NAMES, build, get_protocol

from .conftest import drive_workload

# Build + drive each protocol once for the whole module: the subsequent
# tests interrogate the same deterministic run from different angles.
_driven = {}


def driven(name):
    if name not in _driven:
        backend = build(name, n_sites=3, seed=11)
        errors = drive_workload(backend)
        _driven[name] = (backend, errors)
    return _driven[name]


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_own_oracle_accepts_the_run(name):
    backend, _errors = driven(name)
    violations = backend.check()
    assert violations == [], "\n".join(str(v) for v in violations)


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_lattice_inclusion_holds(name):
    backend, _errors = driven(name)
    report = backend.lattice_report()
    flat = [
        "[%s] %s" % (level, v) for level, vs in report.items() for v in vs
    ]
    assert not flat, "\n".join(flat)


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_lattice_report_covers_every_weaker_checkable_level(name):
    backend, _errors = driven(name)
    report = backend.lattice_report()
    # Eventual consistency is checkable for everyone and always covered.
    assert EVENTUAL in report
    # Each report level must be genuinely weaker than the protocol's own.
    for level in report:
        assert level in weaker_levels(backend.isolation), (
            "%s reported non-weaker level %s" % (name, level)
        )


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_workload_made_progress(name):
    backend, errors = driven(name)
    tally = backend.history.outcome_tally()
    assert tally.get("COMMITTED", 0) >= 5, (tally, errors)


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_every_transaction_reached_a_terminal_state(name):
    backend, _errors = driven(name)
    for tx in backend.history.transactions:
        assert tx.status in ("COMMITTED", "ABORTED", "ERROR"), (
            "%s left %s in state %s" % (name, tx.tid, tx.status)
        )
        assert tx.end_time is not None


def test_all_protocols_attempted_identical_transaction_counts():
    counts = {
        name: len(driven(name)[0].history.transactions)
        for name in PROTOCOL_NAMES
    }
    assert len(set(counts.values())) == 1, counts


def test_isolation_levels_span_the_chain():
    levels = {name: get_protocol(name).isolation for name in PROTOCOL_NAMES}
    assert levels["consus"] == STRICT_SERIALIZABILITY
    assert levels["si"] == SNAPSHOT_ISOLATION
    assert levels["walter"] == PSI
    assert levels["nmsi"] == NMSI
    # Strongest-to-weakest ordering mirrors the lattice chain.
    assert sorted(levels.values(), key=level_index) == [
        lvl for lvl in LATTICE_CHAIN if lvl != EVENTUAL
    ]
