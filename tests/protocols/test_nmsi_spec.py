"""The NMSI spec engine: non-monotonicity allowed, lost updates and
inconsistent snapshots rejected."""

import pytest

from repro.core.objects import ObjectId, ObjectKind
from repro.errors import TransactionStateError
from repro.spec.nmsi_spec import (
    ABORTED,
    COMMITTED,
    INITIAL,
    NonMonotonicSnapshotIsolation,
)

A = ObjectId("nmsi-spec", "A", ObjectKind.REGULAR)
B = ObjectId("nmsi-spec", "B", ObjectKind.REGULAR)


def test_read_write_commit_roundtrip():
    spec = NonMonotonicSnapshotIsolation()
    t1 = spec.start_tx()
    assert spec.read(t1, A) is None
    spec.write(t1, A, 1)
    assert spec.commit_tx(t1) == COMMITTED
    t2 = spec.start_tx()
    assert spec.read(t2, A) == 1
    assert spec.committed_value(A) == 1


def test_snapshots_may_go_backwards_between_transactions():
    spec = NonMonotonicSnapshotIsolation()
    t1 = spec.start_tx()
    spec.write(t1, A, 1)
    assert spec.commit_tx(t1) == COMMITTED
    t2 = spec.start_tx()
    assert spec.read(t2, A) == 1
    assert spec.commit_tx(t2) == COMMITTED
    # The session's NEXT transaction may legally observe the old state.
    t3 = spec.start_tx()
    assert spec.read(t3, A, at=INITIAL) is None
    assert spec.commit_tx(t3) == COMMITTED


def test_lost_update_rejected():
    spec = NonMonotonicSnapshotIsolation()
    t1 = spec.start_tx()
    t2 = spec.start_tx()
    assert spec.read(t1, A) is None and spec.read(t2, A) is None
    spec.write(t1, A, 1)
    spec.write(t2, A, 2)
    assert spec.commit_tx(t1) == COMMITTED
    assert spec.commit_tx(t2) == ABORTED
    assert spec.committed_value(A) == 1


def test_snapshot_consistency_enforced():
    spec = NonMonotonicSnapshotIsolation()
    w1 = spec.start_tx()
    spec.write(w1, A, 1)
    assert spec.commit_tx(w1) == COMMITTED
    w2 = spec.start_tx()
    assert spec.read(w2, A) == 1
    spec.write(w2, B, 7)
    assert spec.commit_tx(w2) == COMMITTED  # B=7 depends on A=1

    r = spec.start_tx()
    assert spec.read(r, A, at=INITIAL) is None
    # B=7's closure contains a newer version of A than r observed.
    with pytest.raises(TransactionStateError):
        spec.read(r, B, at=w2.tid)
    # The default (newest consistent) read falls back to the initial B.
    assert spec.read(r, B) is None


def test_dependency_floor_blocks_older_reads():
    spec = NonMonotonicSnapshotIsolation()
    w1 = spec.start_tx()
    spec.write(w1, A, 1)
    spec.write(w1, B, 2)
    assert spec.commit_tx(w1) == COMMITTED
    r = spec.start_tx()
    assert spec.read(r, A) == 1  # drags w1 into r's dependency closure
    with pytest.raises(TransactionStateError):
        spec.read(r, B, at=INITIAL)  # cannot un-see w1
    assert spec.read(r, B) == 2


def test_blind_writes_chain_dependencies():
    spec = NonMonotonicSnapshotIsolation()
    b1 = spec.start_tx()
    spec.write(b1, A, 1)
    assert spec.commit_tx(b1) == COMMITTED
    b2 = spec.start_tx()
    spec.write(b2, A, 2)
    assert spec.commit_tx(b2) == COMMITTED
    # The overwriting blind write adopted its predecessor.
    assert b1.tid in spec.by_tid[b2.tid].deps
    assert spec.committed_value(A) == 2


def test_rmw_against_stale_version_aborts():
    spec = NonMonotonicSnapshotIsolation()
    w1 = spec.start_tx()
    spec.write(w1, A, 1)
    assert spec.commit_tx(w1) == COMMITTED
    stale = spec.start_tx()
    assert spec.read(stale, A, at=INITIAL) is None  # allowed: just stale
    spec.write(stale, A, 99)
    assert spec.commit_tx(stale) == ABORTED  # but writing through it is not


def test_operations_on_finished_tx_rejected():
    spec = NonMonotonicSnapshotIsolation()
    t1 = spec.start_tx()
    spec.write(t1, A, 1)
    assert spec.commit_tx(t1) == COMMITTED
    with pytest.raises(TransactionStateError):
        spec.read(t1, A)
    with pytest.raises(TransactionStateError):
        spec.commit_tx(t1)
    t2 = spec.start_tx()
    assert spec.abort_tx(t2) == ABORTED
    with pytest.raises(TransactionStateError):
        spec.write(t2, A, 5)


def test_reading_a_non_writer_version_rejected():
    spec = NonMonotonicSnapshotIsolation()
    w1 = spec.start_tx()
    spec.write(w1, A, 1)
    assert spec.commit_tx(w1) == COMMITTED
    r = spec.start_tx()
    with pytest.raises(TransactionStateError):
        spec.read(r, B, at=w1.tid)  # w1 never wrote B
    with pytest.raises(TransactionStateError):
        spec.read(r, A, at="no-such-tid")
