"""The acceptance lattice, made executable and property-tested.

Random tiny histories are run through the bounded-search acceptance
checkers (:mod:`repro.spec.acceptance`); acceptance must never invert
along the chain

    strict serializability => SI => PSI => NMSI => eventual

nor along the side branch strict => serializable => eventual.  The
canonical separating histories (write skew, long fork, non-monotonic
snapshot, the real-time stale read) pin each inclusion as *strict*.
"""

import pytest

from repro.spec.acceptance import (
    ACCEPTANCE_CHAIN,
    LiteTx,
    accepts_eventual,
    accepts_nmsi,
    accepts_psi,
    accepts_serializable,
    accepts_snapshot_isolation,
    accepts_strict_serializable,
)

hypothesis = pytest.importorskip(
    "hypothesis", reason="property test needs the bundled hypothesis"
)
from hypothesis import given, settings, strategies as st  # noqa: E402

KEYS = ["x", "y"]
VALUES = [1, 2]


def tx(tid, site, begin, end, ops, status="COMMITTED"):
    return LiteTx(
        tid=tid, site=site, begin=begin, end=end, status=status, ops=tuple(ops)
    )


# ----------------------------------------------------------------------
# Canonical histories: each strict inclusion has a separating witness.
# ----------------------------------------------------------------------
WRITE_SKEW = [
    tx("t1", 0, 0.0, 2.0, [("read", "x", None), ("read", "y", None), ("write", "x", 1)]),
    tx("t2", 0, 0.0, 2.0, [("read", "x", None), ("read", "y", None), ("write", "y", 1)]),
]

LONG_FORK = [
    tx("w1", 0, 0.0, 1.0, [("write", "x", 1)]),
    tx("w2", 1, 0.0, 1.0, [("write", "y", 1)]),
    tx("r1", 0, 2.0, 3.0, [("read", "x", 1), ("read", "y", None)]),
    tx("r2", 1, 2.0, 3.0, [("read", "x", None), ("read", "y", 1)]),
]

NON_MONOTONIC = [
    tx("w", 0, 0.0, 1.0, [("write", "x", 1)]),
    tx("see", 1, 2.0, 3.0, [("read", "x", 1)]),
    tx("unsee", 1, 4.0, 5.0, [("read", "x", None)]),
]

RT_STALE = [
    tx("w", 0, 0.0, 1.0, [("write", "x", 1)]),
    tx("r", 1, 2.0, 3.0, [("read", "x", None)]),
]

LOST_UPDATE = [
    tx("u1", 0, 0.0, 2.0, [("read", "x", None), ("write", "x", 1)]),
    tx("u2", 1, 0.0, 2.0, [("read", "x", None), ("write", "x", 2)]),
    tx("check", 0, 3.0, 4.0, [("read", "x", 1)]),
]

FABRICATED = [
    tx("r", 0, 0.0, 1.0, [("read", "x", 77)]),
]


@pytest.mark.parametrize(
    "history,expected",
    [
        # (strict, ser, si, psi, nmsi, eventual)
        (WRITE_SKEW, (False, False, True, True, True, True)),
        (LONG_FORK, (False, False, False, True, True, True)),
        (NON_MONOTONIC, (False, True, False, False, True, True)),
        (RT_STALE, (False, True, False, True, True, True)),
        (LOST_UPDATE, (False, False, False, False, False, True)),
        (FABRICATED, (False, False, False, False, False, False)),
    ],
    ids=["write-skew", "long-fork", "non-monotonic", "rt-stale", "lost-update",
         "fabricated"],
)
def test_canonical_histories_separate_the_levels(history, expected):
    got = (
        accepts_strict_serializable(history),
        accepts_serializable(history),
        accepts_snapshot_isolation(history),
        accepts_psi(history),
        accepts_nmsi(history),
        accepts_eventual(history),
    )
    assert got == expected


# ----------------------------------------------------------------------
# Property: acceptance never inverts along the lattice.
# ----------------------------------------------------------------------
@st.composite
def histories(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    txs = []
    for i in range(n):
        begin = draw(st.sampled_from([0.0, 1.0, 2.0, 3.0]))
        duration = draw(st.sampled_from([0.5, 1.5]))
        site = draw(st.integers(min_value=0, max_value=1))
        n_ops = draw(st.integers(min_value=1, max_value=3))
        ops = []
        for _ in range(n_ops):
            kind = draw(st.sampled_from(["read", "write"]))
            key = draw(st.sampled_from(KEYS))
            if kind == "write":
                ops.append(("write", key, draw(st.sampled_from(VALUES))))
            else:
                ops.append(("read", key, draw(st.sampled_from([None] + VALUES))))
        status = draw(
            st.sampled_from(["COMMITTED", "COMMITTED", "COMMITTED", "ABORTED"])
        )
        txs.append(
            tx("h%d" % i, site, begin, begin + duration, ops, status=status)
        )
    return txs


@given(histories())
@settings(max_examples=120, deadline=None)
def test_acceptance_monotone_along_the_chain(history):
    verdicts = [(name, checker(history)) for name, checker in ACCEPTANCE_CHAIN]
    for (strong_name, strong_ok), (weak_name, weak_ok) in zip(
        verdicts, verdicts[1:]
    ):
        assert not strong_ok or weak_ok, (
            "%s accepted but weaker %s rejected: %r"
            % (strong_name, weak_name, history)
        )


@given(histories())
@settings(max_examples=120, deadline=None)
def test_side_branch_strict_implies_serializable_implies_eventual(history):
    if accepts_strict_serializable(history):
        assert accepts_serializable(history)
    if accepts_serializable(history):
        assert accepts_eventual(history)


def test_chain_is_ordered_strongest_first():
    names = [name for name, _checker in ACCEPTANCE_CHAIN]
    assert names == [
        "strict_serializability",
        "snapshot_isolation",
        "psi",
        "nmsi",
        "eventual",
    ]
