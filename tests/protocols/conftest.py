"""Shared drivers for the protocol-zoo conformance suite.

``drive_workload`` pushes the *identical* seeded workload through any
backend: same keys, same per-session op sequence, same think times.
Sessions that sit at non-writable sites (the SI baseline's replicas)
run the read-only variant of each transaction, so every protocol sees
the same access pattern modulo its own write-placement rules.
"""

import random

import pytest

from repro.protocols.registry import PROTOCOL_NAMES, build

WORKLOAD_KEYS = ["zk%d" % i for i in range(5)]


def drive_workload(
    backend,
    sessions_per_site: int = 2,
    txs_per_session: int = 6,
    seed: int = 42,
    horizon: float = 90.0,
    settle: float = 30.0,
):
    """Run the standard seeded mixed read/write workload to completion;
    returns the list of per-client error strings (chaosless runs should
    produce none, but protocol aborts surface as statuses, not errors)."""
    errors = []

    def client(session, rng):
        can_write = session.site in backend.writable_sites
        for i in range(txs_per_session):
            yield backend.kernel.timeout(rng.uniform(0.01, 0.3))
            try:
                tid = yield from session.begin()
                k1 = rng.choice(WORKLOAD_KEYS)
                k2 = rng.choice(WORKLOAD_KEYS)
                value = yield from session.read(tid, k1)
                if can_write and rng.random() < 0.75:
                    yield from session.write(
                        tid, k2, "%s:%d:%s" % (session.name, i, value)
                    )
                else:
                    yield from session.read(tid, k2)
                yield from session.commit(tid)
            except Exception as exc:  # noqa: BLE001 - aborts are outcomes
                errors.append("%s tx%d: %r" % (session.name, i, exc))

    rng = random.Random("zoo-conformance:%d" % seed)
    procs = []
    for site in range(backend.n_sites):
        for _ in range(sessions_per_site):
            session = backend.session(site)
            crng = random.Random(rng.random())
            procs.append(
                backend.kernel.spawn(
                    client(session, crng), name="conf:%s" % session.name
                )
            )
    backend.kernel.run(until=horizon, stop_when=lambda: all(p.done for p in procs))
    assert all(p.done for p in procs), "workload did not drain by t=%s" % horizon
    backend.settle(settle)
    return errors


@pytest.fixture(params=PROTOCOL_NAMES)
def protocol_name(request):
    return request.param


@pytest.fixture
def backend(protocol_name):
    return build(protocol_name, n_sites=3, seed=11)
