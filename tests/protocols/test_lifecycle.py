"""Client-API lifecycle conformance, parametrized over the registry.

Every protocol exposes the same session surface; these tests pin the
semantics every member of the zoo must share regardless of isolation
level: read-your-writes inside a transaction, abort discarding buffered
writes, committed values becoming visible to later same-site
transactions, and faithful history bookkeeping.
"""

import pytest


def run(backend, gen, within=120.0):
    return backend.kernel.run_process(gen, until=backend.kernel.now + within)


def writer_site(backend):
    return backend.writable_sites[0]


def test_read_your_own_write(backend):
    site = writer_site(backend)
    session = backend.session(site)

    def tx():
        tid = yield from session.begin()
        yield from session.write(tid, "lk1", "mine")
        value = yield from session.read(tid, "lk1")
        yield from session.commit(tid)
        return value

    assert run(backend, tx()) == "mine"


def test_initial_read_is_none(backend):
    session = backend.session(writer_site(backend))

    def tx():
        tid = yield from session.begin()
        value = yield from session.read(tid, "lk-never-written")
        yield from session.commit(tid)
        return value

    assert run(backend, tx()) is None


def test_abort_discards_writes(backend):
    site = writer_site(backend)
    session = backend.session(site)

    def aborted_writer():
        tid = yield from session.begin()
        yield from session.write(tid, "lk2", "ghost")
        yield from session.abort(tid)

    run(backend, aborted_writer())
    backend.settle(20.0)

    def reader():
        tid = yield from session.begin()
        value = yield from session.read(tid, "lk2")
        yield from session.commit(tid)
        return value

    assert run(backend, reader()) is None


def test_commit_becomes_visible_to_later_same_site_tx(backend):
    site = writer_site(backend)
    session = backend.session(site)

    def writer():
        tid = yield from session.begin()
        yield from session.write(tid, "lk3", "durable")
        status = yield from session.commit(tid)
        return status

    assert run(backend, writer()) == "COMMITTED"
    backend.settle(20.0)

    def reader():
        tid = yield from session.begin()
        value = yield from session.read(tid, "lk3")
        yield from session.commit(tid)
        return value

    assert run(backend, reader()) == "durable"


def test_repeatable_read_within_a_transaction(backend):
    site = writer_site(backend)
    setup = backend.session(site)

    def writer(value):
        def gen():
            tid = yield from setup.begin()
            yield from setup.write(tid, "lk4", value)
            yield from setup.commit(tid)

        return gen()

    run(backend, writer("v1"))
    backend.settle(20.0)

    reader = backend.session(site)
    outcome = {}

    def read_twice():
        tid = yield from reader.begin()
        outcome["first"] = yield from reader.read(tid, "lk4")
        run_concurrent = backend.kernel.spawn(writer("v2"), name="interloper")
        while not run_concurrent.done:
            yield backend.kernel.timeout(0.5)
        outcome["second"] = yield from reader.read(tid, "lk4")
        yield from reader.commit(tid)

    run(backend, read_twice())
    assert outcome["first"] == "v1"
    assert outcome["second"] == outcome["first"], (
        "non-repeatable read: %r then %r" % (outcome["first"], outcome["second"])
    )


def test_history_records_ops_and_outcomes(backend):
    site = writer_site(backend)
    session = backend.session(site)

    def tx():
        tid = yield from session.begin()
        yield from session.read(tid, "lk5")
        yield from session.write(tid, "lk5", "x")
        status = yield from session.commit(tid)
        return tid, status

    tid, status = run(backend, tx())
    record = backend.history.by_tid(tid)
    assert record.status == status == "COMMITTED"
    assert ("read", "lk5", None) in record.ops
    assert ("write", "lk5", "x") in record.ops
    assert record.site == site
    assert record.end_time >= record.begin_time
    assert backend.history.outcome_tally().get("COMMITTED", 0) >= 1


def test_oracle_passes_on_lifecycle_history(backend):
    session = backend.session(writer_site(backend))

    def tx(i):
        def gen():
            tid = yield from session.begin()
            value = yield from session.read(tid, "lk6")
            yield from session.write(tid, "lk6", "gen%d:%s" % (i, value))
            yield from session.commit(tid)

        return gen()

    for i in range(3):
        run(backend, tx(i))
    backend.settle(20.0)
    violations = backend.check()
    assert violations == [], "\n".join(str(v) for v in violations)
