"""The oracles are not vacuous: tampering with a recorded history (or
its witness) must produce violations.

Each test drives a small real run, verifies the oracle accepts it, then
corrupts one aspect -- a read value, a witness field, an outcome -- and
asserts the oracle now rejects.  This is the guard that keeps the
conformance suite honest: a protocol bug that alters what clients
observe must be distinguishable from a clean run.
"""

import pytest

from repro.protocols.history import COMMITTED
from repro.protocols.oracles import check_consus, check_nmsi, check_si
from repro.protocols.registry import build

from .conftest import drive_workload


def driven(name, seed=23):
    backend = build(name, n_sites=3, seed=seed)
    drive_workload(backend, sessions_per_site=1, txs_per_session=4, seed=seed)
    return backend


def committed_with_read(history):
    for tx in history.committed():
        for kind, _key, _value in tx.ops:
            if kind == "read":
                return tx
    raise AssertionError("no committed transaction with a read")


def corrupt_first_read(tx):
    for i, (kind, key, _value) in enumerate(tx.ops):
        if kind == "read":
            tx.ops[i] = ("read", key, "fabricated-value-0xdead")
            return key
    raise AssertionError("no read to corrupt")


def test_si_oracle_detects_fabricated_read():
    backend = driven("si")
    assert backend.check() == []
    corrupt_first_read(committed_with_read(backend.history))
    assert any(v for v in check_si(backend.history))


def test_si_oracle_detects_duplicate_commit_ts():
    backend = driven("si")
    writers = [t for t in backend.history.committed() if t.write_set()]
    assert len(writers) >= 2
    # Two writers claiming the same commit timestamp breaks SI's single
    # commit order.
    writers[1].meta["commit_ts"] = writers[0].meta["commit_ts"]
    assert any(v for v in check_si(backend.history))


def test_nmsi_oracle_detects_fabricated_read():
    backend = driven("nmsi")
    assert backend.check() == []
    corrupt_first_read(committed_with_read(backend.history))
    assert any(v for v in check_nmsi(backend.history))


def test_nmsi_oracle_detects_forged_read_forward_witness():
    backend = driven("nmsi")
    assert backend.check() == []
    # Claiming to have read a version the dependency vector cannot see
    # is a read-forward violation.
    for tx in backend.history.committed():
        read_vers = tx.meta.get("read_vers") or {}
        real = [(k, v) for k, v in read_vers.items() if v is not None]
        if real:
            key, (site, _seqno) = real[0]
            forged = dict(read_vers)
            forged[key] = (site, 10_000)
            tx.meta["read_vers"] = forged
            break
    else:
        raise AssertionError("no committed tx with a non-initial read witness")
    assert any(v for v in check_nmsi(backend.history))


def test_consus_oracle_detects_fabricated_read():
    backend = driven("consus")
    assert backend.check() == []
    corrupt_first_read(committed_with_read(backend.history))
    assert any(v for v in check_consus(backend.history, backend))


def test_consus_oracle_detects_forged_slot():
    backend = driven("consus")
    assert backend.check() == []
    committed = [t for t in backend.history.committed() if "slot" in t.meta]
    assert committed
    committed[0].meta["slot"] = 10_000
    assert any(v for v in check_consus(backend.history, backend))


def test_consus_oracle_detects_real_time_inversion():
    backend = driven("consus")
    assert backend.check() == []
    committed = sorted(
        (t for t in backend.history.committed() if "slot" in t.meta),
        key=lambda t: t.meta["slot"],
    )
    assert len(committed) >= 2
    # Swap two slots: the earlier-in-real-time transaction now claims the
    # later slot, violating the strict-serializability real-time bound
    # (and the witness/log agreement).
    a, b = committed[0], committed[-1]
    a.meta["slot"], b.meta["slot"] = b.meta["slot"], a.meta["slot"]
    assert any(v for v in check_consus(backend.history, backend))


def test_walter_trace_checker_detects_tampered_read():
    backend = driven("walter")
    assert backend.check() == []
    reads = backend.world.trace.reads
    assert reads
    target = next((r for r in reads if r.tid in backend.world.trace.transactions),
                  reads[0])
    target.value = "fabricated-value-0xdead"
    assert any(v for v in backend.check())


def test_walter_lattice_detects_tampered_history_read():
    backend = driven("walter")
    report = backend.lattice_report()
    assert not any(vs for vs in report.values())
    corrupt_first_read(committed_with_read(backend.history))
    report = backend.lattice_report()
    assert any(vs for vs in report.values())


def test_outcome_forgery_detected_for_consus():
    backend = driven("consus")
    aborted = [t for t in backend.history.finished() if t.status != COMMITTED]
    if not aborted:
        pytest.skip("run produced no aborts to forge")
    # Claiming a commit (with a plausible slot) for a transaction the
    # replicated log never committed must be flagged.
    victim = aborted[0]
    victim.status = COMMITTED
    victim.meta["slot"] = 10_001
    assert any(v for v in check_consus(backend.history, backend))
