"""Chaos smoke for the protocol zoo: every registry backend survives a
seeded fault schedule and passes its own oracle plus the lattice report.

Fixed seeds keep these deterministic; the CI protocol-matrix job runs a
wider seed range via ``python -m repro.chaos --protocol <name>``.
"""

import pytest

from repro.chaos import ChaosConfig, ProtocolChaosConfig, run_chaos, run_protocol_chaos
from repro.chaos.protocols import generate_protocol_faults
from repro.protocols.registry import PROTOCOL_NAMES

SMOKE = dict(n_sites=3, horizon=10.0, fault_budget=3, clients_per_site=2,
             txs_per_client=4, settle=30.0)


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_protocol_chaos_smoke(name):
    result = run_protocol_chaos(ProtocolChaosConfig(protocol=name, seed=5, **SMOKE))
    detail = "\n".join(
        [str(v) for v in result.violations]
        + ["[%s] %s" % (lvl, v) for lvl, vs in result.lattice.items() for v in vs]
    )
    assert result.passed, detail
    assert result.outcomes.get("COMMITTED", 0) > 0, result.outcomes
    assert result.applied_faults, "schedule applied no faults"


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_protocol_chaos_verdict_deterministic(name):
    config = ProtocolChaosConfig(
        protocol=name, seed=6, n_sites=3, horizon=6.0, fault_budget=2,
        clients_per_site=1, txs_per_client=3, settle=20.0,
    )
    first = run_protocol_chaos(config)
    second = run_protocol_chaos(config)
    assert first.verdict_json() == second.verdict_json()


def test_fault_schedules_differ_across_protocols_but_not_runs():
    a = generate_protocol_faults(ProtocolChaosConfig(protocol="nmsi", seed=1))
    b = generate_protocol_faults(ProtocolChaosConfig(protocol="nmsi", seed=1))
    c = generate_protocol_faults(ProtocolChaosConfig(protocol="nmsi", seed=2))
    assert a == b
    assert a != c


def test_run_chaos_protocol_dispatch():
    result = run_chaos(
        ChaosConfig(seed=5, fault_budget=3, clients_per_site=1, txs_per_client=3),
        protocol="nmsi",
    )
    assert result.config.protocol == "nmsi"
    assert result.passed, result.verdict_json()


def test_run_chaos_rejects_schedule_with_protocol():
    with pytest.raises(ValueError):
        run_chaos(ChaosConfig(seed=1), schedule="anything", protocol="nmsi")
