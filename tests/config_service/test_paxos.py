"""Tests for the Paxos substrate: agreement, ordering, fault tolerance."""

import pytest

from repro.config_service import ProposalFailed, make_paxos_group
from repro.config_service.paxos import _unwrap
from repro.net import Network, Topology
from repro.sim import Kernel


def make_group(n=3, n_sites=None):
    kernel = Kernel()
    topo = Topology.ec2(min(n_sites or n, 4))
    net = Network(kernel, topo, jitter_frac=0.0)
    sites = [i % len(topo) for i in range(n)]
    nodes = make_paxos_group(kernel, net, sites)
    return kernel, net, nodes


def run_propose(kernel, node, value, within=30.0):
    return kernel.run_process(node.propose(value), until=kernel.now + within)


def test_single_proposal_chosen_everywhere():
    kernel, net, nodes = make_group(3)
    slot = run_propose(kernel, nodes[0], {"cmd": "a"})
    assert slot == 0
    kernel.run(until=kernel.now + 5.0)  # let learn messages spread
    for node in nodes:
        assert _unwrap(node.chosen[0]) == {"cmd": "a"}
        assert node.log_prefix() == [{"cmd": "a"}]


def test_sequential_proposals_fill_consecutive_slots():
    kernel, net, nodes = make_group(3)
    slots = [run_propose(kernel, nodes[0], "cmd-%d" % i) for i in range(3)]
    assert slots == [0, 1, 2]


def test_concurrent_proposers_agree_on_one_order():
    kernel, net, nodes = make_group(3)

    def proposer(node, value):
        slot = yield from node.propose(value)
        return slot

    procs = [
        kernel.spawn(proposer(nodes[i], "value-%d" % i), name="p%d" % i)
        for i in range(3)
    ]
    kernel.run(until=60.0)
    assert all(p.done for p in procs)
    slots = sorted(p.value for p in procs)
    assert slots == [0, 1, 2]  # all three values chosen, distinct slots
    kernel.run(until=kernel.now + 5.0)
    logs = [tuple(node.log_prefix()) for node in nodes]
    assert logs[0] == logs[1] == logs[2]
    assert sorted(logs[0]) == ["value-0", "value-1", "value-2"]


def test_survives_minority_crash():
    kernel, net, nodes = make_group(3)
    nodes[2].crash()
    slot = run_propose(kernel, nodes[0], "despite crash")
    assert slot == 0
    kernel.run(until=kernel.now + 5.0)
    assert _unwrap(nodes[1].chosen[0]) == "despite crash"


def test_majority_crash_blocks_progress():
    kernel, net, nodes = make_group(3)
    nodes[1].crash()
    nodes[2].crash()

    def proposer():
        with pytest.raises(ProposalFailed):
            yield from nodes[0].propose("doomed")
        return True

    assert kernel.run_process(proposer(), until=600.0) is True


def test_proposal_succeeds_after_partition_heals():
    kernel, net, nodes = make_group(3)
    # Partition node 0 (VA) from both peers.
    net.partition("VA", "CA")
    net.partition("VA", "IE")

    def healer():
        yield kernel.timeout(3.0)
        net.heal_all()

    def proposer():
        slot = yield from nodes[0].propose("after heal")
        return slot

    kernel.spawn(healer())
    proc = kernel.spawn(proposer())
    kernel.run(until=120.0)
    assert proc.done and proc.value == 0


def test_learner_applies_in_slot_order_despite_gaps():
    kernel, net, nodes = make_group(3)
    applied = []
    nodes[0].apply_fn = lambda slot, value: applied.append((slot, value))
    # Learn slot 1 before slot 0: nothing applies until 0 arrives.
    nodes[0]._learn(1, "b")
    assert applied == []
    nodes[0]._learn(0, "a")
    assert applied == [(0, "a"), (1, "b")]
    assert nodes[0].applied_upto == 2


def test_duplicate_learn_is_idempotent():
    kernel, net, nodes = make_group(3)
    applied = []
    nodes[0].apply_fn = lambda slot, value: applied.append(value)
    nodes[0]._learn(0, "a")
    nodes[0]._learn(0, "a")
    assert applied == ["a"]


def test_acceptor_promise_rejects_lower_ballots():
    kernel, net, nodes = make_group(3)
    node = nodes[0]
    assert node.rpc_prepare(0, (5, 0))["ok"]
    assert not node.rpc_prepare(0, (4, 0))["ok"]
    assert node.rpc_prepare(0, (6, 1))["ok"]


def test_acceptor_accept_respects_promise():
    kernel, net, nodes = make_group(3)
    node = nodes[0]
    node.rpc_prepare(0, (5, 0))
    assert not node.rpc_accept(0, (4, 0), "low")["ok"]
    assert node.rpc_accept(0, (5, 0), "exact")["ok"]
    # A higher prepare supersedes.
    reply = node.rpc_prepare(0, (9, 1))
    assert reply["ok"]
    assert reply["accepted_value"] == "exact"


def test_chosen_value_survives_new_proposer():
    # Classic safety: once a value is accepted by a majority, any later
    # proposer adopts it.
    kernel, net, nodes = make_group(3)
    run_propose(kernel, nodes[0], "winner")

    def second_proposer():
        # Proposes a different value: it must land in a *later* slot.
        slot = yield from nodes[1].propose("loser-then-winner")
        return slot

    slot = kernel.run_process(second_proposer(), until=60.0)
    assert slot == 1
    kernel.run(until=kernel.now + 5.0)
    assert _unwrap(nodes[1].chosen[0]) == "winner"
    assert _unwrap(nodes[1].chosen[1]) == "loser-then-winner"


def test_five_node_group_survives_two_crashes():
    kernel, net, nodes = make_group(5, n_sites=4)
    nodes[3].crash()
    nodes[4].crash()
    slot = run_propose(kernel, nodes[0], "3-of-5")
    assert slot == 0
