"""Tests for the replicated configuration service and lease table."""

import pytest

from repro.config_service import ConfigurationService, LeaseTable
from repro.errors import ConfigurationError, NoSuchContainerError
from repro.net import Network, Topology
from repro.sim import Kernel


def make_service(n_sites=3):
    kernel = Kernel()
    net = Network(kernel, Topology.ec2(n_sites), jitter_frac=0.0)
    service = ConfigurationService(kernel, net, sites=list(range(n_sites)))
    return kernel, net, service


def test_create_container_replicates_to_all_nodes():
    kernel, net, service = make_service()

    def driver():
        container = yield from service.create_container("alice", 0, {0, 1, 2})
        return container

    container = kernel.run_process(driver(), until=30.0)
    assert container.preferred_site == 0
    kernel.run(until=kernel.now + 5.0)
    for i in range(3):
        info = service.container_at(i, "alice")
        assert info.preferred_site == 0
        assert info.replica_sites == {0, 1, 2}
    assert service.consistent_prefixes()


def test_unknown_container_raises():
    kernel, net, service = make_service()
    with pytest.raises(NoSuchContainerError):
        service.container_at(0, "nobody")


def test_remove_site_reassigns_preferred_sites_and_bumps_epoch():
    kernel, net, service = make_service()

    def driver():
        yield from service.create_container("alice", 2, {0, 1, 2})
        yield from service.create_container("bob", 0, {0, 1, 2})
        yield from service.remove_site(2, reassign_to=0)

    kernel.run_process(driver(), until=60.0)
    kernel.run(until=kernel.now + 5.0)
    state = service.state_at(0)
    assert state.active_sites == {0, 1}
    assert state.epoch == 1
    assert state.containers["alice"].preferred_site == 0
    assert 2 not in state.containers["alice"].replica_sites
    assert state.containers["bob"].preferred_site == 0  # untouched


def test_reintegrate_site_restores_original_preferred_site():
    kernel, net, service = make_service()

    def driver():
        yield from service.create_container("alice", 2, {0, 1, 2})
        yield from service.remove_site(2, reassign_to=1)
        yield from service.reintegrate_site(2)

    kernel.run_process(driver(), until=90.0)
    kernel.run(until=kernel.now + 5.0)
    state = service.state_at(0)
    assert state.active_sites == {0, 1, 2}
    assert state.epoch == 2
    assert state.containers["alice"].preferred_site == 2
    assert 2 in state.containers["alice"].replica_sites
    assert state.displaced == {}


def test_commands_apply_in_same_order_on_all_replicas():
    kernel, net, service = make_service()

    def driver(via, cid, preferred):
        yield from service.create_container(cid, preferred, {0, 1, 2}, via=via)

    for via, cid in [(0, "a"), (1, "b"), (2, "c")]:
        kernel.spawn(driver(via, cid, via))
    kernel.run(until=120.0)
    kernel.run(until=kernel.now + 5.0)
    assert service.consistent_prefixes()
    logs = [node.log_prefix() for node in service.nodes]
    assert logs[0] == logs[1] == logs[2]
    assert len(logs[0]) == 3


def test_invalid_preferred_site_rejected_at_apply():
    kernel, net, service = make_service()

    def driver():
        with pytest.raises(ConfigurationError):
            yield from service.create_container("bad", 2, {0, 1})
        return True

    # The state machine's apply raises when the proposing node learns the
    # chosen command; the error surfaces to the submitter.
    assert kernel.run_process(driver(), until=30.0) is True


class TestLeaseTable:
    def test_grant_and_hold(self):
        kernel = Kernel()
        table = LeaseTable(kernel, default_duration=10.0)
        lease = table.grant("alice", holder=0)
        assert lease.valid(kernel.now)
        assert table.holder_of("alice") == 0
        assert table.holds("alice", 0)
        assert not table.holds("alice", 1)

    def test_conflicting_grant_rejected_while_valid(self):
        kernel = Kernel()
        table = LeaseTable(kernel, default_duration=10.0)
        table.grant("alice", holder=0)
        with pytest.raises(ConfigurationError):
            table.grant("alice", holder=1)

    def test_grant_after_expiry(self):
        kernel = Kernel()
        table = LeaseTable(kernel, default_duration=5.0)
        table.grant("alice", holder=0)

        def waiter():
            yield kernel.timeout(6.0)
            return table.grant("alice", holder=1)

        lease = kernel.run_process(waiter())
        assert lease.holder == 1
        assert table.holder_of("alice") == 1

    def test_renew_extends(self):
        kernel = Kernel()
        table = LeaseTable(kernel, default_duration=5.0)
        table.grant("alice", holder=0)

        def driver():
            yield kernel.timeout(4.0)
            table.renew("alice", 0)
            yield kernel.timeout(4.0)  # t=8: original would have expired
            return table.holder_of("alice")

        assert kernel.run_process(driver()) == 0

    def test_release_frees_scope(self):
        kernel = Kernel()
        table = LeaseTable(kernel, default_duration=100.0)
        table.grant("alice", holder=0)
        table.release("alice", holder=0)
        assert table.holder_of("alice") is None
        lease = table.grant("alice", holder=1)
        assert lease.holder == 1

    def test_release_by_non_holder_is_noop(self):
        kernel = Kernel()
        table = LeaseTable(kernel, default_duration=100.0)
        table.grant("alice", holder=0)
        table.release("alice", holder=1)
        assert table.holder_of("alice") == 0
