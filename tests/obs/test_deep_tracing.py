"""Deep tracing integration: commit-path milestones, causal parent
edges, exact latency budgets, and the completion-aware ring buffer.

Deep mode (``Deployment(tracing="deep")``) is recording-only -- it must
never create kernel events -- so a deep-traced run has the identical
simulated schedule of an untraced one (asserted in
``tests/sim/test_schedule_digest.py``).  These tests check what deep
mode *adds*: the milestone spans, the cross-hop parent links, and the
telescoping-budget exactness that critical-path attribution relies on.
"""

import json

from repro.bench import PAYLOAD, populate, run_closed_loop
from repro.deployment import Deployment
from repro.obs import (
    ABORT,
    CLIENT_COMMIT_REPLY,
    CLIENT_COMMIT_SEND,
    COMMIT_RPC_BEGIN,
    COMMIT_RPC_END,
    EXECUTE,
    FAST_COMMIT,
    GLOBALLY_VISIBLE,
    RPC_RECV,
    Tracer,
    WAL_FLUSH,
    aggregate_budgets,
    compute_budget,
    trace_events_jsonl,
)

#: Deep-only span names that must never leak into default tracing mode.
DEEP_NAMES = (
    CLIENT_COMMIT_SEND, CLIENT_COMMIT_REPLY, COMMIT_RPC_BEGIN,
    COMMIT_RPC_END, RPC_RECV, WAL_FLUSH,
)


def _run_workload(tracing):
    world = Deployment(n_sites=3, seed=7, tracing=tracing, trace_capacity=65536)
    keys = populate(world, n_keys=150)

    def factory(client, rng):
        site = client.site.id

        def op():
            tx = client.start_tx()
            oid = rng.choice(keys.by_site[site])
            yield from client.read(tx, oid)
            yield from client.write(tx, oid, PAYLOAD)
            if rng.random() < 0.3:
                # A second preferred site joins the write set: slow commit.
                remote = keys.by_site[(site + 1) % world.n_sites]
                yield from client.write(tx, rng.choice(remote), PAYLOAD)
            status = yield from client.commit(tx)
            return status

        return op

    run_closed_loop(
        world, factory, clients_per_site=3, warmup=0.05, measure=0.4,
        name="deep", seed=5,
    )
    world.settle(1.0)
    return world


class TestDeepSpans:
    def test_milestones_and_both_commit_classes(self):
        world = _run_workload("deep")
        names = {e.name for e in world.obs.tracer.events()}
        for name in DEEP_NAMES:
            assert name in names, name
        kinds = {t.commit_kind for t in world.obs.tracer.traces()}
        assert {"fast", "slow"} <= kinds

    def test_parent_edges_resolve_within_trace(self):
        world = _run_workload("deep")
        linked = 0
        for trace in world.obs.tracer.traces():
            seqs = {e.seq for e in trace.events}
            for event in trace.events:
                if event.parent is None:
                    continue
                linked += 1
                # A causal edge points at an earlier span of the same tx.
                assert event.parent in seqs, (trace.tid, event.name)
                assert event.parent < event.seq
        assert linked > 50  # rpc.recv + wal.flush + client replies

    def test_reply_parent_is_rpc_end(self):
        world = _run_workload("deep")
        checked = 0
        for trace in world.obs.tracer.traces():
            reply = trace.first(CLIENT_COMMIT_REPLY)
            end = trace.first(COMMIT_RPC_END)
            if reply is None or end is None:
                continue
            assert reply.parent == end.seq
            checked += 1
        assert checked > 20

    def test_budgets_telescope_exactly(self):
        world = _run_workload("deep")
        budgets = 0
        for trace in world.obs.tracer.traces():
            budget = compute_budget(trace)
            if budget is None or not budget.client_measured:
                continue
            budgets += 1
            # Segments are consecutive milestone differences, so their
            # sum telescopes to the client round trip bit-for-bit.
            assert abs(sum(budget.segments.values()) - budget.total) < 1e-12
            send = trace.first(CLIENT_COMMIT_SEND)
            reply = trace.first(CLIENT_COMMIT_REPLY)
            assert abs(budget.total - (reply.t - send.t)) < 1e-12
        assert budgets > 20
        table = aggregate_budgets(world.obs.tracer.traces(), client_only=True)
        assert "2pc_votes" not in table.classes["fast"]["segments"]
        assert "2pc_votes" in table.classes["slow"]["segments"]

    def test_default_mode_emits_no_deep_spans(self):
        world = _run_workload(True)
        stream = trace_events_jsonl(world.obs.tracer)
        assert stream
        for line in stream.splitlines():
            obj = json.loads(line)
            assert obj["event"] not in DEEP_NAMES
            assert "parent" not in obj

    def test_profiler_in_metrics_snapshot(self):
        world = _run_workload(True)
        snap = world.metrics_snapshot()
        profile = snap["access_profile"]
        assert set(profile) == set(range(world.n_sites))
        for site, prof in profile.items():
            assert prof["site"] == site
            assert prof["observations"] > 0
            assert prof["hot_keys"]
            for stats in prof["containers"].values():
                # Owner/non-owner attribution covers every read+write.
                assert (
                    stats["owner_ops"] + stats["nonowner_ops"]
                    == stats["reads"] + stats["writes"]
                )


class TestCompletionAwareRingBuffer:
    def _completed(self, tracer, tid, t0):
        tracer.record(tid, EXECUTE, 0, t0)
        tracer.record(tid, FAST_COMMIT, 0, t0 + 0.001)
        tracer.record(tid, GLOBALLY_VISIBLE, 0, t0 + 0.002)

    def test_long_lived_tx_outlives_buffer_window(self):
        tracer = Tracer(capacity=4)
        tracer.record("longtx", EXECUTE, 0, 0.0)
        for i in range(20):
            self._completed(tracer, "t%d" % i, t0=1.0 + i)
        assert tracer.traces_dropped > 0
        # The open trace survived the churn with its events intact...
        trace = tracer.get("longtx")
        assert trace is not None and not trace.completed
        tracer.record("longtx", FAST_COMMIT, 0, 30.0)
        assert [e.name for e in tracer.get("longtx").events] == [
            EXECUTE, FAST_COMMIT,
        ]
        # ...and becomes evictable only once finished.
        tracer.finish("longtx")
        for i in range(20, 30):
            self._completed(tracer, "t%d" % i, t0=40.0 + i)
        assert tracer.get("longtx") is None

    def test_abort_is_terminal(self):
        tracer = Tracer(capacity=2)
        tracer.record("a1", EXECUTE, 0, 0.0)
        tracer.record("a1", ABORT, 0, 0.001)
        for i in range(4):
            self._completed(tracer, "t%d" % i, t0=1.0 + i)
        assert tracer.get("a1") is None
