"""End-to-end span lifecycle through a real deployment.

Covers the ISSUE's satellite requirements: a slow-commit transaction's
trace contains the 2PC prepare/commit phases, its visibility lag is at
least its ds-durability lag, and per-site cache/lag metrics show up in
the shared registry.
"""

import pytest

from repro.bench import format_site_observability
from repro.deployment import Deployment
from repro.obs import (
    DISKLOG_FLUSH,
    DS_DURABLE,
    EXECUTE,
    FAST_COMMIT,
    GLOBALLY_VISIBLE,
    PROPAGATE_SEND,
    REMOTE_APPLY,
    REMOTE_COMMIT,
    SLOW_COMMIT_COMMIT,
    SLOW_COMMIT_PREPARE,
    compute_lag_report,
)


@pytest.fixture
def world():
    return Deployment(n_sites=2, tracing=True, seed=7)


def _commit_one(world, client, oid, payload=b"v"):
    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, payload)
        status = yield from client.commit(tx)
        return tx.tid, status

    tid, status = world.run_process(scenario())
    assert status == "COMMITTED"
    return tid


class TestFastCommitLifecycle:
    def test_full_span_sequence(self, world):
        world.create_container("local", preferred_site=0)
        client = world.new_client(0)
        tid = _commit_one(world, client, client.new_id("local"))
        world.settle(2.0)

        trace = world.obs.tracer.get(tid)
        names = [e.name for e in trace.events]
        for expected in (
            EXECUTE, FAST_COMMIT, DISKLOG_FLUSH, PROPAGATE_SEND,
            REMOTE_APPLY, DS_DURABLE, REMOTE_COMMIT, GLOBALLY_VISIBLE,
        ):
            assert expected in names, "missing %s in %s" % (expected, names)
        # Phases appear in causal order.
        assert names.index(EXECUTE) < names.index(FAST_COMMIT)
        assert names.index(FAST_COMMIT) < names.index(DISKLOG_FLUSH)
        assert names.index(DISKLOG_FLUSH) <= names.index(PROPAGATE_SEND)
        assert names.index(PROPAGATE_SEND) < names.index(REMOTE_APPLY)
        assert names.index(REMOTE_APPLY) < names.index(DS_DURABLE)
        assert names.index(DS_DURABLE) < names.index(GLOBALLY_VISIBLE)
        # Remote events come from the other site.
        assert trace.first(REMOTE_APPLY).site == 1
        assert trace.commit_kind == "fast"

    def test_lag_ordering_and_registry(self, world):
        world.create_container("local", preferred_site=0)
        client = world.new_client(0)
        tid = _commit_one(world, client, client.new_id("local"))
        world.settle(2.0)

        trace = world.obs.tracer.get(tid)
        repl = trace.replication_lag(1)
        ds = trace.ds_lag()
        vis = trace.visibility_lag()
        assert 0 < repl < ds  # applied remotely before all acks returned
        assert ds <= vis
        # The always-on histograms saw the same transaction.
        registry = world.obs.registry
        assert registry.histogram("server.ds_lag", site=0).count == 1
        assert registry.histogram("server.visibility_lag", site=0).count == 1
        assert registry.histogram("server.replication_lag", site=1).count == 1
        assert registry.histogram(
            "server.ds_lag", site=0
        ).sum == pytest.approx(ds)


class TestSlowCommitLifecycle:
    def test_prepare_commit_phases_and_lags(self, world):
        # Writing an object whose preferred site is remote forces the
        # 2PC slow-commit path (paper Fig 12).
        world.create_container("remote", preferred_site=1)
        client = world.new_client(0)
        tid = _commit_one(world, client, client.new_id("remote"))
        world.settle(2.0)

        trace = world.obs.tracer.get(tid)
        names = [e.name for e in trace.events]
        assert SLOW_COMMIT_PREPARE in names
        assert SLOW_COMMIT_COMMIT in names
        assert FAST_COMMIT not in names
        assert names.index(SLOW_COMMIT_PREPARE) < names.index(SLOW_COMMIT_COMMIT)
        assert trace.commit_kind == "slow"
        # Prepare waits for the participant's vote: at least one WAN
        # round trip before the commit phase.
        prepare = trace.first(SLOW_COMMIT_PREPARE)
        commit = trace.first(SLOW_COMMIT_COMMIT)
        assert commit.t - prepare.t > 0.010
        # Satellite requirement: visibility lag >= ds-durability lag.
        assert trace.ds_lag() is not None
        assert trace.visibility_lag() >= trace.ds_lag()

    def test_lag_report_covers_remote_site(self, world):
        world.create_container("remote", preferred_site=1)
        client = world.new_client(0)
        _commit_one(world, client, client.new_id("remote"))
        world.settle(2.0)

        report = compute_lag_report(world.obs.tracer, world.n_sites)
        assert len(report.replication[1]) == 1  # applied at site 1
        assert len(report.ds_durability[0]) == 1  # committed at site 0
        assert len(report.visibility[0]) == 1
        assert report.visibility[0].mean >= report.ds_durability[0].mean
        # Publishing gauges works and the formatted report renders.
        world.lag_report()
        snap = world.metrics_snapshot()
        assert "lag.visibility.mean{site=0}" in snap["gauges"]
        text = format_site_observability(world)
        assert "vis lag" in text and "site" in text


class TestCacheMetrics:
    def test_hit_rate_reaches_registry(self, world):
        world.create_container("local", preferred_site=0)
        client = world.new_client(0)
        oid = client.new_id("local")
        _commit_one(world, client, oid)

        def read_twice():
            tx = client.start_tx()
            yield from client.read(tx, oid)
            yield from client.commit(tx)
            tx = client.start_tx()
            yield from client.read(tx, oid)
            yield from client.commit(tx)

        world.run_process(read_twice())
        registry = world.obs.registry
        misses = registry.counter("cache.misses", site=0).value
        hits = registry.counter("cache.hits", site=0).value
        # Commit warmed the cache, so both reads hit.
        assert hits == 2 and misses == 0
        assert world.storages[0].cache.stats.hits == 2
        assert world.storages[0].cache.stats.hit_rate == 1.0


class TestZeroOverheadWhenDisabled:
    def test_no_tracer_no_spans(self):
        world = Deployment(n_sites=2, seed=7)  # tracing off (default)
        assert world.obs.tracer is None
        for server in world.servers:
            assert server._tracer is None
        world.create_container("local", preferred_site=0)
        client = world.new_client(0)
        _commit_one(world, client, client.new_id("local"))
        world.settle(2.0)
        # Counters and lag histograms still work without tracing.
        registry = world.obs.registry
        assert registry.counter("server.commits", site=0).value == 1
        assert registry.histogram("server.visibility_lag", site=0).count == 1
        text = format_site_observability(world)
        assert "ds lag" in text
