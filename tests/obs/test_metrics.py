"""Unit tests for the repro.obs metrics registry and instruments."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    Observability,
    log_buckets,
)


class TestCounterGauge:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x", site=0)
        c2 = reg.counter("x", site=0)
        assert c1 is c2
        c1.inc()
        c1.inc(3)
        assert c2.value == 4

    def test_labels_distinguish(self):
        reg = MetricsRegistry()
        reg.counter("x", site=0).inc()
        reg.counter("x", site=1).inc(5)
        assert reg.counter("x", site=0).value == 1
        assert reg.counter("x", site=1).value == 5

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        assert reg.counter("x", b=2, a=1).value == 1

    def test_gauge_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("lag", site=2)
        g.set(0.25, at=10.0)
        assert g.value == 0.25
        assert g.updated_at == 10.0


class TestHistogram:
    def test_log_buckets_span(self):
        bounds = log_buckets(1e-4, 256.0)
        assert bounds[0] == pytest.approx(1e-4)
        assert bounds[-1] >= 256.0
        for lo, hi in zip(bounds, bounds[1:]):
            assert hi == pytest.approx(lo * 2.0)

    def test_observe_and_stats(self):
        h = Histogram("h", ())
        for v in (0.001, 0.002, 0.004, 0.1):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(0.107)
        assert h.min == 0.001
        assert h.max == 0.1
        assert h.mean == pytest.approx(0.107 / 4)

    def test_percentile_empty(self):
        assert Histogram("h", ()).percentile(50) == 0.0

    def test_percentile_single_sample_clamped(self):
        h = Histogram("h", ())
        h.observe(0.005)
        assert h.percentile(50) == pytest.approx(0.005)
        assert h.percentile(99) == pytest.approx(0.005)

    def test_percentile_monotone(self):
        h = Histogram("h", ())
        for i in range(1, 101):
            h.observe(i / 1000.0)
        last = 0.0
        for p in (10, 25, 50, 75, 90, 99):
            value = h.percentile(p)
            assert value >= last
            last = value
        # Coarse but in the right neighbourhood (log-2 buckets).
        assert 0.02 <= h.percentile(50) <= 0.08

    def test_overflow_bucket(self):
        h = Histogram("h", ())
        h.observe(10 * DEFAULT_BUCKETS[-1])
        assert h.counts[-1] == 1
        assert h.percentile(99) == pytest.approx(10 * DEFAULT_BUCKETS[-1])


class TestSnapshot:
    def test_snapshot_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("b", site=1).inc()
        reg.counter("a", site=0).inc(2)
        reg.gauge("g", site=0).set(1.5)
        reg.histogram("h", site=0).observe(0.01)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a{site=0}", "b{site=1}"]
        assert snap["counters"]["a{site=0}"] == 2
        assert snap["gauges"]["g{site=0}"] == 1.5
        assert snap["histograms"]["h{site=0}"]["count"] == 1

    def test_observability_bundle(self):
        obs = Observability()
        assert obs.tracer is None and not obs.tracing
        obs = Observability(tracing=True, trace_capacity=16)
        assert obs.tracing and obs.tracer.capacity == 16
        assert obs.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
