"""Unit tests for the space-saving sketch and the access profiler."""

from repro.core.objects import ObjectId
from repro.obs import AccessProfiler, SpaceSaving


class TestSpaceSaving:
    def test_exact_below_capacity(self):
        sketch = SpaceSaving(capacity=8)
        for _ in range(5):
            sketch.observe("a", "reads")
        for _ in range(3):
            sketch.observe("b", "writes")
        assert sketch.get("a") == {"key": "a", "count": 5, "error": 0, "reads": 5}
        assert sketch.get("b")["count"] == 3
        assert sketch.evictions == 0

    def test_heavy_hitter_survives_churn(self):
        sketch = SpaceSaving(capacity=4)
        for i in range(200):
            sketch.observe("hot")
            sketch.observe("cold-%d" % i)  # 200 one-off keys force churn
        assert len(sketch) == 4
        assert sketch.evictions > 0
        top = sketch.top(1)[0]
        assert top["key"] == "hot"
        # Space-saving guarantee: count overestimates by at most error,
        # and the true count is within [count - error, count].
        assert top["count"] - top["error"] <= 200 <= top["count"]

    def test_eviction_is_deterministic(self):
        def run():
            sketch = SpaceSaving(capacity=3)
            for key in ("a", "b", "a", "c", "d", "e", "a", "d", "f"):
                sketch.observe(key)
            return sketch.top()

        assert run() == run()

    def test_owner_split(self):
        sketch = SpaceSaving(capacity=4)
        sketch.observe("k", "reads", owner=True)
        sketch.observe("k", "writes", owner=False)
        entry = sketch.get("k")
        assert entry["owner_ops"] == 1
        assert entry["nonowner_ops"] == 1


class TestAccessProfiler:
    def test_container_counters(self):
        profiler = AccessProfiler(site=1)
        oid = ObjectId("c1", "x")
        other = ObjectId("c2", "y")
        profiler.record_read(oid, owner=True)
        profiler.record_write(oid, owner=False)
        profiler.record_conflict(oid)
        profiler.record_remote_apply(other)
        snap = profiler.as_dict()
        assert snap["site"] == 1
        assert snap["containers"]["c1"] == {
            "reads": 1, "writes": 1, "conflicts": 1, "remote_applies": 0,
            "owner_ops": 1, "nonowner_ops": 1,
        }
        assert snap["containers"]["c2"]["remote_applies"] == 1
        assert snap["observations"] == 4
