"""Unit tests for the transaction tracer, ring buffer, and exporters."""

import io
import json

from repro.obs import (
    DS_DURABLE,
    EXECUTE,
    FAST_COMMIT,
    GLOBALLY_VISIBLE,
    REMOTE_APPLY,
    Tracer,
    dump_jsonl,
    format_timeline,
    trace_events_jsonl,
)


def _lifecycle(tracer, tid, t0=0.0):
    tracer.record(tid, EXECUTE, 0, t0)
    tracer.record(tid, FAST_COMMIT, 0, t0 + 0.002, seqno=7)
    tracer.record(tid, REMOTE_APPLY, 1, t0 + 0.045, origin=0)
    tracer.record(tid, DS_DURABLE, 0, t0 + 0.090)
    tracer.record(tid, GLOBALLY_VISIBLE, 0, t0 + 0.170)


class TestTracer:
    def test_trace_accumulates_events(self):
        tracer = Tracer()
        _lifecycle(tracer, "t1")
        trace = tracer.get("t1")
        assert [e.name for e in trace.events] == [
            EXECUTE, FAST_COMMIT, REMOTE_APPLY, DS_DURABLE, GLOBALLY_VISIBLE,
        ]
        assert trace.origin_site == 0
        assert trace.commit_kind == "fast"

    def test_derived_lags(self):
        tracer = Tracer()
        _lifecycle(tracer, "t1")
        trace = tracer.get("t1")
        assert trace.ds_lag() == 0.088
        assert trace.visibility_lag() == 0.168
        assert trace.replication_lag(1) == 0.043
        assert trace.replication_lag(0) is None  # no remote_apply at origin

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            _lifecycle(tracer, "t%d" % i, t0=float(i))
        assert len(tracer) == 3
        assert tracer.get("t0") is None and tracer.get("t1") is None
        assert tracer.get("t4") is not None
        assert tracer.traces_dropped == 2

    def test_events_global_order(self):
        tracer = Tracer()
        tracer.record("a", EXECUTE, 0, 0.0)
        tracer.record("b", EXECUTE, 1, 0.0)
        tracer.record("a", FAST_COMMIT, 0, 0.001)
        seqs = [e.seq for e in tracer.events()]
        assert seqs == sorted(seqs)
        assert [e.tid for e in tracer.events()] == ["a", "b", "a"]


class TestExporters:
    def test_jsonl_round_trip(self):
        tracer = Tracer()
        _lifecycle(tracer, "t1")
        text = trace_events_jsonl(tracer)
        lines = [json.loads(line) for line in text.strip().splitlines()]
        assert len(lines) == 5
        assert lines[0]["event"] == EXECUTE
        assert lines[1]["seqno"] == 7
        assert all("t" in line and "site" in line for line in lines)

    def test_dump_jsonl_to_file_object(self):
        tracer = Tracer()
        _lifecycle(tracer, "t1")
        buf = io.StringIO()
        n = dump_jsonl(tracer, buf)
        assert n == 5
        assert buf.getvalue() == trace_events_jsonl(tracer)

    def test_timeline_format(self):
        tracer = Tracer()
        _lifecycle(tracer, "t1")
        text = format_timeline(tracer.get("t1"))
        assert "t1 (fast commit, origin site 0)" in text
        assert "globally_visible" in text
        assert "+    0.000ms" in text
        # Offsets are relative to the first event.
        assert "+  170.000ms" in text
