"""Determinism guard: traces and metric snapshots are byte-identical
across runs of the same seeded workload.

Every timestamp in repro.obs comes from ``Kernel.now``; if wall-clock
time (or iteration over an unordered container) ever leaked into the
span or metrics path, these comparisons would fail.
"""

import json

from repro.bench import PAYLOAD, populate, run_closed_loop
from repro.deployment import Deployment
from repro.obs import trace_events_jsonl


def _run_workload(seed):
    world = Deployment(n_sites=2, seed=seed, tracing=True)
    keys = populate(world, n_keys=200)

    def factory(client, rng):
        site = client.site.id

        def op():
            tx = client.start_tx()
            oid = rng.choice(keys.by_site[site])
            value = yield from client.read(tx, oid)
            yield from client.write(tx, oid, PAYLOAD)
            status = yield from client.commit(tx)
            return "rw" if status == "COMMITTED" else "aborted"

        return op

    result = run_closed_loop(
        world, factory, clients_per_site=4, warmup=0.1, measure=0.4,
        name="determinism", seed=seed,
    )
    world.settle(1.0)
    return world, result


class TestDeterminism:
    def test_trace_streams_byte_identical(self):
        world_a, _ = _run_workload(seed=42)
        world_b, _ = _run_workload(seed=42)
        dump_a = trace_events_jsonl(world_a.obs.tracer)
        dump_b = trace_events_jsonl(world_b.obs.tracer)
        assert dump_a  # the workload actually traced something
        assert dump_a == dump_b

    def test_metric_snapshots_identical(self):
        world_a, result_a = _run_workload(seed=42)
        world_b, result_b = _run_workload(seed=42)
        snap_a = world_a.metrics_snapshot()
        snap_b = world_b.metrics_snapshot()
        assert snap_a["counters"]  # non-trivial
        # Byte-identical after canonical JSON encoding.
        assert json.dumps(snap_a, sort_keys=True) == json.dumps(snap_b, sort_keys=True)
        assert result_a.ops == result_b.ops
        # The harness-attached snapshot is the measurement-window view
        # and is equally deterministic.
        assert json.dumps(result_a.metrics, sort_keys=True) == json.dumps(
            result_b.metrics, sort_keys=True
        )

    def test_different_seed_differs(self):
        world_a, _ = _run_workload(seed=42)
        world_b, _ = _run_workload(seed=43)
        assert trace_events_jsonl(world_a.obs.tracer) != trace_events_jsonl(
            world_b.obs.tracer
        )
