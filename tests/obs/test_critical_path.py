"""Unit tests for critical-path attribution over hand-built traces."""

from repro.obs import (
    CLIENT_COMMIT_REPLY,
    CLIENT_COMMIT_SEND,
    COMMIT_CPU,
    COMMIT_LOCK_ACQUIRED,
    COMMIT_RPC_BEGIN,
    COMMIT_RPC_END,
    COMMIT_VOTES,
    DISKLOG_FLUSH,
    EXECUTE,
    FAST_COMMIT,
    SLOW_COMMIT_COMMIT,
    SLOW_COMMIT_PREPARE,
    Tracer,
    aggregate_budgets,
    compute_budget,
    format_budget_table,
)

_FAST_TIMELINE = (
    (CLIENT_COMMIT_SEND, 0.000),
    (COMMIT_RPC_BEGIN, 0.010),
    (COMMIT_CPU, 0.012),
    (COMMIT_LOCK_ACQUIRED, 0.013),
    (FAST_COMMIT, 0.014),
    (DISKLOG_FLUSH, 0.020),
    (COMMIT_RPC_END, 0.021),
    (CLIENT_COMMIT_REPLY, 0.031),
)


def _record(tracer, tid, timeline, site=0):
    for name, t in timeline:
        tracer.record(tid, name, site, t)


class TestComputeBudget:
    def test_fast_commit_full_chain(self):
        tracer = Tracer(deep=True)
        _record(tracer, "t1", _FAST_TIMELINE)
        budget = compute_budget(tracer.get("t1"))
        assert budget.kind == "fast"
        assert budget.client_measured
        assert abs(budget.total - 0.031) < 1e-12
        assert abs(budget.segments["request_net"] - 0.010) < 1e-12
        assert abs(budget.segments["cpu"] - 0.002) < 1e-12
        assert abs(budget.segments["lock_wait"] - 0.001) < 1e-12
        assert abs(budget.segments["commit_critical"] - 0.001) < 1e-12
        assert abs(budget.segments["wal_flush"] - 0.006) < 1e-12
        assert abs(budget.segments["reply_net"] - 0.010) < 1e-12
        # No 2PC on the fast path.
        assert "2pc_votes" not in budget.segments
        assert "prepare_setup" not in budget.segments
        assert abs(sum(budget.segments.values()) - budget.total) < 1e-12

    def test_slow_commit_has_vote_segment(self):
        tracer = Tracer(deep=True)
        _record(tracer, "t1", (
            (CLIENT_COMMIT_SEND, 0.000),
            (COMMIT_RPC_BEGIN, 0.010),
            (COMMIT_CPU, 0.011),
            (SLOW_COMMIT_PREPARE, 0.012),
            (COMMIT_VOTES, 0.095),
            (COMMIT_LOCK_ACQUIRED, 0.096),
            (SLOW_COMMIT_COMMIT, 0.097),
            (DISKLOG_FLUSH, 0.105),
            (COMMIT_RPC_END, 0.106),
            (CLIENT_COMMIT_REPLY, 0.116),
        ))
        budget = compute_budget(tracer.get("t1"))
        assert budget.kind == "slow"
        assert abs(budget.segments["2pc_votes"] - 0.083) < 1e-12
        assert abs(sum(budget.segments.values()) - budget.total) < 1e-12

    def test_missing_milestones_merge_into_next_segment(self):
        # Without the CPU milestone, its time lands in lock_wait: the
        # sum still telescopes to the total.
        tracer = Tracer(deep=True)
        _record(tracer, "t1", [
            (name, t) for name, t in _FAST_TIMELINE if name != COMMIT_CPU
        ])
        budget = compute_budget(tracer.get("t1"))
        assert "cpu" not in budget.segments
        assert abs(budget.segments["lock_wait"] - 0.003) < 1e-12
        assert abs(sum(budget.segments.values()) - budget.total) < 1e-12

    def test_server_window_without_client_spans(self):
        tracer = Tracer(deep=True)
        _record(tracer, "t1", [
            (name, t) for name, t in _FAST_TIMELINE
            if name not in (CLIENT_COMMIT_SEND, CLIENT_COMMIT_REPLY)
        ])
        budget = compute_budget(tracer.get("t1"))
        assert not budget.client_measured
        # Anchored at the first present milestone (rpc_begin).
        assert abs(budget.total - 0.011) < 1e-12
        assert "request_net" not in budget.segments

    def test_no_commit_no_budget(self):
        tracer = Tracer(deep=True)
        tracer.record("t1", EXECUTE, 0, 0.0)
        assert compute_budget(tracer.get("t1")) is None


class TestAggregateBudgets:
    def _tracer_with(self, n_fast):
        tracer = Tracer(deep=True)
        for i in range(n_fast):
            _record(tracer, "f%d" % i, _FAST_TIMELINE)
        return tracer

    def test_aggregation_and_shares(self):
        tracer = self._tracer_with(10)
        # One server-window trace that client_only must exclude.
        _record(tracer, "partial", [
            (name, t) for name, t in _FAST_TIMELINE
            if name != CLIENT_COMMIT_SEND
        ])
        table = aggregate_budgets(tracer.traces(), client_only=True)
        fast = table.classes["fast"]
        assert fast["count"] == 10
        assert abs(fast["total"]["mean"] - 0.031) < 1e-9
        shares = sum(s["share"] for s in fast["segments"].values())
        assert abs(shares - 1.0) < 1e-4
        both = aggregate_budgets(tracer.traces())
        assert both.classes["fast"]["count"] == 11

    def test_format_smoke(self):
        table = aggregate_budgets(self._tracer_with(3).traces())
        text = format_budget_table(table)
        assert "fast commit (n=3)" in text
        assert "wal_flush" in text
        empty = aggregate_budgets([])
        assert "no committed transactions" in format_budget_table(empty)
