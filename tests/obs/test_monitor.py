"""Online invariant monitor against the chaos harness.

The monitor must (a) stay silent -- no *active* alerts once the run
settles -- on clean fault-injected runs, (b) flag the planted protocol
bugs the post-hoc oracles also catch, while the run is still in flight,
and (c) never perturb the simulated schedule: a monitored run's verdict
is byte-identical to the unmonitored one.
"""

import itertools
import os
from dataclasses import replace

import repro.deployment as deployment
from repro.chaos import ChaosConfig, ReproArtifact, run_chaos

#: A fault schedule the clean protocol survives (part of CI's 1..10
#: smoke batch).
CLEAN_SEED = 5
#: Seed whose schedule trips the skip_resume_propagation planted bug
#: (see tests/chaos/test_planted_bug.py).
CATCHING_SEED = 2


def _pinned(fn):
    """Run ``fn`` with the process-global deployment counter pinned.

    Host names embed the counter, and they leak into injection-error
    strings inside chaos verdicts -- so comparing verdicts across runs
    requires both runs to see the same counter value, exactly like the
    wallclock chaos_replay scenario relies on fresh-process replays.
    """
    old = deployment._deploy_seq
    deployment._deploy_seq = itertools.count(1)
    try:
        return fn()
    finally:
        deployment._deploy_seq = old


def test_monitor_silent_on_clean_run_and_schedule_invisible():
    config = ChaosConfig(seed=CLEAN_SEED)
    plain = _pinned(lambda: run_chaos(config))
    monitored = _pinned(lambda: run_chaos(config, monitor=True))
    assert plain.passed and monitored.passed
    # Monitoring is passive: the verdict (oracle results, end time,
    # injection log) is byte-identical with the monitor attached.
    assert monitored.verdict_json() == plain.verdict_json()
    monitor = monitored.monitor
    assert monitor is not None and monitor.checks_run > 0
    # Transient breaches during injected faults may raise and resolve;
    # nothing may still be active after the run settles.
    assert monitor.active_alerts() == []
    assert all(a.resolved_at is not None for a in monitor.alerts)


def test_monitor_flags_skipped_propagation_resume():
    result = run_chaos(
        ChaosConfig(seed=CATCHING_SEED, bug="skip_resume_propagation"),
        monitor=True,
    )
    assert not result.passed  # the post-hoc oracles agree
    active = {a.kind for a in result.monitor.active_alerts()}
    # The never-resumed propagation leaves receivers permanently behind
    # the origin's committed frontier.
    assert "replication_stall" in active


def test_monitor_flags_leaked_prepare_locks():
    artifact = ReproArtifact.load(
        os.path.join(
            os.path.dirname(__file__), "..", "chaos", "seeds", "seed-401.json"
        )
    )
    result = run_chaos(
        replace(artifact.config, bug="leak_prepare_locks"),
        schedule=artifact.schedule,
        monitor=True,
    )
    assert not result.passed
    active = {a.kind for a in result.monitor.active_alerts()}
    # Orphaned prepare locks breach the lock-hold SLO and never resolve.
    assert "lock_hold" in active


def test_alert_serialization():
    result = run_chaos(ChaosConfig(seed=CLEAN_SEED), monitor=True)
    monitor = result.monitor
    summary = monitor.summary()
    assert summary["raised"] == len(monitor.alerts)
    assert summary["active"] == len(monitor.active_alerts())
    for alert in monitor.alerts:
        d = alert.to_dict()
        assert set(d) == {
            "kind", "site", "key", "raised_at", "resolved_at", "details",
        }
