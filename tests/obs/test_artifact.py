"""Run artifacts: determinism, round-trip, and the diff regression gate."""

import copy
import json

from repro.bench import PAYLOAD, populate, run_closed_loop
from repro.deployment import Deployment
from repro.obs import (
    collect_run,
    diff_artifacts,
    format_diff,
    load_artifact,
    write_artifact,
    write_run_artifact,
)
from repro.obs.__main__ import main as obs_main


def _run(seed=11):
    world = Deployment(n_sites=2, seed=seed, tracing="deep", trace_capacity=65536)
    keys = populate(world, n_keys=100)

    def factory(client, rng):
        site = client.site.id

        def op():
            tx = client.start_tx()
            oid = rng.choice(keys.by_site[site])
            yield from client.read(tx, oid)
            yield from client.write(tx, oid, PAYLOAD)
            status = yield from client.commit(tx)
            return status

        return op

    run_closed_loop(
        world, factory, clients_per_site=3, warmup=0.05, measure=0.3,
        name="artifact", seed=3,
    )
    world.settle(0.5)
    return world


class TestArtifactDeterminism:
    def test_same_seed_runs_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_run_artifact(a, _run(), "det", meta={"seed": 11})
        write_run_artifact(b, _run(), "det", meta={"seed": 11})
        assert a.read_bytes() == b.read_bytes()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "rt.jsonl"
        data = write_run_artifact(path, _run(), "rt", meta={"seed": 11})
        loaded = load_artifact(path)
        canon = lambda d: json.loads(json.dumps(d, sort_keys=True))
        for section in ("counters", "gauges", "hists", "budgets", "profiles"):
            assert canon(data[section]) == canon(loaded[section]), section
        assert loaded["meta"]["name"] == "rt"
        assert loaded["meta"]["seed"] == 11
        assert loaded["budgets"]["fast"]["count"] > 0


class TestDiff:
    def _base(self):
        return collect_run(_run(), "diff-base")

    def test_identical_is_clean(self):
        base = self._base()
        regressions, notes = diff_artifacts(base, copy.deepcopy(base))
        assert regressions == []
        assert notes == []

    def test_budget_regression_flagged(self):
        base = self._base()
        worse = copy.deepcopy(base)
        worse["budgets"]["fast"]["total"]["p99"] *= 1.5
        regressions, _ = diff_artifacts(base, worse)
        assert any("budget[fast].total.p99" in r for r in regressions)
        # Direction matters: the same move in reverse is only a note.
        regressions, notes = diff_artifacts(worse, base)
        assert not any("total.p99" in r for r in regressions)
        assert any("total.p99" in n for n in notes)

    def test_tiny_absolute_wiggle_ignored(self):
        base = self._base()
        wiggle = copy.deepcopy(base)
        # +50% relative but only 15us absolute: below ABS_FLOOR.
        wiggle["budgets"]["fast"]["segments"]["commit_critical"]["mean"] = (
            base["budgets"]["fast"]["segments"]["commit_critical"]["mean"] + 1.5e-5
        )
        regressions, _ = diff_artifacts(base, wiggle)
        assert regressions == []

    def test_throughput_drop_flagged(self):
        base = self._base()
        worse = copy.deepcopy(base)
        for key in worse["counters"]:
            if key.startswith("server.commits"):
                worse["counters"][key] = int(worse["counters"][key] * 0.5)
        regressions, _ = diff_artifacts(base, worse)
        assert any("server.commits" in r for r in regressions)

    def test_format_diff(self):
        text = format_diff(["budget[fast].total.p99: worse"], ["note-1"])
        assert "REGRESSIONS (1)" in text
        assert "note-1" in text
        assert "no regressions" in format_diff([], [])


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        base_path = tmp_path / "base.jsonl"
        data = write_run_artifact(base_path, _run(), "cli", meta={"seed": 11})
        worse = copy.deepcopy(data)
        worse["budgets"]["fast"]["total"]["p99"] *= 1.5
        worse_path = tmp_path / "worse.jsonl"
        write_artifact(worse_path, worse)

        assert obs_main(["summarize", str(base_path)]) == 0
        assert "fast commit" in capsys.readouterr().out
        assert obs_main(["diff", str(base_path), str(base_path)]) == 0
        assert obs_main(["diff", str(base_path), str(worse_path)]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out
