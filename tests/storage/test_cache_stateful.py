"""Stateful property test: ObjectCache against a reference model."""

from collections import OrderedDict

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import ObjectId, ObjectKind
from repro.storage import ObjectCache

CAPACITY = 4

KEYS = [ObjectId("c", "r%d" % i, ObjectKind.REGULAR) for i in range(3)] + [
    ObjectId("c", "s%d" % i, ObjectKind.CSET) for i in range(3)
]


class CacheMachine(RuleBasedStateMachine):
    """Model: two LRU OrderedDicts; evict regular first, then cset."""

    def __init__(self):
        super().__init__()
        self.cache = ObjectCache(CAPACITY)
        self.model_regular = OrderedDict()
        self.model_cset = OrderedDict()

    def _model_queue(self, oid):
        return self.model_cset if oid.kind is ObjectKind.CSET else self.model_regular

    @rule(oid=st.sampled_from(KEYS), value=st.integers())
    def put(self, oid, value):
        evicted = self.cache.put(oid, value)
        queue = self._model_queue(oid)
        if oid in queue:
            queue[oid] = value
            queue.move_to_end(oid)
            assert evicted is None
            return
        queue[oid] = value
        if len(self.model_regular) + len(self.model_cset) > CAPACITY:
            if self.model_regular:
                expected, _ = self.model_regular.popitem(last=False)
            else:
                expected, _ = self.model_cset.popitem(last=False)
            assert evicted == expected
        else:
            assert evicted is None

    @rule(oid=st.sampled_from(KEYS))
    def get(self, oid):
        hit, value = self.cache.get(oid)
        queue = self._model_queue(oid)
        if oid in queue:
            assert hit and value == queue[oid]
            queue.move_to_end(oid)
        else:
            assert not hit and value is None

    @rule(oid=st.sampled_from(KEYS))
    def invalidate(self, oid):
        self.cache.invalidate(oid)
        self._model_queue(oid).pop(oid, None)

    @invariant()
    def sizes_match(self):
        assert len(self.cache) == len(self.model_regular) + len(self.model_cset)
        assert len(self.cache) <= CAPACITY

    @invariant()
    def membership_matches(self):
        for oid in KEYS:
            assert (oid in self.cache) == (oid in self._model_queue(oid))


TestCacheStateful = CacheMachine.TestCase
