"""Tests for checkpointing and site storage recovery."""

import pytest

from repro.sim import Kernel
from repro.storage import Checkpointer, DiskLog, SiteStorage, FLUSH_MEMORY


def test_periodic_checkpoints_capture_state_and_log_position():
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=FLUSH_MEMORY)
    state = {"counter": 0}
    ckpt = Checkpointer(kernel, log, lambda: state, interval=10.0)
    ckpt.start()

    def workload():
        for i in range(4):
            yield kernel.timeout(6.0)
            state["counter"] += 1
            yield log.append("entry-%d" % i)

    kernel.spawn(workload())
    kernel.run(until=25.0)
    assert len(ckpt.checkpoints) == 2
    first, second = ckpt.checkpoints
    assert first.taken_at == pytest.approx(10.0)
    assert first.state == {"counter": 1}
    assert first.log_position == 1
    assert second.state == {"counter": 3}
    assert second.log_position == 3


def test_checkpoint_state_is_deep_copied():
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=FLUSH_MEMORY)
    state = {"items": []}
    ckpt = Checkpointer(kernel, log, lambda: state, interval=1.0)
    ckpt.start()
    kernel.run(until=1.5)
    state["items"].append("mutated later")
    assert ckpt.latest().state == {"items": []}


def test_recover_returns_checkpoint_plus_log_suffix():
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=FLUSH_MEMORY)
    state = {"n": 0}
    ckpt = Checkpointer(kernel, log, lambda: state, interval=5.0)
    ckpt.start()

    def workload():
        yield log.append("before")
        state["n"] = 1
        yield kernel.timeout(6.0)  # checkpoint fires at t=5
        yield log.append("after")

    kernel.spawn(workload())
    kernel.run(until=10.0)
    recovered_state, suffix = ckpt.recover()
    assert recovered_state == {"n": 1}
    assert suffix == ["after"]


def test_recover_with_no_checkpoint_replays_whole_log():
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=FLUSH_MEMORY)
    ckpt = Checkpointer(kernel, log, dict, interval=100.0)

    def workload():
        yield log.append("a")
        yield log.append("b")

    kernel.run_process(workload(), until=1.0)
    state, suffix = ckpt.recover()
    assert state is None
    assert suffix == ["a", "b"]


def test_stop_halts_checkpointing():
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=FLUSH_MEMORY)
    ckpt = Checkpointer(kernel, log, dict, interval=1.0)
    ckpt.start()
    kernel.run(until=2.5)
    ckpt.stop()
    kernel.run(until=10.0)
    assert len(ckpt.checkpoints) == 2


def test_invalid_interval():
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=FLUSH_MEMORY)
    with pytest.raises(ValueError):
        Checkpointer(kernel, log, dict, interval=0.0)


def test_site_storage_survives_server_replacement():
    kernel = Kernel()
    storage = SiteStorage(kernel, site=0, flush_latency=FLUSH_MEMORY)
    server_state = {"committed": ["t1"]}
    storage.attach_checkpointer(lambda: server_state, interval=1.0)

    def workload():
        yield storage.log.append({"tid": "t2"})
        yield kernel.timeout(1.5)  # let a checkpoint happen
        yield storage.log.append({"tid": "t3"})

    kernel.spawn(workload())
    # Stop before the t=2.0 checkpoint so t3 stays in the log suffix.
    kernel.run(until=1.8)
    # "Replacement server" reads durable state from the same storage.
    state, suffix = storage.recover()
    assert state == {"committed": ["t1"]}
    assert suffix == [{"tid": "t3"}]
    storage.metadata["lease"] = "site0"
    assert storage.metadata["lease"] == "site0"


def test_site_storage_reattach_replaces_checkpointer():
    kernel = Kernel()
    storage = SiteStorage(kernel, site=0, flush_latency=FLUSH_MEMORY)
    first = storage.attach_checkpointer(dict, interval=1.0)
    second = storage.attach_checkpointer(dict, interval=1.0)
    assert storage.checkpointer is second
    kernel.run(until=3.5)
    assert len(first.checkpoints) == 0  # stopped before ever firing
    assert len(second.checkpoints) == 3
