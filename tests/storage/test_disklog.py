"""Tests for the WAL with group commit."""

import pytest

from repro.sim import Kernel
from repro.storage import FLUSH_MEMORY, DiskLog


def test_append_becomes_durable_after_flush_latency():
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=0.005)

    def writer():
        record = yield log.append("payload")
        return (record.payload, kernel.now)

    payload, at = kernel.run_process(writer(), until=1.0)
    assert payload == "payload"
    assert at == pytest.approx(0.005)
    assert log.payloads() == ["payload"]


def test_group_commit_batches_concurrent_appends():
    # Records arriving during an in-progress flush share the next flush.
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=0.010)
    done_times = []

    def writer(delay, payload):
        yield kernel.timeout(delay)
        yield log.append(payload)
        done_times.append((payload, kernel.now))

    kernel.spawn(writer(0.0, "first"))
    kernel.spawn(writer(0.002, "second"))
    kernel.spawn(writer(0.004, "third"))
    kernel.run(until=1.0)
    times = dict(done_times)
    assert times["first"] == pytest.approx(0.010)
    # second and third were batched into one flush ending at 0.020.
    assert times["second"] == pytest.approx(0.020)
    assert times["third"] == pytest.approx(0.020)
    assert log.stats.flushes == 2
    assert log.stats.max_batch == 2


def test_memory_mode_is_immediate():
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=FLUSH_MEMORY)

    def writer():
        yield log.append("instant")
        return kernel.now

    assert kernel.run_process(writer(), until=1.0) == 0.0
    assert log.stats.records == 1


def test_payloads_in_append_order():
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=0.001)

    def writer():
        for i in range(5):
            yield log.append(i)

    kernel.run_process(writer(), until=1.0)
    assert log.payloads() == [0, 1, 2, 3, 4]


def test_truncate_gc():
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=FLUSH_MEMORY)

    def writer():
        for i in range(5):
            yield log.append(i)

    kernel.run_process(writer(), until=1.0)
    assert log.truncate(2) == 2
    assert log.payloads() == [2, 3, 4]
    assert log.truncate(99) == 3
    assert log.payloads() == []


def test_negative_flush_latency_rejected():
    with pytest.raises(ValueError):
        DiskLog(Kernel(), flush_latency=-1.0)


def test_throughput_exceeds_one_over_latency_with_group_commit():
    # 100 concurrent writers on a 10ms disk finish in ~30ms total
    # (3 flush generations), not 1 second -- the point of group commit.
    kernel = Kernel()
    log = DiskLog(kernel, flush_latency=0.010)
    finished = []

    def writer(i):
        yield log.append(i)
        finished.append(kernel.now)

    for i in range(100):
        kernel.spawn(writer(i))
    kernel.run(until=10.0)
    assert len(finished) == 100
    assert max(finished) <= 0.030
    assert log.stats.flushes <= 3
