"""Tests for the LRU cache with cset-preferring eviction."""

import pytest

from repro.core import ObjectId, ObjectKind
from repro.storage import ObjectCache


def reg(i):
    return ObjectId("c", "r%d" % i, ObjectKind.REGULAR)


def cst(i):
    return ObjectId("c", "s%d" % i, ObjectKind.CSET)


def test_hit_and_miss():
    cache = ObjectCache(capacity=2)
    cache.put(reg(1), "v1")
    hit, value = cache.get(reg(1))
    assert hit and value == "v1"
    hit, value = cache.get(reg(2))
    assert not hit and value is None
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_lru_eviction_order():
    cache = ObjectCache(capacity=2)
    cache.put(reg(1), "a")
    cache.put(reg(2), "b")
    cache.get(reg(1))  # refresh 1; 2 becomes LRU
    evicted = cache.put(reg(3), "c")
    assert evicted == reg(2)
    assert reg(1) in cache and reg(3) in cache


def test_put_existing_refreshes_without_eviction():
    cache = ObjectCache(capacity=2)
    cache.put(reg(1), "a")
    cache.put(reg(2), "b")
    assert cache.put(reg(1), "a2") is None
    assert cache.get(reg(1)) == (True, "a2")


def test_csets_evicted_only_as_last_resort():
    # §6: "the eviction policy prefers to evict regular objects rather
    # than csets".
    cache = ObjectCache(capacity=3)
    cache.put(cst(1), "cset-old")
    cache.put(reg(1), "reg")
    cache.put(cst(2), "cset-new")
    evicted = cache.put(reg(2), "reg2")
    assert evicted == reg(1)  # the only regular entry goes first
    assert cst(1) in cache and cst(2) in cache
    assert cache.stats.evictions_regular == 1


def test_cset_evicted_when_no_regular_left():
    cache = ObjectCache(capacity=2)
    cache.put(cst(1), "a")
    cache.put(cst(2), "b")
    evicted = cache.put(cst(3), "c")
    assert evicted == cst(1)
    assert cache.stats.evictions_cset == 1


def test_invalidate_and_clear():
    cache = ObjectCache(capacity=4)
    cache.put(reg(1), "a")
    cache.put(cst(1), "b")
    cache.invalidate(reg(1))
    assert reg(1) not in cache
    cache.invalidate(reg(99))  # no-op
    cache.clear()
    assert len(cache) == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        ObjectCache(capacity=0)


def test_len_spans_both_queues():
    cache = ObjectCache(capacity=10)
    cache.put(reg(1), "a")
    cache.put(cst(1), "b")
    assert len(cache) == 2
