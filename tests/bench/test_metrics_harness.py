"""Tests for the benchmark harness: metrics, closed-loop driver, reports."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench import (
    LatencyRecorder,
    format_cdf,
    format_table,
    paper_comparison,
    populate,
    read_tx_factory,
    run_closed_loop,
    write_tx_factory,
)
from repro.bench.metrics import BenchResult
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


class TestLatencyRecorder:
    def test_percentiles_simple(self):
        rec = LatencyRecorder()
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            rec.record(v)
        assert rec.percentile(0) == 1.0
        assert rec.percentile(50) == 3.0
        assert rec.percentile(100) == 5.0
        assert rec.percentile(25) == 2.0

    def test_percentile_interpolates(self):
        rec = LatencyRecorder()
        rec.record(0.0)
        rec.record(1.0)
        assert rec.percentile(50) == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder("empty").percentile(50)

    def test_single_sample(self):
        rec = LatencyRecorder()
        rec.record(7.0)
        assert rec.p50 == rec.p99 == rec.p999 == 7.0

    def test_summary_and_stats(self):
        rec = LatencyRecorder()
        for v in [0.001, 0.002, 0.003]:
            rec.record(v)
        summary = rec.summary_ms()
        assert summary["mean_ms"] == pytest.approx(2.0)
        assert summary["n"] == 3
        assert rec.min == 0.001 and rec.max == 0.003

    def test_cdf_monotone(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record(i / 100.0)
        points = rec.cdf(10)
        latencies = [p[0] for p in points]
        fractions = [p[1] for p in points]
        assert latencies == sorted(latencies)
        assert fractions[-1] == 1.0

    @given(st.lists(st.floats(0.0, 1e3), min_size=1, max_size=200))
    def test_percentile_bounds(self, samples):
        rec = LatencyRecorder()
        for s in samples:
            rec.record(s)
        for p in (0, 25, 50, 75, 99, 100):
            value = rec.percentile(p)
            assert min(samples) <= value <= max(samples)

    @given(st.lists(st.floats(0.0, 1e3), min_size=2, max_size=100))
    def test_percentile_monotone_in_p(self, samples):
        rec = LatencyRecorder()
        for s in samples:
            rec.record(s)
        values = [rec.percentile(p) for p in (0, 10, 50, 90, 100)]
        assert values == sorted(values)


class TestBenchResult:
    def test_throughput(self):
        rec = LatencyRecorder()
        rec.record(0.01)
        result = BenchResult("x", ops=500, errors=0, duration=0.5, latencies=rec)
        assert result.throughput == 1000.0
        assert result.ktps == 1.0
        assert "1.0 Kops/s" in result.describe()

    def test_zero_duration(self):
        result = BenchResult("x", 0, 0, 0.0, LatencyRecorder())
        assert result.throughput == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1.25], ["yyy", 2]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.2" in out and "yyy" in out

    def test_paper_comparison_ratio(self):
        out = paper_comparison([("exp", 10.0, 5.0)])
        assert "0.50x" in out

    def test_format_cdf(self):
        rec = LatencyRecorder("test")
        for i in range(10):
            rec.record(i * 0.001)
        out = format_cdf(rec, n_points=5)
        assert "100%" in out
        assert "ms" in out


class TestClosedLoop:
    def test_counts_only_measurement_window(self):
        world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
        keys = populate(world, n_keys=100)
        result = run_closed_loop(
            world, read_tx_factory(keys, 1), clients_per_site=4,
            warmup=0.05, measure=0.1, name="smoke",
        )
        assert result.ops > 0
        assert result.errors == 0
        assert result.duration == pytest.approx(0.1)
        assert len(result.latencies) == result.ops
        assert "read-1" in result.by_label

    def test_deterministic_given_seed(self):
        def one():
            world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, seed=5)
            keys = populate(world, n_keys=100)
            return run_closed_loop(
                world, write_tx_factory(keys, 1), clients_per_site=4,
                warmup=0.05, measure=0.1, seed=99,
            ).ops

        assert one() == one()

    def test_errors_counted_not_fatal(self):
        world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
        populate(world, n_keys=10)

        def flaky_factory(client, rng):
            state = {"n": 0}

            def op():
                state["n"] += 1
                yield client.kernel.timeout(0.001)
                if state["n"] % 2 == 0:
                    raise RuntimeError("boom")
                return "ok"

            return op

        result = run_closed_loop(
            world, flaky_factory, clients_per_site=2,
            warmup=0.01, measure=0.1, name="flaky",
        )
        assert result.ops > 0
        assert result.errors > 0
