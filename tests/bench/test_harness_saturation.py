"""Tests for the saturation-finding and fraction-of-max harness helpers."""

from repro.bench import (
    find_saturation,
    populate,
    read_tx_factory,
    run_at_fraction_of_max,
    run_closed_loop,
)
from repro.core import CSet
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


def make_world():
    world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, jitter_frac=0.0, seed=9)
    return world


def factory_for(world):
    keys = populate(world, n_keys=200)
    return read_tx_factory(keys, 1)


class _WorldFactory:
    """Builds a fresh world + op factory pair per call; remembers the op
    factory for the harness (which only takes make_world + op_factory)."""

    def __init__(self):
        self.latest_keys = None

    def __call__(self):
        world = make_world()
        self.latest_keys = populate(world, n_keys=200)
        return world


def shared_factory(keyspace_holder):
    def factory(client, rng):
        # Rebuild against whatever world the client belongs to: key oids
        # are deterministic across worlds (same seed), so reuse is safe.
        return read_tx_factory(keyspace_holder.latest_keys, 1)(client, rng)

    return factory


def test_find_saturation_returns_peak():
    holder = _WorldFactory()
    best = find_saturation(
        holder,
        shared_factory(holder),
        clients_grid=(1, 8),
        warmup=0.02,
        measure=0.1,
        name="sat",
    )
    assert "8-clients" in best.name  # more clients => more throughput here
    assert best.ops > 0


def test_run_at_fraction_of_max_is_below_peak():
    holder = _WorldFactory()
    peak = run_closed_loop(
        holder(), shared_factory(holder), clients_per_site=16,
        warmup=0.02, measure=0.1,
    )
    moderate = run_at_fraction_of_max(
        holder,
        shared_factory(holder),
        fraction=0.5,
        saturation_clients=16,
        warmup=0.02,
        measure=0.1,
    )
    assert moderate.ops > 0
    assert moderate.throughput <= peak.throughput * 1.1


def test_preload_accepts_cset_and_dict_values():
    world = make_world()
    container = world.create_container("c", preferred_site=0)
    from repro.core import ObjectKind

    as_cset = container.new_id(ObjectKind.CSET)
    as_dict = container.new_id(ObjectKind.CSET)
    seeded = CSet({"x": 2, "y": -1})
    world.preload({as_cset: seeded, as_dict: {"a": 1}})
    client = world.new_client(0)

    def scenario():
        tx = client.start_tx()
        first = yield from client.set_read(tx, as_cset)
        second = yield from client.set_read(tx, as_dict)
        yield from client.commit(tx)
        return (first.counts(), second.counts())

    first, second = world.run_process(scenario())
    assert first == {"x": 2, "y": -1}
    assert second == {"a": 1}
