"""Pin each WaltSocial operation's transaction structure to Fig 21:

    operation      objs+csets read   objs written   csets written
    read-info      3                 0              0
    befriend       2                 0              2
    status-update  1                 2              2
    post-message   2                 2              2

Verified against the execution trace: the committed transaction's update
buffer gives the write counts, and the recorded snapshot reads give the
read counts.
"""

import pytest

from repro.apps.waltsocial import WaltSocial, WaltSocialDB
from repro.core.updates import CSetAdd, CSetDel, DataUpdate
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY

FIG21 = {
    "read_info": (3, 0, 0),
    "befriend": (2, 0, 2),
    "status_update": (1, 2, 2),
    "post_message": (2, 2, 2),
}


def run_op(op_name):
    world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, trace=True)
    db = WaltSocialDB(world)
    db.populate(2)
    social = WaltSocial(db)
    client = world.new_client(0)
    if op_name == "read_info":
        gen = social.read_info(client, "user0")
    elif op_name == "befriend":
        gen = social.befriend(client, "user0", "user1")
    elif op_name == "status_update":
        gen = social.status_update(client, "user0", "hello")
    else:
        gen = social.post_message(client, "user0", "user1", "hey")
    result = world.run_process(gen)
    assert result["status"] == "COMMITTED"
    return world.trace


@pytest.mark.parametrize("op_name", list(FIG21))
def test_operation_structure_matches_fig21(op_name):
    expected_reads, expected_writes, expected_csets = FIG21[op_name]
    trace = run_op(op_name)

    reads = len(trace.reads)
    assert reads == expected_reads, "%s read %d objects, Fig 21 says %d" % (
        op_name, reads, expected_reads,
    )

    committed = [tx for tx in trace.transactions.values() if not tx.tid.startswith("preload")]
    if expected_writes == 0 and expected_csets == 0:
        assert committed == []  # read-only transaction
        return
    assert len(committed) == 1
    updates = committed[0].updates
    data_writes = sum(1 for u in updates if isinstance(u, DataUpdate))
    cset_writes = len({u.oid for u in updates if isinstance(u, (CSetAdd, CSetDel))})
    assert data_writes == expected_writes, op_name
    assert cset_writes == expected_csets, op_name
