"""Tests for the WaltSocial application (paper §7)."""

import pytest

from repro.apps.waltsocial import Profile, WaltSocial, WaltSocialDB
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


@pytest.fixture
def app():
    world = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    db = WaltSocialDB(world)
    db.populate(4, statuses_per_user=2, wall_posts_per_user=1)
    return world, db, WaltSocial(db)


def test_populate_creates_users_across_sites(app):
    world, db, social = app
    assert len(db) == 4
    assert db.user("user0").home_site == 0
    assert db.user("user1").home_site == 1
    assert db.user("user2").home_site == 0


def test_read_info_returns_profile_and_lists(app):
    world, db, social = app
    client = world.new_client(0)
    info = world.run_process(social.read_info(client, "user0"))
    assert info["status"] == "COMMITTED"
    assert isinstance(info["profile"], Profile)
    assert info["profile"].name == "user0"
    assert info["n_messages"] == 1  # one preloaded wall post


def test_befriend_is_symmetric_and_atomic(app):
    world, db, social = app
    client = world.new_client(0)
    result = world.run_process(social.befriend(client, "user0", "user2"))
    assert result["status"] == "COMMITTED"
    friends0 = world.run_process(social.friends_of(client, "user0"))
    friends2 = world.run_process(social.friends_of(client, "user2"))
    assert db.user("user2").profile in friends0
    assert db.user("user0").profile in friends2


def test_befriend_from_different_sites_converges(app):
    # Friend lists are csets: concurrent befriend ops at different sites
    # both commit and merge.
    world, db, social = app
    client0 = world.new_client(0)
    client1 = world.new_client(1)
    p0 = world.kernel.spawn(social.befriend(client0, "user0", "user1"))
    p1 = world.kernel.spawn(social.befriend(client1, "user1", "user2"))
    world.run(until=10.0)
    assert p0.value["status"] == "COMMITTED"
    assert p1.value["status"] == "COMMITTED"
    world.settle(3.0)
    friends1 = world.run_process(social.friends_of(client0, "user1"))
    assert db.user("user0").profile in friends1
    assert db.user("user2").profile in friends1


def test_unfriend_removes_both_sides(app):
    world, db, social = app
    client = world.new_client(0)
    world.run_process(social.befriend(client, "user0", "user2"))
    world.run_process(social.unfriend(client, "user0", "user2"))
    friends0 = world.run_process(social.friends_of(client, "user0"))
    assert db.user("user2").profile not in friends0


def test_status_update_rewrites_profile_and_lists(app):
    world, db, social = app
    client = world.new_client(0)
    result = world.run_process(social.status_update(client, "user0", "hello world"))
    assert result["status"] == "COMMITTED"
    info = world.run_process(social.read_info(client, "user0"))
    assert info["profile"].status == "hello world"
    assert info["n_messages"] == 2  # preloaded wall post + status event


def test_post_message_lands_on_recipient_wall(app):
    world, db, social = app
    client = world.new_client(0)
    result = world.run_process(social.post_message(client, "user0", "user2", "hi!"))
    assert result["status"] == "COMMITTED"
    wall = world.run_process(social.wall_of(client, "user2"))
    assert any(isinstance(p, str) and "hi!" in p for p in wall)


def test_cross_site_post_message_visible_after_propagation(app):
    world, db, social = app
    client0 = world.new_client(0)
    client1 = world.new_client(1)
    # user1's home is site 1; user0 posts from site 0 (cset: fast commit).
    result = world.run_process(social.post_message(client0, "user0", "user1", "cross-site"))
    assert result["status"] == "COMMITTED"
    assert world.server(0).stats.slow_commit_attempts == 0
    world.settle(3.0)
    wall = world.run_process(social.wall_of(client1, "user1"))
    assert any("cross-site" in str(p) for p in wall)


def test_album_create_and_add_photo(app):
    world, db, social = app
    client = world.new_client(0)
    created = world.run_process(social.create_album(client, "user0", "holiday"))
    assert created["status"] == "COMMITTED"
    added = world.run_process(
        social.add_photo(client, "user0", created["album"], b"\x89PNG...")
    )
    assert added["status"] == "COMMITTED"
    # The album (a cset) contains the photo oid.
    def check():
        tx = client.start_tx()
        album = yield from client.set_read(tx, created["album"])
        yield from client.commit(tx)
        return list(album.members())

    photos = world.run_process(check())
    assert added["photo"] in photos


def test_duplicate_user_rejected(app):
    world, db, social = app
    with pytest.raises(ValueError):
        db.create_user("user0", 0)
