"""The §3.4 in-flight mark: a freshly posted message is marked until it
has committed at all sites."""

from repro.apps.waltsocial import WaltSocial, WaltSocialDB
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


def make_app():
    world = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    db = WaltSocialDB(world)
    db.populate(2)
    return world, WaltSocial(db)


def test_mark_present_immediately_after_commit():
    world, social = make_app()
    client = world.new_client(0)

    def scenario():
        result = yield from social.post_message_marked(client, "user0", "user1", "hi")
        assert result["status"] == "COMMITTED"
        return result

    result = world.run_process(scenario())
    # Commit is local; global visibility needs a WAN round trip.
    assert result["in_flight"]() is True


def test_mark_removed_when_globally_visible():
    world, social = make_app()
    client = world.new_client(0)

    def scenario():
        result = yield from social.post_message_marked(client, "user0", "user1", "hi")
        yield result["visible_event"]
        return result

    result = world.run_process(scenario(), within=120.0)
    assert result["in_flight"]() is False
    # Once the mark clears, the post really is visible at the other site.
    client1 = world.new_client(1)
    wall = world.run_process(social.wall_of(client1, "user1"))
    assert any("hi" in str(p) for p in wall)


def test_mark_clears_after_roughly_two_round_trips():
    world, social = make_app()
    client = world.new_client(0)

    def scenario():
        result = yield from social.post_message_marked(client, "user0", "user1", "hi")
        committed_at = world.kernel.now
        yield result["visible_event"]
        return world.kernel.now - committed_at

    elapsed = world.run_process(scenario(), within=120.0)
    rtt = world.topology.rtt("VA", "CA")
    # DS durability within [RTT, 2RTT], visibility ~one more RTT.
    assert rtt * 1.5 <= elapsed <= rtt * 3.5 + 0.05
