"""Tests for ReTwis on both backends (paper §7, §8.7)."""

import pytest

from repro.apps.retwis import RedisReTwis, WalterReTwis, TIMELINE_SIZE
from repro.baselines import RedisServer
from repro.deployment import Deployment
from repro.net import Host, Network, Topology
from repro.sim import Kernel
from repro.storage import FLUSH_MEMORY


class TestWalterReTwis:
    @pytest.fixture
    def app(self):
        world = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
        retwis = WalterReTwis(world)
        retwis.populate(6, follows_per_user=2, seed=1)
        return world, retwis

    def test_populate_builds_symmetric_graph(self, app):
        world, retwis = app
        client = world.new_client(0)

        def check():
            tx = client.start_tx()
            following = yield from client.set_read(tx, retwis.users["u0"].following)
            yield from client.commit(tx)
            return list(following.members())

        following = world.run_process(check())
        assert following  # u0 follows someone
        for other in following:
            def check_back(other=other):
                tx = client.start_tx()
                followers = yield from client.set_read(tx, retwis.users[other].followers)
                yield from client.commit(tx)
                return list(followers.members())

            assert "u0" in world.run_process(check_back())

    def test_post_reaches_follower_timelines(self, app):
        world, retwis = app
        client = world.new_client(0)
        result = world.run_process(retwis.post(client, "u0", "first post"))
        assert result["status"] == "COMMITTED"
        world.settle(3.0)

        def follower_timeline(name):
            c = world.new_client(retwis.users[name].home_site)
            return world.run_process(retwis.status(c, name))

        # u0's own timeline has the post.
        own = follower_timeline("u0")
        assert any(p.text == "first post" for p in own)

    def test_follow_then_post_then_status(self, app):
        world, retwis = app
        client0 = world.new_client(0)
        client1 = world.new_client(1)
        world.run_process(retwis.follow(client1, "u1", "u0"))
        world.settle(3.0)
        world.run_process(retwis.post(client0, "u0", "hello u1"))
        world.settle(3.0)
        timeline = world.run_process(retwis.status(client1, "u1"))
        assert any(p.author == "u0" and p.text == "hello u1" for p in timeline)

    def test_timeline_is_newest_first_and_capped(self, app):
        world, retwis = app
        client = world.new_client(0)
        for i in range(TIMELINE_SIZE + 3):
            world.run_process(retwis.post(client, "u0", "post %d" % i))
        world.settle(3.0)
        timeline = world.run_process(retwis.status(client, "u0"))
        assert len(timeline) == TIMELINE_SIZE
        texts = [p.text for p in timeline]
        assert texts[0] == "post %d" % (TIMELINE_SIZE + 2)  # newest first
        assert texts == sorted(texts, key=lambda t: int(t.split()[1]), reverse=True)

    def test_unfollow_stops_future_posts(self, app):
        world, retwis = app
        client = world.new_client(0)
        # Fresh users outside the preloaded follower graph.
        retwis.register("fan", 0)
        retwis.register("star", 0)
        world.run_process(retwis.follow(client, "fan", "star"))
        world.run_process(retwis.unfollow(client, "fan", "star"))
        world.run_process(retwis.post(client, "star", "after unfollow"))
        world.settle(3.0)
        timeline = world.run_process(retwis.status(client, "fan"))
        assert not any(p.text == "after unfollow" for p in timeline)

    def test_concurrent_posts_to_same_timeline_never_conflict(self, app):
        # Timelines are csets: posts from both sites commit without
        # cross-site coordination (the reason for the port, §7).
        world, retwis = app
        client0 = world.new_client(0)
        client1 = world.new_client(1)
        world.run_process(retwis.follow(client0, "u4", "u0"))
        world.run_process(retwis.follow(client1, "u4", "u1"))
        world.settle(3.0)
        p0 = world.kernel.spawn(retwis.post(client0, "u0", "from site 0"))
        p1 = world.kernel.spawn(retwis.post(client1, "u1", "from site 1"))
        world.run(until=10.0)
        assert p0.value["status"] == "COMMITTED"
        assert p1.value["status"] == "COMMITTED"
        world.settle(3.0)
        client4 = world.new_client(0)
        texts = [p.text for p in world.run_process(retwis.status(client4, "u4"))]
        assert "from site 0" in texts and "from site 1" in texts


class TestRedisReTwis:
    @pytest.fixture
    def app(self):
        kernel = Kernel()
        net = Network(kernel, Topology.ec2(1), jitter_frac=0.0)
        server = RedisServer(kernel, net, 0, "redis-master")
        server.start()
        client = Host(kernel, net, 0, "web")
        client.start()
        retwis = RedisReTwis("redis-master")
        retwis.populate_direct(server, 6, follows_per_user=2, seed=1)
        return kernel, client, server, retwis

    def run(self, kernel, gen):
        return kernel.run_process(gen, until=kernel.now + 30.0)

    def test_post_increments_ids_and_stores(self, app):
        kernel, client, server, retwis = app
        r1 = self.run(kernel, retwis.post(client, "u0", "one"))
        r2 = self.run(kernel, retwis.post(client, "u0", "two"))
        assert r2["post"] == r1["post"] + 1
        assert server.data["post:%d" % r1["post"]] == ("u0", "one")

    def test_status_reads_followed_posts(self, app):
        kernel, client, server, retwis = app
        self.run(kernel, retwis.follow(client, "u5", "u0"))
        self.run(kernel, retwis.post(client, "u0", "hi"))
        timeline = self.run(kernel, retwis.status(client, "u5"))
        assert any(p.text == "hi" and p.author == "u0" for p in timeline)

    def test_timeline_capped_at_ten(self, app):
        kernel, client, server, retwis = app
        for i in range(13):
            self.run(kernel, retwis.post(client, "u0", "p%d" % i))
        timeline = self.run(kernel, retwis.status(client, "u0"))
        assert len(timeline) == TIMELINE_SIZE
        assert timeline[0].text == "p12"

    def test_empty_timeline(self, app):
        kernel, client, server, retwis = app
        retwis.register("loner", 0)
        assert self.run(kernel, retwis.status(client, "loner")) == []
