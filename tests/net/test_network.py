"""Tests for message delivery, bandwidth modelling, and fault injection."""

import pytest

from repro.net import Network, Topology
from repro.sim import Kernel


def make_net(n_sites=2, jitter=0.0, loss=0.0):
    kernel = Kernel()
    topo = Topology.ec2(n_sites)
    net = Network(kernel, topo, jitter_frac=jitter, loss_rate=loss)
    return kernel, topo, net


def test_delivery_latency_cross_site():
    kernel, topo, net = make_net()
    net.register("a", "VA")
    box = net.register("b", "CA")
    net.send("a", "b", "hello", size_bytes=100)

    def recv():
        message = yield box.get()
        return (message.payload, kernel.now)

    payload, at = kernel.run_process(recv())
    assert payload == "hello"
    expected = topo.one_way("VA", "CA") + 100 * 8 / 22e6 + Network.SOFTWARE_OVERHEAD
    assert at == pytest.approx(expected)


def test_delivery_latency_intra_site_is_fast():
    kernel, topo, net = make_net()
    net.register("a", "VA")
    box = net.register("b", "VA")
    net.send("a", "b", "x", size_bytes=100)

    def recv():
        yield box.get()
        return kernel.now

    at = kernel.run_process(recv())
    assert at < 0.001  # sub-millisecond within a site


def test_cross_site_link_serializes_fifo():
    # Two large back-to-back messages on the 22 Mbps link: the second's
    # serialization starts only after the first finishes.
    kernel, topo, net = make_net()
    net.register("a", "VA")
    box = net.register("b", "CA")
    size = 220_000  # 80 ms of serialization at 22 Mbps
    net.send("a", "b", 1, size_bytes=size)
    net.send("a", "b", 2, size_bytes=size)

    def recv():
        m1 = yield box.get()
        t1 = kernel.now
        m2 = yield box.get()
        return (m1.payload, t1, m2.payload, kernel.now)

    p1, t1, p2, t2 = kernel.run_process(recv())
    assert (p1, p2) == (1, 2)
    serialize = size * 8 / 22e6
    assert t2 - t1 == pytest.approx(serialize)


def test_partition_drops_both_directions():
    kernel, topo, net = make_net()
    net.register("a", "VA")
    net.register("b", "CA")
    net.partition("VA", "CA")
    net.send("a", "b", "lost")
    net.send("b", "a", "lost too")
    kernel.run()
    assert net.stats.dropped_partition == 2
    assert net.stats.delivered == 0
    assert net.is_partitioned("CA", "VA")


def test_heal_restores_connectivity():
    kernel, topo, net = make_net()
    net.register("a", "VA")
    box = net.register("b", "CA")
    net.partition("VA", "CA")
    net.heal("VA", "CA")
    net.send("a", "b", "ok")
    kernel.run()
    assert len(box) == 1


def test_partition_during_flight_drops_message():
    kernel, topo, net = make_net()
    net.register("a", "VA")
    box = net.register("b", "CA")
    net.send("a", "b", "in flight")

    def partitioner():
        yield kernel.timeout(0.001)  # before the ~41ms one-way delay
        net.partition("VA", "CA")

    kernel.spawn(partitioner())
    kernel.run()
    assert len(box) == 0
    assert net.stats.dropped_partition == 1


def test_crashed_host_does_not_receive():
    kernel, topo, net = make_net()
    net.register("a", "VA")
    box = net.register("b", "CA")
    net.crash_host("b")
    net.send("a", "b", "to the void")
    kernel.run()
    assert len(box) == 0
    assert net.stats.dropped_crash == 1
    net.recover_host("b")
    net.send("a", "b", "back")
    kernel.run()
    assert len(box) == 1


def test_crashed_host_cannot_send():
    kernel, topo, net = make_net()
    net.register("a", "VA")
    box = net.register("b", "CA")
    net.crash_host("a")
    net.send("a", "b", "nope")
    kernel.run()
    assert len(box) == 0


def test_random_loss_rate():
    kernel, topo, net = make_net(loss=1.0)
    net.register("a", "VA")
    box = net.register("b", "CA")
    net.send("a", "b", "gone")
    kernel.run()
    assert len(box) == 0
    assert net.stats.dropped_random == 1


def test_unknown_destination_raises():
    kernel, topo, net = make_net()
    net.register("a", "VA")
    with pytest.raises(ValueError):
        net.send("a", "nobody", "x")


def test_duplicate_registration_raises():
    kernel, topo, net = make_net()
    net.register("a", "VA")
    with pytest.raises(ValueError):
        net.register("a", "CA")


def test_jitter_is_deterministic_per_seed():
    def one_run():
        kernel, topo, net = make_net(jitter=0.10)
        net.register("a", "VA")
        box = net.register("b", "CA")
        for i in range(5):
            net.send("a", "b", i)
        times = []

        def recv():
            for _ in range(5):
                message = yield box.get()
                times.append(kernel.now)

        kernel.run_process(recv())
        return times

    assert one_run() == one_run()


def test_stats_byte_accounting():
    kernel, topo, net = make_net()
    net.register("a", "VA")
    net.register("b", "CA")
    net.send("a", "b", "x", size_bytes=1000)
    kernel.run()
    va, ca = topo.site("VA").id, topo.site("CA").id
    assert net.stats.bytes_by_link[(va, ca)] == 1000


def test_sent_counters_consistent_under_faults():
    """``net.sent`` (aggregate) and the per-site ``net.sent{site=*}``
    mirrors both count *attempted* sends: they are bumped together
    before any drop check, so the aggregate always equals the sum of
    the per-site counters -- even when partitions, crashes, and random
    loss drop most of the traffic."""
    from repro.obs import MetricsRegistry

    kernel, topo, net = make_net(n_sites=3, loss=0.5)
    registry = MetricsRegistry()
    net.bind_metrics(registry)
    net.register("a", "VA")
    net.register("b", "CA")
    net.register("c", "IE")
    net.partition("VA", "CA")
    net.crash_host("c")

    for i in range(40):
        net.send("a", "b", i)  # partitioned: dropped at send time
        net.send("b", "a", i)  # partitioned the other way
        net.send("c", "a", i)  # crashed source
        net.send("a", "c", i)  # delivered to a crashed host: dropped late
        net.send("b", "c", i)  # lossy + crashed destination
    kernel.run()

    per_site = [
        c.value
        for c in registry.counters()
        if c.name == "net.sent" and c.labels
    ]
    aggregate = registry.counter("net.sent").value
    assert aggregate == 200
    assert sum(per_site) == aggregate
    assert net.stats.sent == aggregate
    # Drops are attributed, not silently swallowed.
    dropped = (
        net.stats.dropped_partition
        + net.stats.dropped_crash
        + net.stats.dropped_random
    )
    assert net.stats.delivered == aggregate - dropped
