"""Tests for the RPC layer (calls, casts, errors, timeouts)."""

import pytest

from repro.net import Host, Network, RpcRemoteError, RpcTimeout, Topology
from repro.sim import Kernel


class EchoServer(Host):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.casts = []

    def rpc_echo(self, text):
        return "echo:%s" % text

    def rpc_slow_echo(self, text, delay):
        yield self.kernel.timeout(delay)
        return "slow:%s" % text

    def rpc_fail(self):
        raise ValueError("deliberate failure")

    def on_notify(self, src, value):
        self.casts.append((src, value))

    def on_slow_notify(self, src, value):
        yield self.kernel.timeout(1.0)
        self.casts.append((src, value, self.kernel.now))


class Client(Host):
    pass


def make_pair(client_site="VA", server_site="CA"):
    kernel = Kernel()
    net = Network(kernel, Topology.ec2(4), jitter_frac=0.0)
    server = EchoServer(kernel, net, server_site, "server")
    client = Client(kernel, net, client_site, "client")
    server.start()
    client.start()
    return kernel, client, server


def test_basic_rpc_roundtrip():
    kernel, client, server = make_pair()

    def caller():
        value = yield from client.call("server", "echo", text="hi")
        return (value, kernel.now)

    value, at = kernel.run_process(caller(), until=10.0)
    assert value == "echo:hi"
    # One VA<->CA round trip, ~82ms plus overheads.
    assert 0.082 <= at < 0.09


def test_generator_handler_blocks_on_sim_time():
    kernel, client, server = make_pair()

    def caller():
        value = yield from client.call("server", "slow_echo", text="x", delay=1.0)
        return (value, kernel.now)

    value, at = kernel.run_process(caller(), until=10.0)
    assert value == "slow:x"
    assert at > 1.082


def test_remote_exception_propagates():
    kernel, client, server = make_pair()

    def caller():
        try:
            yield from client.call("server", "fail")
        except RpcRemoteError as exc:
            return str(exc)

    assert "deliberate failure" in kernel.run_process(caller(), until=10.0)


def test_unknown_method_is_remote_error():
    kernel, client, server = make_pair()

    def caller():
        with pytest.raises(RpcRemoteError):
            yield from client.call("server", "no_such_method")
        return True

    assert kernel.run_process(caller(), until=10.0)


def test_rpc_timeout_on_partition():
    kernel, client, server = make_pair()
    client.network.partition("VA", "CA")

    def caller():
        with pytest.raises(RpcTimeout):
            yield from client.call("server", "echo", text="x", timeout=0.5)
        return kernel.now

    assert kernel.run_process(caller(), until=10.0) == pytest.approx(0.5)


def test_rpc_completes_before_timeout():
    kernel, client, server = make_pair()

    def caller():
        value = yield from client.call("server", "echo", text="x", timeout=5.0)
        return value

    assert kernel.run_process(caller(), until=10.0) == "echo:x"


def test_cast_delivers_one_way():
    kernel, client, server = make_pair()
    client.cast("server", "notify", value=7)
    kernel.run(until=1.0)
    assert server.casts == [("client", 7)]


def test_cast_generator_handler():
    kernel, client, server = make_pair()
    client.cast("server", "slow_notify", value=1)
    kernel.run(until=5.0)
    assert len(server.casts) == 1
    assert server.casts[0][:2] == ("client", 1)


def test_concurrent_rpcs_are_matched_by_id():
    kernel, client, server = make_pair()
    results = []

    def caller(text, delay):
        value = yield from client.call("server", "slow_echo", text=text, delay=delay)
        results.append(value)

    kernel.spawn(caller("first", 2.0))
    kernel.spawn(caller("second", 0.5))
    kernel.run(until=10.0)
    assert results == ["slow:second", "slow:first"]


def test_stopped_host_fails_pending_rpcs():
    kernel, client, server = make_pair()

    def caller():
        with pytest.raises(RpcTimeout):
            yield from client.call("server", "slow_echo", text="x", delay=5.0)
        return True

    def stopper():
        yield kernel.timeout(0.1)
        client.stop()

    proc = kernel.spawn(caller())
    kernel.spawn(stopper())
    kernel.run(until=20.0)
    assert proc.value is True


def test_crashed_server_never_replies():
    kernel, client, server = make_pair()

    def crasher():
        yield kernel.timeout(0.01)
        server.crash()

    def caller():
        with pytest.raises(RpcTimeout):
            yield from client.call("server", "echo", text="x", timeout=1.0)
        return True

    kernel.spawn(crasher())
    proc = kernel.spawn(caller())
    kernel.run(until=10.0)
    assert proc.value is True
