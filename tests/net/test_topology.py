"""Tests for the EC2 topology model (paper §8.1)."""

import pytest

from repro.net import Topology


def test_ec2_four_sites():
    topo = Topology.ec2(4)
    assert [s.name for s in topo.sites] == ["VA", "CA", "IE", "SG"]
    assert len(topo) == 4


def test_ec2_rtt_matches_paper_table():
    topo = Topology.ec2(4)
    # Paper values in ms, API returns seconds.
    assert topo.rtt("VA", "CA") == pytest.approx(0.082)
    assert topo.rtt("VA", "IE") == pytest.approx(0.087)
    assert topo.rtt("VA", "SG") == pytest.approx(0.261)
    assert topo.rtt("CA", "IE") == pytest.approx(0.153)
    assert topo.rtt("CA", "SG") == pytest.approx(0.190)
    assert topo.rtt("IE", "SG") == pytest.approx(0.277)
    assert topo.rtt("VA", "VA") == pytest.approx(0.0005)


def test_rtt_is_symmetric():
    topo = Topology.ec2(4)
    for a in ["VA", "CA", "IE", "SG"]:
        for b in ["VA", "CA", "IE", "SG"]:
            assert topo.rtt(a, b) == topo.rtt(b, a)


def test_one_way_is_half_rtt():
    topo = Topology.ec2(4)
    assert topo.one_way("VA", "SG") == pytest.approx(0.261 / 2)


def test_bandwidth_intra_vs_cross():
    topo = Topology.ec2(2)
    assert topo.bandwidth_bps("VA", "VA") == pytest.approx(600e6)
    assert topo.bandwidth_bps("VA", "CA") == pytest.approx(22e6)


def test_truncated_deployments_match_experiment_table():
    # Paper: 1-site VA; 2-sites VA,CA; 3-sites +IE; 4-sites +SG.
    assert [s.name for s in Topology.ec2(1).sites] == ["VA"]
    assert [s.name for s in Topology.ec2(2).sites] == ["VA", "CA"]
    assert [s.name for s in Topology.ec2(3).sites] == ["VA", "CA", "IE"]


def test_ec2_site_count_bounds():
    with pytest.raises(ValueError):
        Topology.ec2(0)
    with pytest.raises(ValueError):
        Topology.ec2(5)


def test_max_rtt_from_va_is_singapore():
    topo = Topology.ec2(4)
    assert topo.max_rtt_from("VA") == pytest.approx(0.261)


def test_max_rtt_single_site_is_local():
    topo = Topology.ec2(1)
    assert topo.max_rtt_from("VA") == pytest.approx(0.0005)


def test_site_resolution_by_id_name_instance():
    topo = Topology.ec2(2)
    site = topo.site("CA")
    assert topo.site(1) is not None
    assert topo.site(site.id).name == "CA"
    assert topo.site(site) == site


def test_uniform_topology():
    topo = Topology.uniform(3, rtt_ms=100.0)
    assert topo.rtt(0, 1) == pytest.approx(0.1)
    assert topo.rtt(0, 0) == pytest.approx(0.0005)
    assert len(topo) == 3


def test_duplicate_site_names_rejected():
    with pytest.raises(ValueError):
        Topology(["A", "A"], {("A", "A"): 1.0})


def test_missing_rtt_rejected():
    with pytest.raises(ValueError):
        Topology(["A", "B"], {("A", "A"): 1.0, ("B", "B"): 1.0})
