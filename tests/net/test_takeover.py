"""Tests for host takeover (replacement servers reuse their address)."""

import pytest

from repro.net import Host, Network, Topology
from repro.sim import Kernel


class Echo(Host):
    def __init__(self, *args, tag="", **kwargs):
        super().__init__(*args, **kwargs)
        self.tag = tag

    def rpc_who(self):
        return self.tag


def test_takeover_replaces_dead_host():
    kernel = Kernel()
    net = Network(kernel, Topology.ec2(2), jitter_frac=0.0)
    original = Echo(kernel, net, 0, "server", tag="original")
    original.start()
    client = Host(kernel, net, 1, "client")
    client.start()

    def ask():
        return (yield from client.call("server", "who", timeout=5.0))

    assert kernel.run_process(ask(), until=kernel.now + 10.0) == "original"

    original.crash()
    replacement = Echo(kernel, net, 0, "server", tag="replacement", takeover=True)
    replacement.start()
    assert kernel.run_process(ask(), until=kernel.now + 10.0) == "replacement"


def test_takeover_required_for_duplicate_address():
    kernel = Kernel()
    net = Network(kernel, Topology.ec2(1), jitter_frac=0.0)
    Echo(kernel, net, 0, "server", tag="a")
    with pytest.raises(ValueError):
        Echo(kernel, net, 0, "server", tag="b")
    Echo(kernel, net, 0, "server", tag="c", takeover=True)  # allowed


def test_takeover_clears_crash_flag_and_queued_mail():
    kernel = Kernel()
    net = Network(kernel, Topology.ec2(1), jitter_frac=0.0)
    Echo(kernel, net, 0, "server", tag="old")
    net.crash_host("server")
    assert net.is_crashed("server")
    replacement = Echo(kernel, net, 0, "server", tag="new", takeover=True)
    replacement.start()
    assert not net.is_crashed("server")
    assert len(replacement.mailbox) == 0
