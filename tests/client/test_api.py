"""Tests for the client library (Fig 14 API semantics)."""

import pytest

from repro.core import CSet, ObjectKind
from repro.deployment import Deployment
from repro.errors import TypeMismatchError
from repro.net import RpcRemoteError
from repro.storage import FLUSH_MEMORY


@pytest.fixture
def world():
    d = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    d.create_container("c", preferred_site=0)
    return d


def test_new_id_kinds_and_uniqueness(world):
    client = world.new_client(0)
    regular = client.new_id("c")
    cset = client.new_id("c", ObjectKind.CSET)
    assert regular.kind is ObjectKind.REGULAR
    assert cset.kind is ObjectKind.CSET
    assert regular != client.new_id("c")


def test_tx_handle_status_transitions(world):
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        assert tx.status is None
        assert not tx.committed
        yield from client.write(tx, oid, b"v")
        yield from client.commit(tx)
        return tx

    tx = world.run_process(scenario())
    assert tx.status == "COMMITTED"
    assert tx.committed


def test_abort_sets_status(world):
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"v")
        yield from client.abort(tx)
        return tx

    tx = world.run_process(scenario())
    assert tx.status == "ABORTED"
    assert not tx.committed


def test_tids_unique_across_clients(world):
    a = world.new_client(0)
    b = world.new_client(1)
    tids = {a.start_tx().tid, a.start_tx().tid, b.start_tx().tid}
    assert len(tids) == 3


def test_set_read_returns_cset_instance(world):
    client = world.new_client(0)
    cset_oid = client.new_id("c", ObjectKind.CSET)

    def scenario():
        tx = client.start_tx()
        yield from client.set_add(tx, cset_oid, "x")
        cset = yield from client.set_read(tx, cset_oid)
        yield from client.commit(tx)
        return cset

    cset = world.run_process(scenario())
    assert isinstance(cset, CSet)
    assert cset.counts() == {"x": 1}


def test_type_mismatch_surfaces_as_rpc_error(world):
    client = world.new_client(0)
    regular = client.new_id("c")
    cset_oid = client.new_id("c", ObjectKind.CSET)

    def scenario():
        tx = client.start_tx()
        with pytest.raises(RpcRemoteError, match="TypeMismatchError"):
            yield from client.set_add(tx, regular, "x")
        tx2 = client.start_tx()
        with pytest.raises(RpcRemoteError, match="TypeMismatchError"):
            yield from client.write(tx2, cset_oid, b"data")
        return True

    assert world.run_process(scenario()) is True


def test_multiread_and_multiwrite(world):
    client = world.new_client(0)
    oids = [client.new_id("c") for _ in range(3)]

    def scenario():
        tx = client.start_tx()
        yield from client.multiwrite(tx, [(oid, b"v%d" % i) for i, oid in enumerate(oids)])
        status = yield from client.commit(tx)
        assert status == "COMMITTED"
        tx2 = client.start_tx()
        values = yield from client.multiread(tx2, oids)
        yield from client.commit(tx2)
        return values

    assert world.run_process(scenario()) == [b"v0", b"v1", b"v2"]


def test_multiread_with_last_commits(world):
    client = world.new_client(0)
    oids = [client.new_id("c") for _ in range(2)]

    def scenario():
        tx = client.start_tx()
        values = yield from client.multiread(tx, oids, last=True)
        return (values, tx.status)

    values, status = world.run_process(scenario())
    assert values == [None, None]
    assert status == "COMMITTED"


def test_read_cset_objects_orders_and_limits(world):
    client = world.new_client(0)
    timeline = client.new_id("c", ObjectKind.CSET)

    def scenario():
        tx = client.start_tx()
        post_oids = []
        for i in range(5):
            oid = client.new_id("c")
            yield from client.write(tx, oid, "post %d" % i)
            yield from client.set_add(tx, timeline, (i, oid))
            post_oids.append(oid)
        yield from client.commit(tx)
        tx2 = client.start_tx()
        entries = yield from client.read_cset_objects(tx2, timeline, limit=3)
        yield from client.commit(tx2)
        return entries

    entries = world.run_process(scenario())
    assert len(entries) == 3
    assert [value for _elem, value in entries] == ["post 4", "post 3", "post 2"]


def test_ds_and_visible_callbacks_fire_once(world):
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"v")
        yield from client.commit(tx)
        ds_at = yield tx.ds_event
        visible_at = yield tx.visible_event
        return (ds_at, visible_at)

    ds_at, visible_at = world.run_process(scenario(), within=120.0)
    assert ds_at <= visible_at


def test_aborted_tx_gets_no_callbacks(world):
    client_a = world.new_client(0)
    client_b = world.new_client(0)
    oid = client_a.new_id("c")

    def scenario():
        tx_a = client_a.start_tx()
        tx_b = client_b.start_tx()
        yield from client_a.write(tx_a, oid, b"a")
        yield from client_b.write(tx_b, oid, b"b")
        yield from client_a.commit(tx_a)
        status = yield from client_b.commit(tx_b)
        return (status, tx_b.ds_event.triggered)

    status, triggered = world.run_process(scenario())
    assert status == "ABORTED"
    assert not triggered
