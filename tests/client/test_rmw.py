"""Tests for the §3.4 read-modify-write client idioms."""

import pytest

from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


@pytest.fixture
def world():
    d = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    d.create_container("c", preferred_site=0)
    return d


def test_atomic_increment_from_nil(world):
    client = world.new_client(0)
    oid = client.new_id("c")
    status, value = world.run_process(client.atomic_increment(oid))
    assert (status, value) == ("COMMITTED", 1)
    status, value = world.run_process(client.atomic_increment(oid, delta=5))
    assert (status, value) == ("COMMITTED", 6)


def test_concurrent_increments_never_lose_updates(world):
    # The lost-update anomaly is precluded: N concurrent increments
    # always total N.
    clients = [world.new_client(0) for _ in range(4)]
    oid = clients[0].new_id("c")

    def incrementer(client):
        for _ in range(5):
            status, _ = yield from client.atomic_increment(oid, retries=50)
            assert status == "COMMITTED"

    procs = [world.kernel.spawn(incrementer(c)) for c in clients]
    world.run(until=30.0)
    assert all(p.done for p in procs)

    def reader():
        tx = clients[0].start_tx()
        value = yield from clients[0].read(tx, oid)
        yield from clients[0].commit(tx)
        return value

    assert world.run_process(reader()) == 20


def test_read_modify_write_custom_fn(world):
    client = world.new_client(0)
    oid = client.new_id("c")
    status, value = world.run_process(
        client.read_modify_write(oid, lambda old: (old or "") + "x")
    )
    assert (status, value) == ("COMMITTED", "x")
    status, value = world.run_process(
        client.read_modify_write(oid, lambda old: old + "y")
    )
    assert value == "xy"


def test_conditional_write_succeeds_on_match(world):
    client = world.new_client(0)
    oid = client.new_id("c")
    ok, status = world.run_process(client.conditional_write(oid, None, b"first"))
    assert ok and status == "COMMITTED"
    ok, status = world.run_process(client.conditional_write(oid, b"first", b"second"))
    assert ok


def test_conditional_write_fails_on_mismatch(world):
    client = world.new_client(0)
    oid = client.new_id("c")
    world.run_process(client.conditional_write(oid, None, b"taken"))
    ok, status = world.run_process(client.conditional_write(oid, None, b"usurper"))
    assert not ok and status == "ABORTED"

    def reader():
        tx = client.start_tx()
        value = yield from client.read(tx, oid)
        yield from client.commit(tx)
        return value

    assert world.run_process(reader()) == b"taken"


def test_rmw_gives_up_after_retries():
    # Saturate the object with a competing writer that always wins.
    world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    world.create_container("c", preferred_site=0)
    victim = world.new_client(0)
    bully = world.new_client(0)
    oid = victim.new_id("c")

    def bully_loop():
        while True:
            tx = bully.start_tx()
            yield from bully.write(tx, oid, b"bully")
            yield from bully.commit(tx)

    def slow_increment():
        # A read-modify-write whose "modify" step takes long enough that
        # the bully always commits in between.
        for _ in range(3):
            tx = victim.start_tx()
            yield from victim.read(tx, oid)
            yield victim.kernel.timeout(0.01)  # "thinking"
            yield from victim.write(tx, oid, b"victim")
            status = yield from victim.commit(tx)
            if status == "COMMITTED":
                return "COMMITTED"
        return "GAVE-UP"

    world.kernel.spawn(bully_loop())
    proc = world.kernel.spawn(slow_increment())
    world.run(until=5.0)
    assert proc.value == "GAVE-UP"
