"""Tests for the Berkeley-DB-like baseline."""

import pytest

from repro.baselines import BDBServer, build_bdb_pair
from repro.net import Host, Network, RpcRemoteError, Topology
from repro.sim import Kernel


def make_world():
    kernel = Kernel()
    net = Network(kernel, Topology.ec2(2), jitter_frac=0.0)
    primary, replica = build_bdb_pair(kernel, net, flush_latency=0.0)
    client = Host(kernel, net, 0, "bdb-client")
    client.start()
    return kernel, client, primary, replica


def test_put_get_roundtrip():
    kernel, client, primary, replica = make_world()

    def scenario():
        yield from client.call("bdb-primary", "put", key="k", value=b"v")
        value = yield from client.call("bdb-primary", "get", key="k")
        return value

    assert kernel.run_process(scenario(), until=10.0) == b"v"


def test_get_missing_is_none():
    kernel, client, *_ = make_world()

    def scenario():
        return (yield from client.call("bdb-primary", "get", key="nope"))

    assert kernel.run_process(scenario(), until=10.0) is None


def test_replica_rejects_writes():
    kernel, client, *_ = make_world()

    def scenario():
        with pytest.raises(RpcRemoteError):
            yield from client.call("bdb-replica", "put", key="k", value=b"v")
        return True

    assert kernel.run_process(scenario(), until=10.0) is True


def test_async_replication_reaches_replica():
    kernel, client, primary, replica = make_world()

    def scenario():
        yield from client.call("bdb-primary", "put", key="k", value=b"v")
        # Not yet at the replica (asynchronous).
        early = yield from client.call("bdb-replica", "get", key="k")
        yield kernel.timeout(0.5)  # ship interval + WAN latency
        late = yield from client.call("bdb-replica", "get", key="k")
        return (early, late)

    early, late = kernel.run_process(scenario(), until=10.0)
    assert early is None
    assert late == b"v"


def test_si_transaction_snapshot_and_conflict():
    kernel, client, primary, replica = make_world()

    def scenario():
        yield from client.call("bdb-primary", "tx_begin", tid="t1")
        yield from client.call("bdb-primary", "tx_begin", tid="t2")
        v1 = yield from client.call("bdb-primary", "tx_get", tid="t1", key="a")
        assert v1 is None
        yield from client.call("bdb-primary", "tx_put", tid="t1", key="a", value=1)
        yield from client.call("bdb-primary", "tx_put", tid="t2", key="a", value=2)
        s1 = yield from client.call("bdb-primary", "tx_commit", tid="t1")
        s2 = yield from client.call("bdb-primary", "tx_commit", tid="t2")
        final = yield from client.call("bdb-primary", "get", key="a")
        return (s1, s2, final)

    assert kernel.run_process(scenario(), until=10.0) == ("COMMITTED", "ABORTED", 1)


def test_si_snapshot_read_is_stable():
    kernel, client, primary, replica = make_world()

    def scenario():
        yield from client.call("bdb-primary", "put", key="a", value=0)
        yield from client.call("bdb-primary", "tx_begin", tid="reader")
        first = yield from client.call("bdb-primary", "tx_get", tid="reader", key="a")
        yield from client.call("bdb-primary", "put", key="a", value=99)
        second = yield from client.call("bdb-primary", "tx_get", tid="reader", key="a")
        yield from client.call("bdb-primary", "tx_commit", tid="reader")
        return (first, second)

    assert kernel.run_process(scenario(), until=10.0) == (0, 0)


def test_read_only_tx_commits_without_conflict_check():
    kernel, client, primary, replica = make_world()

    def scenario():
        yield from client.call("bdb-primary", "tx_begin", tid="ro")
        yield from client.call("bdb-primary", "tx_get", tid="ro", key="a")
        return (yield from client.call("bdb-primary", "tx_commit", tid="ro"))

    assert kernel.run_process(scenario(), until=10.0) == "COMMITTED"


def test_tx_abort_discards_writes():
    kernel, client, primary, replica = make_world()

    def scenario():
        yield from client.call("bdb-primary", "tx_begin", tid="t")
        yield from client.call("bdb-primary", "tx_put", tid="t", key="a", value=1)
        yield from client.call("bdb-primary", "tx_abort", tid="t")
        return (yield from client.call("bdb-primary", "get", key="a"))

    assert kernel.run_process(scenario(), until=10.0) is None


def test_disjoint_tx_both_commit():
    kernel, client, primary, replica = make_world()

    def scenario():
        yield from client.call("bdb-primary", "tx_begin", tid="t1")
        yield from client.call("bdb-primary", "tx_begin", tid="t2")
        yield from client.call("bdb-primary", "tx_put", tid="t1", key="a", value=1)
        yield from client.call("bdb-primary", "tx_put", tid="t2", key="b", value=2)
        s1 = yield from client.call("bdb-primary", "tx_commit", tid="t1")
        s2 = yield from client.call("bdb-primary", "tx_commit", tid="t2")
        return (s1, s2)

    assert kernel.run_process(scenario(), until=10.0) == ("COMMITTED", "COMMITTED")
