"""Tests for the Redis-like baseline."""

import pytest

from repro.baselines import RedisServer
from repro.net import Host, Network, RpcRemoteError, Topology
from repro.sim import Kernel


def make_world(with_slave=False):
    kernel = Kernel()
    net = Network(kernel, Topology.ec2(2), jitter_frac=0.0)
    master = RedisServer(
        kernel, net, 0, "redis-master",
        slaves=["redis-slave"] if with_slave else None,
    )
    slave = None
    if with_slave:
        slave = RedisServer(kernel, net, 1, "redis-slave", role="slave")
        slave.start()
    master.start()
    client = Host(kernel, net, 0, "redis-client")
    client.start()
    return kernel, client, master, slave


def call(kernel, client, method, **args):
    def scenario():
        return (yield from client.call("redis-master", method, **args))

    return kernel.run_process(scenario(), until=kernel.now + 10.0)


def test_set_get():
    kernel, client, *_ = make_world()
    assert call(kernel, client, "set", key="k", value="v") == "OK"
    assert call(kernel, client, "get", key="k") == "v"
    assert call(kernel, client, "get", key="missing") is None


def test_incr_is_atomic_counter():
    kernel, client, *_ = make_world()
    assert call(kernel, client, "incr", key="seq") == 1
    assert call(kernel, client, "incr", key="seq") == 2


def test_lpush_lrange_order():
    kernel, client, *_ = make_world()
    for v in ["a", "b", "c"]:
        call(kernel, client, "lpush", key="tl", value=v)
    # Most recent first, stop index inclusive (Redis semantics).
    assert call(kernel, client, "lrange", key="tl", start=0, stop=1) == ["c", "b"]
    assert call(kernel, client, "lrange", key="tl", start=0, stop=9) == ["c", "b", "a"]


def test_sadd_srem_smembers():
    kernel, client, *_ = make_world()
    assert call(kernel, client, "sadd", key="s", member="x") == 1
    assert call(kernel, client, "sadd", key="s", member="x") == 0
    assert call(kernel, client, "smembers", key="s") == {"x"}
    assert call(kernel, client, "srem", key="s", member="x") == 1
    assert call(kernel, client, "smembers", key="s") == set()


def test_mget():
    kernel, client, *_ = make_world()
    call(kernel, client, "set", key="a", value=1)
    call(kernel, client, "set", key="b", value=2)
    assert call(kernel, client, "mget", keys=["a", "missing", "b"]) == [1, None, 2]


def test_slave_is_read_only_and_replicates():
    kernel, client, master, slave = make_world(with_slave=True)

    def scenario():
        yield from client.call("redis-master", "set", key="k", value="v")
        with pytest.raises(RpcRemoteError):
            yield from client.call("redis-slave", "set", key="x", value="y")
        yield kernel.timeout(0.5)
        return (yield from client.call("redis-slave", "get", key="k"))

    assert kernel.run_process(scenario(), until=10.0) == "v"


def test_single_threaded_commands_serialize():
    kernel, client, master, _ = make_world()
    finish_times = []

    def one(i):
        yield from client.call("redis-master", "set", key="k%d" % i, value=i)
        finish_times.append(kernel.now)

    for i in range(3):
        kernel.spawn(one(i))
    kernel.run(until=10.0)
    # Three commands with capacity-1 CPU: completions strictly spaced.
    assert len(finish_times) == 3
    assert finish_times[0] < finish_times[1] < finish_times[2]
