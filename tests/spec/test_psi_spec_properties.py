"""Property-based tests of the PSI spec engine under random workloads."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ObjectId, ObjectKind
from repro.spec import COMMITTED, ParallelSnapshotIsolation

OIDS = [ObjectId("p", "o%d" % i, ObjectKind.REGULAR) for i in range(3)]
SETS = [ObjectId("p", "s%d" % i, ObjectKind.CSET) for i in range(2)]


def run_random_spec(seed, n_sites=3, steps=40):
    rng = random.Random(seed)
    spec = ParallelSnapshotIsolation(n_sites=n_sites)
    active = []
    for step in range(steps):
        roll = rng.random()
        if roll < 0.3 or not active:
            active.append(spec.start_tx(rng.randrange(n_sites)))
        elif roll < 0.5:
            tx = rng.choice(active)
            spec.write(tx, rng.choice(OIDS), "v%d" % step)
        elif roll < 0.65:
            tx = rng.choice(active)
            if rng.random() < 0.5:
                spec.set_add(tx, rng.choice(SETS), rng.randrange(3))
            else:
                spec.set_del(tx, rng.choice(SETS), rng.randrange(3))
        elif roll < 0.8:
            tx = rng.choice(active)
            spec.read(tx, rng.choice(OIDS))
        else:
            tx = active.pop(rng.randrange(len(active)))
            spec.commit_tx(tx)
            if rng.random() < 0.5:
                spec.propagate_all()
    spec.propagate_all()
    return spec


@given(st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_committed_conflicting_txs_are_ordered(seed):
    spec = run_random_spec(seed)
    committed = [t for t in spec.transactions if t.status == COMMITTED]
    for i, t1 in enumerate(committed):
        for t2 in committed[i + 1:]:
            if not (t1.write_set & t2.write_set):
                continue
            # PSI Property 2: conflicting committed txs are ordered --
            # one committed at the other's site before the other started.
            t1_first = (
                t1.commit_ts[t2.site] is not None
                and t1.commit_ts[t2.site] < t2.start_ts
            )
            t2_first = (
                t2.commit_ts[t1.site] is not None
                and t2.commit_ts[t1.site] < t1.start_ts
            )
            assert t1_first or t2_first


@given(st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_logs_contain_each_committed_tx_once_per_site(seed):
    spec = run_random_spec(seed)
    for site, log in enumerate(spec.logs):
        tids = [entry.tid for entry in log]
        assert len(tids) == len(set(tids))
    committed = [t for t in spec.transactions if t.status == COMMITTED]
    for tx in committed:
        assert tx.committed_everywhere()
        for site in range(spec.n_sites):
            assert any(e.tid == tx.tid for e in spec.logs[site])


@given(st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_sites_converge_after_full_propagation(seed):
    spec = run_random_spec(seed)
    for oid in OIDS:
        values = [spec.site_value(site, oid) for site in range(spec.n_sites)]
        assert all(v == values[0] for v in values), (oid, values)
    for soid in SETS:
        states = [spec.site_cset(site, soid).counts() for site in range(spec.n_sites)]
        assert all(s == states[0] for s in states), (soid, states)


@given(st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_causality_guard_never_violated(seed):
    # Re-run the workload but verify that at every site, a transaction
    # never appears in the log before a transaction in its snapshot.
    spec = run_random_spec(seed)
    by_tid = {t.tid: t for t in spec.transactions}
    for site, log in enumerate(spec.logs):
        position = {entry.tid: i for i, entry in enumerate(log)}
        for entry in log:
            tx = by_tid[entry.tid]
            for other in spec.transactions:
                if other.status != COMMITTED or other.tid == tx.tid:
                    continue
                committed_at_home = other.commit_ts[tx.site]
                # "other" is in tx's snapshot:
                if committed_at_home is not None and committed_at_home < tx.start_ts:
                    assert position[other.tid] < position[tx.tid], (
                        site, other.tid, tx.tid,
                    )
