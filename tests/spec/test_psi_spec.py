"""Tests for the PSI specification (Figs 4-7)."""

import pytest

from repro.core import ObjectId, ObjectKind
from repro.errors import TransactionStateError
from repro.spec import ABORTED, COMMITTED, ParallelSnapshotIsolation

A = ObjectId("t", "A", ObjectKind.REGULAR)
B = ObjectId("t", "B", ObjectKind.REGULAR)
S = ObjectId("t", "S", ObjectKind.CSET)


def test_local_commit_visible_locally_before_propagation():
    spec = ParallelSnapshotIsolation(n_sites=2)
    t1 = spec.start_tx(0)
    spec.write(t1, A, 1)
    assert spec.commit_tx(t1) == COMMITTED
    local = spec.start_tx(0)
    remote = spec.start_tx(1)
    assert spec.read(local, A) == 1
    assert spec.read(remote, A) is None


def test_propagation_makes_writes_visible_remotely():
    spec = ParallelSnapshotIsolation(n_sites=2)
    t1 = spec.start_tx(0)
    spec.write(t1, A, 1)
    spec.commit_tx(t1)
    spec.propagate(t1, 1)
    remote = spec.start_tx(1)
    assert spec.read(remote, A) == 1
    assert t1.committed_everywhere()


def test_fig6_different_commit_orders_at_different_sites():
    # Site A orders T1, T2; site B orders T2, T1 -- allowed by PSI.
    spec = ParallelSnapshotIsolation(n_sites=2)
    t1 = spec.start_tx(0)
    spec.write(t1, A, "t1")
    t2 = spec.start_tx(1)
    spec.write(t2, B, "t2")
    assert spec.commit_tx(t1) == COMMITTED
    assert spec.commit_tx(t2) == COMMITTED
    spec.propagate(t1, 1)
    spec.propagate(t2, 0)
    # At site 0: t1 committed (locally) before t2 arrived; at site 1 the
    # opposite.  Verify via log order.
    site0_order = [e.tid for e in spec.logs[0]]
    site1_order = [e.tid for e in spec.logs[1]]
    assert site0_order == [t1.tid, t2.tid]
    assert site1_order == [t2.tid, t1.tid]


def test_cannot_propagate_twice_or_uncommitted():
    spec = ParallelSnapshotIsolation(n_sites=2)
    t1 = spec.start_tx(0)
    spec.write(t1, A, 1)
    with pytest.raises(TransactionStateError):
        spec.propagate(t1, 1)
    spec.commit_tx(t1)
    spec.propagate(t1, 1)
    with pytest.raises(TransactionStateError):
        spec.propagate(t1, 1)


def test_causality_guard_blocks_out_of_order_propagation():
    # t2 reads t1's write (t1 in t2's snapshot); t2 cannot reach site 1
    # before t1 does.
    spec = ParallelSnapshotIsolation(n_sites=2)
    t1 = spec.start_tx(0)
    spec.write(t1, A, 1)
    spec.commit_tx(t1)
    t2 = spec.start_tx(0)
    assert spec.read(t2, A) == 1
    spec.write(t2, B, 2)
    spec.commit_tx(t2)
    assert not spec.can_propagate(t2, 1)
    spec.propagate(t1, 1)
    assert spec.can_propagate(t2, 1)
    spec.propagate(t2, 1)


def test_propagate_all_reaches_fixpoint():
    spec = ParallelSnapshotIsolation(n_sites=3)
    txs = []
    for i in range(4):
        tx = spec.start_tx(i % 3)
        spec.write(tx, ObjectId("t", "o%d" % i, ObjectKind.REGULAR), i)
        spec.commit_tx(tx)
        txs.append(tx)
    fired = spec.propagate_all()
    assert fired == 4 * 2  # each tx reaches the two other sites
    assert all(tx.committed_everywhere() for tx in txs)


def test_psi_property_2_concurrent_cross_site_writes_conflict():
    spec = ParallelSnapshotIsolation(n_sites=2)
    t1 = spec.start_tx(0)
    t2 = spec.start_tx(1)
    spec.write(t1, A, 1)
    spec.write(t2, A, 2)
    assert spec.commit_tx(t1) == COMMITTED
    # t1 is committed but not yet at site 1: "currently propagating".
    assert spec.commit_tx(t2) == ABORTED


def test_write_after_full_propagation_succeeds():
    spec = ParallelSnapshotIsolation(n_sites=2)
    t1 = spec.start_tx(0)
    spec.write(t1, A, 1)
    spec.commit_tx(t1)
    spec.propagate_all()
    t2 = spec.start_tx(1)
    assert spec.read(t2, A) == 1
    spec.write(t2, A, 2)
    assert spec.commit_tx(t2) == COMMITTED


def test_same_site_conflict_aborts_second():
    spec = ParallelSnapshotIsolation(n_sites=2)
    t1 = spec.start_tx(0)
    t2 = spec.start_tx(0)
    spec.write(t1, A, 1)
    spec.write(t2, A, 2)
    assert spec.commit_tx(t1) == COMMITTED
    assert spec.commit_tx(t2) == ABORTED


def test_outcome_decided_once_no_abort_at_remote_sites():
    # "if it commits at its site, the transaction is not aborted at the
    # other sites" -- propagation always succeeds for a committed tx.
    spec = ParallelSnapshotIsolation(n_sites=3)
    t1 = spec.start_tx(0)
    spec.write(t1, A, 1)
    spec.commit_tx(t1)
    spec.propagate_all()
    assert t1.committed_everywhere()


def test_cset_ops_never_conflict_across_sites():
    spec = ParallelSnapshotIsolation(n_sites=2)
    t1 = spec.start_tx(0)
    t2 = spec.start_tx(1)
    spec.set_add(t1, S, "x")
    spec.set_del(t2, S, "x")
    assert spec.commit_tx(t1) == COMMITTED
    assert spec.commit_tx(t2) == COMMITTED
    spec.propagate_all()
    # Both sites converge to count 0 (empty).
    assert spec.site_cset(0, S).counts() == {}
    assert spec.site_cset(1, S).counts() == {}


def test_cset_read_and_read_id():
    spec = ParallelSnapshotIsolation(n_sites=1)
    t1 = spec.start_tx(0)
    spec.set_add(t1, S, "x")
    spec.set_add(t1, S, "x")
    assert spec.set_read_id(t1, S, "x") == 2
    assert spec.set_read_id(t1, S, "missing") == 0
    spec.commit_tx(t1)
    t2 = spec.start_tx(0)
    assert spec.set_read(t2, S).counts() == {"x": 2}


def test_anti_element_round_trip_across_sites():
    # Site 1 removes an element it has not seen; site 0 adds it; after
    # propagation both sites agree the element is absent.
    spec = ParallelSnapshotIsolation(n_sites=2)
    t1 = spec.start_tx(0)
    spec.set_add(t1, S, "e")
    t2 = spec.start_tx(1)
    spec.set_del(t2, S, "e")
    spec.commit_tx(t1)
    spec.commit_tx(t2)
    spec.propagate_all()
    assert spec.site_cset(0, S).count("e") == 0
    assert spec.site_cset(1, S).count("e") == 0


def test_site_out_of_range():
    spec = ParallelSnapshotIsolation(n_sites=2)
    with pytest.raises(ValueError):
        spec.start_tx(2)
    with pytest.raises(ValueError):
        ParallelSnapshotIsolation(n_sites=0)
