"""Direct unit tests for the eventual-consistency and serializability
reference models (used by the Fig 8 scenarios)."""

import pytest

from repro.core import ObjectId, ObjectKind
from repro.spec import EventualStore, ObservedTx, is_serializable, replay_serial

A = ObjectId("t", "A", ObjectKind.REGULAR)
B = ObjectId("t", "B", ObjectKind.REGULAR)


class TestEventualStore:
    def test_local_write_visible_immediately(self):
        store = EventualStore(2)
        store.write(0, A, 1)
        assert store.read(0, A) == 1
        assert store.read(1, A) is None

    def test_sync_propagates(self):
        store = EventualStore(2)
        store.write(0, A, 1)
        store.sync(0, 1)
        assert store.read(1, A) == 1

    def test_lww_resolves_conflicts_deterministically(self):
        store = EventualStore(2)
        store.write(0, A, "first")
        store.write(1, A, "second")  # later Lamport stamp
        store.sync_all()
        assert store.converged(A)
        assert store.read(0, A) == "second"
        assert store.conflicts_resolved > 0

    def test_custom_merge_function(self):
        store = EventualStore(2, merge=lambda x, y: x + y)
        store.write(0, A, 1)
        store.write(1, A, 2)
        store.sync_all()
        assert store.read(0, A) == 3
        assert store.read(1, A) == 3

    def test_newer_local_write_beats_stale_sync(self):
        store = EventualStore(2)
        store.write(0, A, "old")
        store.sync(0, 1)
        store.write(1, A, "new")
        store.sync(0, 1)  # re-sending the stale value
        assert store.read(1, A) == "new"

    def test_three_replicas_converge(self):
        store = EventualStore(3)
        store.write(0, A, 1)
        store.write(1, B, 2)
        store.write(2, A, 3)
        store.sync_all()
        assert store.converged(A) and store.converged(B)

    def test_invalid_replica_count(self):
        with pytest.raises(ValueError):
            EventualStore(0)


class TestSerializable:
    def test_replay_accepts_matching_order(self):
        t1 = ObservedTx("t1").write(A, 1)
        t2 = ObservedTx("t2").read(A, 1)
        assert replay_serial([t1, t2], {A: 0})
        assert not replay_serial([t2, t1], {A: 0})

    def test_is_serializable_tries_all_orders(self):
        t1 = ObservedTx("t1").write(A, 1)
        t2 = ObservedTx("t2").read(A, 1)
        assert is_serializable([t2, t1], {A: 0})  # order t1;t2 works

    def test_write_skew_not_serializable(self):
        t1 = ObservedTx("t1").read(A, 0).read(B, 0).write(A, 1)
        t2 = ObservedTx("t2").read(A, 0).read(B, 0).write(B, 1)
        assert not is_serializable([t1, t2], {A: 0, B: 0})

    def test_reads_of_initial_state(self):
        t1 = ObservedTx("t1").read(A, 0)
        assert is_serializable([t1], {A: 0})
        t2 = ObservedTx("t2").read(A, 99)
        assert not is_serializable([t2], {A: 0})

    def test_chained_reads_through_writes(self):
        t1 = ObservedTx("t1").write(A, 1)
        t2 = ObservedTx("t2").read(A, 1).write(B, 2)
        t3 = ObservedTx("t3").read(B, 2)
        assert is_serializable([t3, t2, t1], {A: 0, B: 0})
