"""Tests for the PSI trace checker: it must accept legal executions and
flag each property violation."""

from repro.core import (
    CSetAdd,
    DataUpdate,
    ObjectId,
    ObjectKind,
    VectorTimestamp,
    Version,
    write_set,
)
from repro.spec import (
    ExecutionTrace,
    TracedRead,
    TracedTx,
    check_commit_causality,
    check_no_write_write_conflicts,
    check_site_snapshot_reads,
    check_trace,
)

A = ObjectId("t", "A", ObjectKind.REGULAR)
B = ObjectId("t", "B", ObjectKind.REGULAR)
S = ObjectId("t", "S", ObjectKind.CSET)


def traced(tid, site, start, version, updates):
    return TracedTx(
        tid=tid,
        site=site,
        start_vts=VectorTimestamp(start),
        version=version,
        updates=updates,
        write_set=write_set(updates),
    )


def test_clean_two_site_trace_passes():
    trace = ExecutionTrace(n_sites=2)
    t1 = traced("t1", 0, [0, 0], Version(0, 1), [DataUpdate(A, 1)])
    t2 = traced("t2", 1, [0, 0], Version(1, 1), [DataUpdate(B, 2)])
    trace.record_commit(t1)
    trace.record_commit(t2)
    # Long-fork commit orders: each site sees its own first -- legal PSI.
    trace.record_site_commit(0, Version(0, 1))
    trace.record_site_commit(0, Version(1, 1))
    trace.record_site_commit(1, Version(1, 1))
    trace.record_site_commit(1, Version(0, 1))
    trace.record_read(TracedRead("r1", 0, VectorTimestamp([1, 0]), A, 1))
    trace.record_read(TracedRead("r1", 0, VectorTimestamp([1, 0]), B, None))
    assert check_trace(trace) == []


def test_concurrent_conflicting_writes_flagged():
    trace = ExecutionTrace(n_sites=2)
    # Both wrote A; neither is in the other's snapshot.
    trace.record_commit(traced("t1", 0, [0, 0], Version(0, 1), [DataUpdate(A, 1)]))
    trace.record_commit(traced("t2", 1, [0, 0], Version(1, 1), [DataUpdate(A, 2)]))
    violations = check_no_write_write_conflicts(trace)
    assert len(violations) == 1
    assert "somewhere-concurrent" in violations[0].detail


def test_causally_ordered_conflicting_writes_pass():
    trace = ExecutionTrace(n_sites=2)
    trace.record_commit(traced("t1", 0, [0, 0], Version(0, 1), [DataUpdate(A, 1)]))
    # t2's snapshot [1,0] includes t1 -> causally ordered, no conflict.
    trace.record_commit(traced("t2", 1, [1, 0], Version(1, 1), [DataUpdate(A, 2)]))
    assert check_no_write_write_conflicts(trace) == []


def test_cset_updates_never_conflict():
    trace = ExecutionTrace(n_sites=2)
    trace.record_commit(traced("t1", 0, [0, 0], Version(0, 1), [CSetAdd(S, "x")]))
    trace.record_commit(traced("t2", 1, [0, 0], Version(1, 1), [CSetAdd(S, "x")]))
    assert check_no_write_write_conflicts(trace) == []


def test_commit_causality_violation_flagged():
    trace = ExecutionTrace(n_sites=2)
    t1 = traced("t1", 0, [0, 0], Version(0, 1), [DataUpdate(A, 1)])
    t2 = traced("t2", 0, [1, 0], Version(0, 2), [DataUpdate(B, 2)])  # saw t1
    trace.record_commit(t1)
    trace.record_commit(t2)
    trace.record_site_commit(0, Version(0, 1))
    trace.record_site_commit(0, Version(0, 2))
    # Site 1 commits t2 before t1: violates Property 3.
    trace.record_site_commit(1, Version(0, 2))
    trace.record_site_commit(1, Version(0, 1))
    violations = check_commit_causality(trace)
    assert len(violations) == 1
    assert "committed after" in violations[0].detail


def test_commit_causality_ok_when_order_preserved():
    trace = ExecutionTrace(n_sites=2)
    t1 = traced("t1", 0, [0, 0], Version(0, 1), [DataUpdate(A, 1)])
    t2 = traced("t2", 0, [1, 0], Version(0, 2), [DataUpdate(B, 2)])
    trace.record_commit(t1)
    trace.record_commit(t2)
    for site in (0, 1):
        trace.record_site_commit(site, Version(0, 1))
        trace.record_site_commit(site, Version(0, 2))
    assert check_commit_causality(trace) == []


def test_stale_read_flagged():
    trace = ExecutionTrace(n_sites=1)
    trace.record_commit(traced("t1", 0, [0], Version(0, 1), [DataUpdate(A, 1)]))
    trace.record_site_commit(0, Version(0, 1))
    # Snapshot [1] must see A=1, but the read observed None.
    trace.record_read(TracedRead("r", 0, VectorTimestamp([1]), A, None))
    violations = check_site_snapshot_reads(trace)
    assert len(violations) == 1
    assert "snapshot" in violations[0].detail


def test_future_read_flagged():
    trace = ExecutionTrace(n_sites=1)
    trace.record_commit(traced("t1", 0, [0], Version(0, 1), [DataUpdate(A, 1)]))
    trace.record_site_commit(0, Version(0, 1))
    # Snapshot [0] must NOT see A=1.
    trace.record_read(TracedRead("r", 0, VectorTimestamp([0]), A, 1))
    assert len(check_site_snapshot_reads(trace)) == 1


def test_cset_read_checked_against_replay():
    trace = ExecutionTrace(n_sites=1)
    trace.record_commit(traced("t1", 0, [0], Version(0, 1), [CSetAdd(S, "x")]))
    trace.record_site_commit(0, Version(0, 1))
    trace.record_read(TracedRead("r", 0, VectorTimestamp([1]), S, {"x": 1}))
    assert check_site_snapshot_reads(trace) == []
    trace.record_read(TracedRead("r2", 0, VectorTimestamp([1]), S, {"x": 2}))
    assert len(check_site_snapshot_reads(trace)) == 1


def test_unknown_version_in_site_order_flagged():
    trace = ExecutionTrace(n_sites=1)
    trace.record_site_commit(0, Version(0, 7))
    violations = check_site_snapshot_reads(trace)
    assert len(violations) == 1
    assert "unknown version" in violations[0].detail


def test_read_at_silent_site_expects_nil():
    trace = ExecutionTrace(n_sites=2)
    trace.record_read(TracedRead("r", 1, VectorTimestamp([0, 0]), A, None))
    assert check_site_snapshot_reads(trace) == []
