"""Tests for the snapshot isolation specification (Figs 1-3)."""

import pytest

from repro.core import ObjectId, ObjectKind
from repro.errors import TransactionStateError
from repro.spec import ABORTED, COMMITTED, SnapshotIsolation

A = ObjectId("t", "A", ObjectKind.REGULAR)
B = ObjectId("t", "B", ObjectKind.REGULAR)
S = ObjectId("t", "S", ObjectKind.CSET)


def test_read_own_write():
    spec = SnapshotIsolation()
    tx = spec.start_tx()
    spec.write(tx, A, 1)
    assert spec.read(tx, A) == 1


def test_read_unwritten_is_nil():
    spec = SnapshotIsolation()
    tx = spec.start_tx()
    assert spec.read(tx, A) is None


def test_commit_makes_writes_visible_to_later_tx():
    spec = SnapshotIsolation()
    t1 = spec.start_tx()
    spec.write(t1, A, 1)
    assert spec.commit_tx(t1) == COMMITTED
    t2 = spec.start_tx()
    assert spec.read(t2, A) == 1


def test_snapshot_read_fig3():
    # Fig 3: T2 starts before T1 commits, so T2 never sees T1's writes;
    # T3 starts after and does.
    spec = SnapshotIsolation()
    t1 = spec.start_tx()
    spec.write(t1, A, 1)
    t2 = spec.start_tx()
    spec.commit_tx(t1)
    t3 = spec.start_tx()
    assert spec.read(t2, A) is None
    assert spec.read(t3, A) == 1


def test_si_property_1_snapshot_is_stable():
    spec = SnapshotIsolation()
    t2 = spec.start_tx()
    before = spec.read(t2, A)
    t1 = spec.start_tx()
    spec.write(t1, A, 99)
    spec.commit_tx(t1)
    assert spec.read(t2, A) == before


def test_si_property_2_first_committer_wins():
    spec = SnapshotIsolation()
    t1 = spec.start_tx()
    t2 = spec.start_tx()
    spec.write(t1, A, 1)
    spec.write(t2, A, 2)
    assert spec.commit_tx(t1) == COMMITTED
    assert spec.commit_tx(t2) == ABORTED
    t3 = spec.start_tx()
    assert spec.read(t3, A) == 1


def test_conflict_only_on_overlapping_write_sets():
    spec = SnapshotIsolation()
    t1 = spec.start_tx()
    t2 = spec.start_tx()
    spec.write(t1, A, 1)
    spec.write(t2, B, 2)
    assert spec.commit_tx(t1) == COMMITTED
    assert spec.commit_tx(t2) == COMMITTED


def test_conflict_with_aborted_tx_nondeterministic_choice():
    # Fig 2 middle branch: write-conflicting tx aborted after x started.
    def run(pessimistic):
        spec = SnapshotIsolation(pessimistic=pessimistic)
        t1 = spec.start_tx()
        t2 = spec.start_tx()
        spec.write(t1, A, 1)
        spec.write(t2, A, 2)
        spec.abort_tx(t1)
        return spec.commit_tx(t2)

    assert run(pessimistic=False) == COMMITTED
    assert run(pessimistic=True) == ABORTED


def test_conflict_with_executing_tx_nondeterministic_choice():
    def run(pessimistic):
        spec = SnapshotIsolation(pessimistic=pessimistic)
        t1 = spec.start_tx()
        t2 = spec.start_tx()
        spec.write(t1, A, 1)
        spec.write(t2, A, 2)
        return spec.commit_tx(t2)  # t1 still executing

    assert run(pessimistic=False) == COMMITTED
    assert run(pessimistic=True) == ABORTED


def test_aborted_tx_writes_never_visible():
    spec = SnapshotIsolation()
    t1 = spec.start_tx()
    spec.write(t1, A, 1)
    spec.abort_tx(t1)
    t2 = spec.start_tx()
    assert spec.read(t2, A) is None


def test_operations_on_finished_tx_rejected():
    spec = SnapshotIsolation()
    tx = spec.start_tx()
    spec.commit_tx(tx)
    with pytest.raises(TransactionStateError):
        spec.read(tx, A)
    with pytest.raises(TransactionStateError):
        spec.write(tx, A, 1)
    with pytest.raises(TransactionStateError):
        spec.commit_tx(tx)


def test_cset_operations_in_snapshot():
    spec = SnapshotIsolation()
    t1 = spec.start_tx()
    spec.set_add(t1, S, "x")
    spec.set_add(t1, S, "y")
    spec.set_del(t1, S, "y")
    assert spec.set_read(t1, S).counts() == {"x": 1}
    spec.commit_tx(t1)
    t2 = spec.start_tx()
    assert spec.set_read(t2, S).counts() == {"x": 1}


def test_commit_order_defines_total_order():
    spec = SnapshotIsolation()
    values = []
    for i in range(5):
        tx = spec.start_tx()
        spec.write(tx, A, i)
        spec.commit_tx(tx)
        reader = spec.start_tx()
        values.append(spec.read(reader, A))
    assert values == [0, 1, 2, 3, 4]
    assert spec.committed_value(A) == 4
