"""Property-based stateful chaos testing (ISSUE satellite #1).

Runs a batch of random seeded fault schedules through the full harness
-- real Deployment, real recovery protocol -- and asserts the PSI
checker plus convergence/durability/liveness oracles hold on every one.
Also pins the determinism contract the reproduction workflow relies on:
same seed twice => byte-identical schedule, verdict, and artifact.
"""

import json

import pytest

from repro.chaos import ChaosConfig, ReproArtifact, generate_schedule, run_chaos

#: Satellite #1 requires >= 50 random schedules through check_trace.
PROPERTY_SEEDS = list(range(1, 51))


@pytest.mark.parametrize("seed", PROPERTY_SEEDS)
def test_random_schedule_upholds_psi_and_convergence(seed):
    result = run_chaos(ChaosConfig(seed=seed))
    assert result.passed, "seed %d violated: %s\nschedule: %s" % (
        seed,
        result.verdict_json(),
        result.schedule.to_json(),
    )
    # The workload must have actually exercised the system.
    assert sum(result.outcomes.values()) > 0


def test_same_seed_byte_identical_schedule_and_verdict():
    cfg = ChaosConfig(seed=17)
    first = run_chaos(cfg)
    second = run_chaos(cfg)
    assert first.schedule.to_json() == second.schedule.to_json()
    assert first.verdict_json() == second.verdict_json()
    assert first.artifact().to_json() == second.artifact().to_json()


def test_explicit_schedule_overrides_generation():
    cfg = ChaosConfig(seed=3)
    sched = generate_schedule(ChaosConfig(seed=9))
    result = run_chaos(cfg, schedule=sched)
    assert result.schedule.to_json() == sched.to_json()


def test_failing_artifact_round_trips(tmp_path):
    """A failure artifact (from a planted bug) must reproduce the same
    verdict after a JSON save/load cycle -- the repro workflow contract."""
    cfg = ChaosConfig(seed=2, bug="skip_resume_propagation")
    result = run_chaos(cfg)
    assert not result.passed, "planted bug went undetected on seed 2"

    path = tmp_path / "repro.json"
    result.artifact().save(path)
    loaded = ReproArtifact.load(path)
    assert loaded.to_json() == result.artifact().to_json()
    # Artifacts are plain canonical JSON -- inspectable, diffable.
    obj = json.loads(path.read_text())
    assert set(obj) == {"config", "schedule", "verdict"}

    replayed = loaded.replay()
    assert replayed.verdict_obj() == loaded.verdict
    assert not replayed.passed


def test_planted_bug_passes_without_the_bug():
    """Same seed, bug disabled: the protocol is actually correct."""
    assert run_chaos(ChaosConfig(seed=2)).passed
