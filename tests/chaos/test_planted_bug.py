"""Self-test of the chaos harness: plant a protocol bug, prove the
random-schedule suite catches it and the shrinker minimizes it.

The planted bug (``skip_resume_propagation``) makes a replacement server
forget to resume propagation of its recovered-but-unacked transactions,
so other sites silently miss updates -- exactly the class of omission
bug the convergence and durability oracles exist for.  If the harness
ever stops catching it, the harness is broken, not the protocol.
"""

from repro.chaos import ChaosConfig, generate_schedule, run_chaos, shrink_schedule

#: First seed (of 1..30) whose random schedule trips the planted bug;
#: several others do too (6, 7, 11, ...), this one shrinks fastest.
CATCHING_SEED = 2


def test_planted_bug_is_caught_by_random_schedules():
    result = run_chaos(ChaosConfig(seed=CATCHING_SEED, bug="skip_resume_propagation"))
    assert not result.passed
    properties = {v.property_name for v in result.violations}
    # An omitted propagation shows up as divergence/lost updates, not
    # as a PSI ordering violation.
    assert properties & {"convergence", "durability"}


def test_planted_bug_shrinks_to_few_events():
    config = ChaosConfig(seed=CATCHING_SEED, bug="skip_resume_propagation")
    report = shrink_schedule(config, generate_schedule(config))
    assert report.final_events <= 5, report.schedule.to_json()
    assert report.final_events <= report.initial_events
    assert not report.result.passed
    # The minimized schedule must itself replay deterministically.
    again = run_chaos(config, schedule=report.schedule)
    assert again.verdict_json() == report.result.verdict_json()
