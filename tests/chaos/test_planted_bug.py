"""Self-test of the chaos harness: plant a protocol bug, prove the
random-schedule suite catches it and the shrinker minimizes it.

The planted bug (``skip_resume_propagation``) makes a replacement server
forget to resume propagation of its recovered-but-unacked transactions,
so other sites silently miss updates -- exactly the class of omission
bug the convergence and durability oracles exist for.  If the harness
ever stops catching it, the harness is broken, not the protocol.
"""

import os

from repro.chaos import (
    ChaosConfig,
    ReproArtifact,
    generate_schedule,
    run_chaos,
    shrink_schedule,
)

#: First seed (of 1..30) whose random schedule trips the planted bug;
#: several others do too (6, 7, 11, ...), this one shrinks fastest.
CATCHING_SEED = 2


def test_planted_bug_is_caught_by_random_schedules():
    result = run_chaos(ChaosConfig(seed=CATCHING_SEED, bug="skip_resume_propagation"))
    assert not result.passed
    properties = {v.property_name for v in result.violations}
    # An omitted propagation shows up as divergence/lost updates, not
    # as a PSI ordering violation.
    assert properties & {"convergence", "durability"}


def test_planted_bug_shrinks_to_few_events():
    config = ChaosConfig(seed=CATCHING_SEED, bug="skip_resume_propagation")
    report = shrink_schedule(config, generate_schedule(config))
    assert report.final_events <= 5, report.schedule.to_json()
    assert report.final_events <= report.initial_events
    assert not report.result.passed
    # The minimized schedule must itself replay deterministically.
    again = run_chaos(config, schedule=report.schedule)
    assert again.verdict_json() == report.result.verdict_json()


def test_leak_prepare_locks_bug_is_caught_by_quiescence_oracle():
    """Second planted bug (``leak_prepare_locks``): the pre-hardening
    abort path -- release to recorded YES voters only, no orphan-lock
    sweeping -- so a participant whose YES reply was dropped keeps its
    prepare locks forever.  The recorded seed-401 schedule drops prepare
    replies and leaks under the bug; the clean protocol (the checked-in
    artifact) quiesces with zero locks."""
    from dataclasses import replace

    artifact = ReproArtifact.load(
        os.path.join(os.path.dirname(__file__), "seeds", "seed-401.json")
    )
    buggy = run_chaos(
        replace(artifact.config, bug="leak_prepare_locks"),
        schedule=artifact.schedule,
    )
    assert not buggy.passed
    assert "no-leaked-locks" in {v.property_name for v in buggy.violations}
