"""Schedule DSL + generator: representation, validation, determinism."""

import json

import pytest

from repro.chaos import (
    FAULT_CATALOG,
    ChaosConfig,
    FaultEvent,
    Schedule,
    ScheduleError,
    canonical_json,
    generate_schedule,
)


class TestScheduleDSL:
    def test_events_sorted_by_time(self):
        s = Schedule(
            events=[
                FaultEvent(at=2.0, fault="crash", args={"site": 0}),
                FaultEvent(at=1.0, fault="heal_all", args={}),
            ]
        )
        assert [e.at for e in s.events] == [1.0, 2.0]

    def test_json_round_trip_is_byte_identical(self):
        s = Schedule(
            events=[
                FaultEvent(at=0.5, fault="crash", args={"site": 1}),
                FaultEvent(at=1.25, fault="partition", args={"a": 0, "b": 2}),
                FaultEvent(
                    at=3.0, fault="loss_burst", args={"rate": 0.25, "duration": 1.0}
                ),
            ]
        )
        text = s.to_json()
        assert Schedule.from_json(text).to_json() == text
        # Canonical form: sorted keys, no whitespace -- stable across runs.
        assert text == canonical_json(json.loads(text))

    def test_validate_rejects_unknown_fault(self):
        s = Schedule(events=[FaultEvent(at=1.0, fault="meteor", args={})])
        with pytest.raises(ScheduleError):
            s.validate(3)

    def test_validate_rejects_bad_site(self):
        s = Schedule(events=[FaultEvent(at=1.0, fault="crash", args={"site": 7})])
        with pytest.raises(ScheduleError):
            s.validate(3)

    def test_validate_rejects_wrong_args(self):
        s = Schedule(events=[FaultEvent(at=1.0, fault="crash", args={"nope": 1})])
        with pytest.raises(ScheduleError):
            s.validate(3)

    def test_catalog_covers_issue_fault_kinds(self):
        for kind in (
            "crash",
            "replace",
            "partition",
            "heal",
            "loss_burst",
            "flush_stall",
            "handover",
            "fail_site",
            "remove_site",
            "reintegrate",
        ):
            assert kind in FAULT_CATALOG


class TestGenerator:
    def test_same_seed_same_schedule_bytes(self):
        cfg = ChaosConfig(seed=42)
        assert generate_schedule(cfg).to_json() == generate_schedule(cfg).to_json()

    def test_different_seeds_differ(self):
        a = generate_schedule(ChaosConfig(seed=1)).to_json()
        assert any(
            generate_schedule(ChaosConfig(seed=s)).to_json() != a for s in range(2, 6)
        )

    def test_schedules_validate_and_fit_horizon(self):
        for seed in range(1, 21):
            cfg = ChaosConfig(seed=seed)
            sched = generate_schedule(cfg)
            sched.validate(cfg.n_sites)
            assert sched.events, "empty schedule for seed %d" % seed
            for event in sched.events:
                assert 0.0 < event.at < cfg.horizon

    def test_fault_budget_bounds_event_cost(self):
        # Budget counts scenario costs, so events <= budget always holds.
        for seed in range(1, 21):
            cfg = ChaosConfig(seed=seed, fault_budget=4)
            assert len(generate_schedule(cfg).events) <= 2 * cfg.fault_budget
