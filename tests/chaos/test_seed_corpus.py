"""Replay the checked-in regression-seed corpus (ISSUE satellite #2).

Each ``tests/chaos/seeds/seed-*.json`` is a shrunk schedule that once
exposed a real protocol bug (see DESIGN.md, "Chaos testing" -- WAL
replay resurrection, non-causal recovery delivery, coordinator death on
a lost RPC, commits accepted mid-reintegration, unsafe preferred-site
handover, ...).  The stored verdict is the *fixed* protocol's passing
verdict, so this test pins both the fix (run must pass) and determinism
(fresh verdict must be byte-identical to the stored one).

Workflow when chaos finds a new bug: shrink it, fix the protocol,
re-run the artifact, and check the now-passing artifact in here.  See
EXPERIMENTS.md.
"""

import glob
import os

import pytest

from repro.chaos import ReproArtifact

SEED_DIR = os.path.join(os.path.dirname(__file__), "seeds")
SEED_FILES = sorted(glob.glob(os.path.join(SEED_DIR, "seed-*.json")))


def test_corpus_is_present():
    assert len(SEED_FILES) >= 6


@pytest.mark.parametrize(
    "path", SEED_FILES, ids=[os.path.basename(p) for p in SEED_FILES]
)
def test_regression_seed_replays_clean(path):
    artifact = ReproArtifact.load(path)
    result = artifact.replay()
    assert result.passed, "regression on %s: %s" % (
        os.path.basename(path),
        result.verdict_json(),
    )
    assert result.verdict_obj() == artifact.verdict, (
        "verdict drifted on %s (nondeterminism or behavior change)"
        % os.path.basename(path)
    )
