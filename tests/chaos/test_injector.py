"""Unit tests for the fault injector's bookkeeping: errors are recorded
(not raised), loss bursts compose and restore, handover runs as a
spawned operation."""

from repro.chaos import FaultEvent, FaultInjector, Schedule
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


def make_world(n_sites=3):
    world = Deployment(
        n_sites=n_sites, flush_latency=FLUSH_MEMORY, seed=7, jitter_frac=0.0
    )
    for site in range(n_sites):
        world.create_container("c%d" % site, preferred_site=site)
    return world


def run_injector(world, events, until=5.0):
    injector = FaultInjector(world, Schedule(events))
    injector.start()
    world.run(until=until)
    world.run_process(injector.quiesce())
    return injector


def test_bad_precondition_is_recorded_not_raised():
    world = make_world()
    injector = run_injector(
        world,
        [
            FaultEvent(0.5, "fail_site", {"site": 2}),
            FaultEvent(0.7, "remove_site", {"site": 2, "reassign_to": 0}),
            # Replacing a removed site's server is a precondition error.
            FaultEvent(2.5, "replace", {"site": 2}),
        ],
    )
    assert [fault for fault, _msg in injector.errors] == ["replace"]
    assert "reintegrate" not in injector.applied
    assert not world.config.is_active(2)


def test_loss_bursts_stack_and_restore_base_rate():
    world = make_world()
    base = world.network.loss_rate
    injector = FaultInjector(
        world,
        Schedule(
            [
                FaultEvent(0.2, "loss_burst", {"rate": 0.2, "duration": 1.0}),
                FaultEvent(0.5, "loss_burst", {"rate": 0.5, "duration": 0.3}),
            ]
        ),
    )
    injector.start()
    world.run(until=0.3)
    assert world.network.loss_rate == 0.2
    world.run(until=0.6)
    assert world.network.loss_rate == 0.5  # max of overlapping bursts
    world.run(until=1.0)
    assert world.network.loss_rate == 0.2  # short burst expired
    world.run(until=2.0)
    assert world.network.loss_rate == base
    assert injector.done


def test_cancel_bursts_restores_immediately():
    world = make_world()
    base = world.network.loss_rate
    injector = FaultInjector(
        world,
        Schedule([FaultEvent(0.1, "loss_burst", {"rate": 0.9, "duration": 50.0})]),
    )
    injector.start()
    world.run(until=0.2)
    assert world.network.loss_rate == 0.9
    injector.cancel_bursts()
    assert world.network.loss_rate == base


def test_handover_moves_preferred_site():
    world = make_world()
    injector = run_injector(
        world, [FaultEvent(0.5, "handover", {"cid": "c0", "to_site": 1})], until=3.0
    )
    assert injector.errors == []
    assert world.config.container("c0").preferred_site == 1
    assert world.config.holds_preferred_lease("c0", 1)


def test_reintegrate_waits_for_inflight_removal():
    world = make_world()
    injector = run_injector(
        world,
        [
            FaultEvent(0.5, "fail_site", {"site": 1}),
            FaultEvent(0.6, "remove_site", {"site": 1, "reassign_to": 0}),
            # Deliberately too early: must queue behind the removal.
            FaultEvent(0.7, "reintegrate", {"site": 1}),
        ],
        until=30.0,
    )
    assert injector.errors == []
    assert world.config.is_active(1)
