"""Unit tests for the hot-path batching layer (DESIGN.md §14): the
propagation wire format, the ``Deployment(batching=...)`` knob, the
adaptive WAL group-commit window, and remote-read coalescing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objects import ObjectId, ObjectKind
from repro.core.transaction import CommitRecord
from repro.core.updates import CSetAdd, DataUpdate
from repro.core.versions import VectorTimestamp
from repro.deployment import Deployment
from repro.net.wire import (
    ack_batch_bytes,
    decode_propagation_batch,
    encode_propagation_batch,
)
from repro.server import BatchingConfig
from repro.sim import Kernel
from repro.storage import FLUSH_MEMORY, DiskLog


def _oid(name):
    return ObjectId("c", name, ObjectKind.REGULAR)


def _record(site, seqno, seqnos, updates, touched=None):
    return CommitRecord(
        tid="t%d-%d" % (site, seqno),
        site=site,
        seqno=seqno,
        start_vts=VectorTimestamp(seqnos),
        updates=updates,
        committed_at=0.125 * seqno,
        touched=touched,
    )


def _chain(seed, n_sites=4, n_records=6):
    """A plausible propagation run: one origin, consecutive seqnos, a
    snapshot vector that drifts by a few entries per record (the shape
    delta encoding exploits), a mix of full / trimmed / empty records."""
    rng = random.Random(seed)
    site = rng.randrange(n_sites)
    seqnos = [rng.randrange(50) for _ in range(n_sites)]
    first_seqno = rng.randrange(1, 100)
    records = []
    for k in range(n_records):
        for _ in range(rng.randrange(3)):
            seqnos[rng.randrange(n_sites)] += rng.randrange(1, 4)
        shape = rng.randrange(3)
        if shape == 0:
            updates = [DataUpdate(_oid("x%d" % k), b"v" * rng.randrange(1, 50))]
            touched = None
        elif shape == 1:
            updates = [CSetAdd(ObjectId("c", "s", ObjectKind.CSET), k)]
            touched = None
        else:
            # Trimmed for a non-replica destination: header only.
            updates = []
            touched = ("c",)
        records.append(
            _record(site, first_seqno + k, tuple(seqnos), updates, touched)
        )
    return records


def _assert_same(decoded, records):
    assert len(decoded) == len(records)
    for d, r in zip(decoded, records):
        assert d.tid == r.tid
        assert d.site == r.site
        assert d.seqno == r.seqno
        assert d.start_vts == r.start_vts
        assert d.updates == r.updates
        assert d.committed_at == r.committed_at
        assert d.touched == r.touched


class TestWireFormat:
    def test_roundtrip_basic(self):
        records = _chain(1)
        for delta in (True, False):
            entries, size = encode_propagation_batch(records, delta)
            assert size > 0
            _assert_same(decode_propagation_batch(entries), records)

    def test_delta_encoding_is_smaller_for_similar_snapshots(self):
        # Consecutive commits at one site share almost their whole
        # snapshot vector; the delta wire must capitalize on it.
        records = [
            _record(0, 10 + k, (10 + k, 7, 3, 9), [], touched=("c",))
            for k in range(8)
        ]
        _, size_delta = encode_propagation_batch(records, True)
        _, size_abs = encode_propagation_batch(records, False)
        assert size_delta < size_abs

    def test_single_record_batch_is_absolute(self):
        records = _chain(2, n_records=1)
        entries, _ = encode_propagation_batch(records, True)
        # The lone record's vts field is the absolute tuple, not a delta.
        assert entries[0][3] == records[0].start_vts._seqnos
        _assert_same(decode_propagation_batch(entries), records)

    def test_identical_snapshots_produce_empty_deltas(self):
        records = [
            _record(1, 5 + k, (4, 4, 4), [], touched=("c",)) for k in range(3)
        ]
        entries, _ = encode_propagation_batch(records, True)
        assert entries[1][3] == () and entries[2][3] == ()
        _assert_same(decode_propagation_batch(entries), records)

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_random_chains(self, seed):
        rng = random.Random(seed)
        records = _chain(
            seed, n_sites=rng.randint(1, 8), n_records=rng.randint(1, 12)
        )
        delta = seed % 2 == 0
        entries, size = encode_propagation_batch(records, delta)
        assert size > 0
        _assert_same(decode_propagation_batch(entries), records)

    def test_ack_batch_bytes_scale_linearly(self):
        assert ack_batch_bytes(1) < ack_batch_bytes(2) < ack_batch_bytes(100)
        assert ack_batch_bytes(10) - ack_batch_bytes(9) == ack_batch_bytes(
            2
        ) - ack_batch_bytes(1)


class TestBatchingConfig:
    def test_coerce(self):
        assert BatchingConfig.coerce(None) is None
        assert BatchingConfig.coerce(False) is None
        assert BatchingConfig.coerce(True) == BatchingConfig()
        cfg = BatchingConfig(wal_window=0.002)
        assert BatchingConfig.coerce(cfg) is cfg
        assert BatchingConfig.coerce({"delta_vts": False}) == BatchingConfig(
            delta_vts=False
        )

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError):
            BatchingConfig.coerce("yes")

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingConfig(wal_window=-1.0)
        with pytest.raises(ValueError):
            BatchingConfig(max_batch=0)

    def test_deployment_knob(self):
        world = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY, seed=1)
        assert world.batching is None
        world = Deployment(
            n_sites=2, flush_latency=FLUSH_MEMORY, seed=1, batching=True
        )
        assert world.batching == BatchingConfig()
        for server in world.servers:
            assert server.batching == BatchingConfig()


class TestAdaptiveWalWindow:
    def _log(self, window):
        kernel = Kernel()
        return kernel, DiskLog(kernel, flush_latency=0.010, flush_window=window)

    def test_busy_window_absorbs_racing_background_record(self):
        kernel, log = self._log(0.002)
        durable = {}

        def writer(delay, key, payload):
            yield kernel.timeout(delay)
            yield log.append(payload)
            durable[key] = kernel.now

        kernel.spawn(writer(0.0, "warm", {"kind": "remote_apply", "n": 0}))
        # Both arrive just after the warm flush ends (busy log): the lone
        # leader holds the window open and the chaser rides its flush.
        kernel.spawn(writer(0.011, "leader", {"kind": "remote_apply", "n": 1}))
        kernel.spawn(writer(0.012, "chaser", {"kind": "remote_apply", "n": 2}))
        kernel.run(until=1.0)
        assert durable["leader"] == durable["chaser"] == pytest.approx(0.023)
        assert log.stats.flushes == 2
        assert log.stats.max_batch == 2

    def test_local_commit_skips_the_window(self):
        # A client is blocked on the commit ack, so the window must not
        # add latency: the lone local-commit record flushes immediately.
        kernel, log = self._log(0.002)
        durable = {}

        def writer(delay, key, payload):
            yield kernel.timeout(delay)
            yield log.append(payload)
            durable[key] = kernel.now

        kernel.spawn(writer(0.0, "warm", {"kind": "remote_apply", "n": 0}))
        kernel.spawn(writer(0.011, "commit", {"kind": "local_commit", "n": 1}))
        kernel.run(until=1.0)
        assert durable["commit"] == pytest.approx(0.021)

    def test_idle_log_does_not_wait(self):
        # No recent flush: the very first record flushes immediately even
        # though it is a lone background record.
        kernel, log = self._log(0.002)

        def writer():
            yield log.append({"kind": "remote_apply", "n": 0})
            return kernel.now

        assert kernel.run_process(writer(), until=1.0) == pytest.approx(0.010)

    def test_window_zero_is_legacy_behavior(self):
        kernel, log = self._log(0.0)
        durable = {}

        def writer(delay, key, payload):
            yield kernel.timeout(delay)
            yield log.append(payload)
            durable[key] = kernel.now

        kernel.spawn(writer(0.0, "warm", {"kind": "remote_apply", "n": 0}))
        kernel.spawn(writer(0.011, "leader", {"kind": "remote_apply", "n": 1}))
        kernel.spawn(writer(0.012, "chaser", {"kind": "remote_apply", "n": 2}))
        kernel.run(until=1.0)
        # Without the window the leader flushes alone; the chaser (which
        # arrived during the leader's flush) lands in the next flush.
        assert durable["leader"] == pytest.approx(0.021)
        assert durable["chaser"] == pytest.approx(0.031)


def _run_readers(batching, n_readers=3):
    """Readers at site 0 concurrently fetch the same remote-preferred
    object: with coalescing on, the duplicates ride the leader's RPC."""
    world = Deployment(
        n_sites=2, flush_latency=FLUSH_MEMORY, seed=5, batching=batching
    )
    # Replicated only at site 1: site 0's readers must fetch remotely.
    world.create_container("remote", preferred_site=1, replica_sites=[1])
    oid = world.config.container("remote").new_id()
    world.preload({oid: b"remote-value"})
    values = []

    def reader(client):
        tx = client.start_tx()
        value = yield from client.read(tx, oid)
        yield from client.commit(tx)
        values.append(value)

    for _ in range(n_readers):
        world.kernel.spawn(reader(world.new_client(0)))
    world.run(until=10.0)
    world.settle(2.0)
    assert values == [b"remote-value"] * n_readers
    return world.servers[0].stats.coalesced_reads


class TestReadCoalescing:
    def test_duplicate_inflight_reads_coalesce(self):
        assert _run_readers(True) >= 1

    def test_batching_off_never_coalesces(self):
        assert _run_readers(None) == 0

    def test_multiread_fans_out_batched_gets(self):
        world = Deployment(
            n_sites=3, flush_latency=FLUSH_MEMORY, seed=6, batching=True
        )
        oids, expect = [], []
        for site in range(3):
            world.create_container("c%d" % site, preferred_site=site)
            for k in range(2):
                oid = world.config.container("c%d" % site).new_id()
                oids.append(oid)
                expect.append(("s%d-%d" % (site, k)).encode())
        world.preload(dict(zip(oids, expect)))
        out = {}

        def reader(client):
            tx = client.start_tx()
            values = yield from client.multiread(tx, oids)
            yield from client.commit(tx)
            out["values"] = values

        world.kernel.spawn(reader(world.new_client(0)))
        world.run(until=10.0)
        assert out["values"] == expect
