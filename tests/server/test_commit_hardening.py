"""Commit-path hardening (DESIGN.md §9): lock leases, reliable 2PC
decision delivery, transaction reaping, and at-most-once client retries.

Each test pins one of the failure modes the hardening closes:

* a participant's YES reply is lost -> the coordinator's retried abort
  release (not propagation, which never fires for aborts) frees the
  locks;
* the coordinator dies mid-2PC -> the participant's lease sweeper asks
  the (replacement) coordinator and releases on ABORTED/UNKNOWN
  (presumed abort);
* a client abandons a transaction -> the lease sweeper reaps it so its
  startVTS stops pinning the GC watermark;
* a commit reply is lost -> the client's retry carries an idempotency
  token and the transaction still commits exactly once.
"""

import pytest

from repro.client import RetryPolicy
from repro.deployment import Deployment
from repro.errors import TransactionStateError
from repro.net import RpcRemoteError


def _two_site_world(seed=7, **kwargs):
    w = Deployment(n_sites=2, seed=seed, **kwargs)
    w.create_container("c0", preferred_site=0)
    w.create_container("c1", preferred_site=1)
    a = w.config.container("c0").new_id()
    b = w.config.container("c1").new_id()
    return w, a, b


def _commit_pair(w, client, a, b, payload):
    def tx_gen():
        tx = client.start_tx()
        yield from client.write(tx, a, payload)
        yield from client.write(tx, b, payload)
        status = yield from client.commit(tx)
        return status

    return w.run_process(tx_gen())


class TestAbortReleaseDelivery:
    """Satellite (a) + tentpole piece 2: the abort decision reaches every
    contacted participant, even one whose vote the coordinator never saw."""

    def test_dropped_prepare_reply_does_not_leak_locks(self):
        w, a, b = _two_site_world()
        client = w.new_client(0, name="harden-c0")
        assert _commit_pair(w, client, a, b, b"seed") == "COMMITTED"
        w.settle(2.0)  # propagation releases the warm-up's prepare locks

        # Site 1 votes YES and locks, but its reply vanishes: the
        # coordinator times out, counts a NO, and aborts.
        w.servers[1].drop_replies("prepare", 10.0)
        assert _commit_pair(w, client, a, b, b"lost-vote") == "ABORTED"
        assert w.servers[1].locked  # locked until the release arrives

        # The coordinator retries release_prepare (the reply drop only
        # covers "prepare") until the participant acks.
        w.settle(5.0)
        assert not w.servers[1].locked
        assert not w.servers[1]._prepared

    def test_duplicate_release_prepare_is_idempotent(self):
        w, a, b = _two_site_world()
        client = w.new_client(0, name="harden-dup")
        assert _commit_pair(w, client, a, b, b"seed") == "COMMITTED"
        w.settle(2.0)

        server = w.servers[1]
        assert server.rpc_release_prepare("no-such-tid") == "OK"
        assert server.rpc_release_prepare("no-such-tid") == "OK"
        # The decision table remembers the (presumed-abort) outcome.
        assert server._decisions["no-such-tid"][0] == "ABORTED"

    def test_planted_bug_restores_the_leak(self):
        """Harness self-test: with ``leak_prepare_locks`` the old
        fire-and-forget abort path runs and the orphan sweeper is off,
        so the lock survives arbitrarily long."""
        w, a, b = _two_site_world(lease_sweeper=True)
        w.chaos_bug = "leak_prepare_locks"
        client = w.new_client(0, name="harden-bug")
        assert _commit_pair(w, client, a, b, b"seed") == "COMMITTED"
        w.settle(2.0)

        w.servers[1].drop_replies("prepare", 10.0)
        assert _commit_pair(w, client, a, b, b"lost-vote") == "ABORTED"
        w.settle(20.0)
        assert w.servers[1].locked  # the pre-hardening behavior


class TestOrphanLockResolution:
    """Tentpole piece 1: prepare locks carry a lease; expiry triggers a
    decision query, never a blind release."""

    def test_orphaned_lock_released_after_decision_query(self):
        w, a, b = _two_site_world(lease_sweeper=True)
        client = w.new_client(0, name="harden-orphan")
        assert _commit_pair(w, client, a, b, b"seed") == "COMMITTED"
        w.settle(2.0)

        # A prepare from a coordinator that then dies mid-2PC: site 0
        # has no decision, no live tx, and no commit record for the tid,
        # so the query answers UNKNOWN (presumed abort).
        server = w.servers[1]
        def ghost_prepare():
            vote = yield from server.rpc_prepare(
                tid="ghost:1",
                oids=[b],
                start_vts=server.committed_vts,
                coord_site=0,
            )
            assert vote is True
        w.run_process(ghost_prepare())
        assert server.locked and "ghost:1" in server._prepared

        # Lease (5 s) + sweep + query round-trip.
        w.settle(8.0)
        assert not server.locked
        assert "ghost:1" not in server._prepared
        assert w.obs.registry.total("locks.leaked_released") == 1

    def test_decision_query_preserves_pending_2pc(self):
        """A lock whose coordinator answers PENDING/COMMITTED is *not*
        released early -- presumed abort must never break a live 2PC."""
        w, a, b = _two_site_world(lease_sweeper=True)
        client = w.new_client(0, name="harden-pending")
        assert _commit_pair(w, client, a, b, b"seed") == "COMMITTED"
        w.settle(2.0)

        server = w.servers[1]
        # Plant a decision at the coordinator first: COMMITTED answers
        # extend the lease and leave the release to propagation.
        w.servers[0]._decisions["slow:1"] = ("COMMITTED", w.kernel.now)
        def prepare():
            yield from server.rpc_prepare(
                tid="slow:1", oids=[b], start_vts=server.committed_vts, coord_site=0
            )
        w.run_process(prepare())
        w.settle(8.0)
        # Still locked: only ABORTED/UNKNOWN answers may release.
        assert server.locked
        assert w.obs.registry.total("locks.leaked_released") == 0


class TestTransactionReaping:
    """Tentpole piece 1: abandoned transactions stop pinning the GC
    watermark once their lease expires."""

    def test_abandoned_tx_reaped_and_watermark_advances(self):
        w, a, b = _two_site_world()
        client = w.new_client(0, name="harden-reap")
        assert _commit_pair(w, client, a, b, b"seed") == "COMMITTED"
        w.settle(2.0)

        server = w.servers[0]
        # An abandoned transaction: started, written, never finished.
        def abandoned():
            tx = client.start_tx()
            yield from client.write(tx, a, b"never-committed")
        w.run_process(abandoned())
        pinned = server.gc_watermark()

        # More commits advance CommittedVTS, but the stuck startVTS
        # keeps the watermark pinned at the meet.
        assert _commit_pair(w, client, a, b, b"later") == "COMMITTED"
        w.settle(2.0)
        assert server.gc_watermark() == pinned

        # After the tx lease (5 s) expires, one sweep reaps it.
        w.settle(server.leases.tx_lease)
        assert server.lease_sweep() == 1
        assert w.obs.registry.total("tx.reaped") == 1
        assert server.gc_watermark() != pinned
        # Reaps are not client-visible aborts; the stats don't conflate
        # them (the gauge refresh is what the GC loop reports).
        server._refresh_gc_gauges()
        gauge = w.obs.registry.gauge("server.gc_watermark", site=0)
        assert gauge.value == sum(server.gc_watermark())

    def test_sweep_clears_expired_anti_starvation_entries(self):
        w, a, b = _two_site_world(anti_starvation=True)
        server = w.servers[1]
        server.mark_slow_commit_abort([b])
        assert server._delayed_until
        # Never re-accessed: only the sweeper can clear it.
        w.settle(server.anti_starvation_delay + 0.1)
        server.lease_sweep()
        assert not server._delayed_until


class TestClientRetry:
    """Tentpole piece 3: timeout retries with an at-most-once commit."""

    @pytest.mark.parametrize("seed", [1, 7, 13, 29, 43])
    def test_retried_commit_commits_exactly_once(self, seed):
        """Property: whatever the network timing (seeded jitter), a
        commit whose reply is lost commits exactly once under retry."""
        w, a, b = _two_site_world(seed=seed)
        client = w.new_client(
            0, name="harden-retry", retry=RetryPolicy(attempts=4, base_delay=0.5)
        )
        assert _commit_pair(w, client, a, b, b"seed") == "COMMITTED"
        w.settle(2.0)

        server = w.servers[0]
        commits_before = server.stats.commits
        versions_before = len(server.histories.history(a).versions())

        # The commit executes but its reply is lost; the client retries
        # with the same idempotency token and gets the cached outcome.
        server.drop_replies("tx_commit", 1.0)
        assert _commit_pair(w, client, a, b, b"retried") == "COMMITTED"
        assert client.retries_attempted > 0

        w.settle(2.0)
        assert server.stats.commits == commits_before + 1
        assert len(server.histories.history(a).versions()) == versions_before + 1

    def test_no_retry_policy_means_no_token_no_retry(self):
        w, a, b = _two_site_world()
        client = w.new_client(0, name="harden-noretry")
        assert _commit_pair(w, client, a, b, b"seed") == "COMMITTED"
        assert client.retry is None
        assert client.retries_attempted == 0
        assert not w.servers[0]._commit_outcomes


class TestFreshThreading:
    """Satellite (b): reads after a server replacement must fail loudly
    instead of silently starting an empty transaction."""

    def test_multiread_after_replacement_raises(self):
        w, a, b = _two_site_world()
        client = w.new_client(0, name="harden-fresh")

        def run():
            tx = client.start_tx()
            yield from client.write(tx, a, b"buffered")
            # The replacement lost the buffered update; multiread must
            # not silently restart the transaction as empty.
            w.crash_server(0)
            w.replace_server(0)
            with pytest.raises(RpcRemoteError) as err:
                yield from client.multiread(tx, [a, b])
            assert TransactionStateError.__name__ in str(err.value)

        w.run_process(run())

    def test_read_cset_objects_after_replacement_raises(self):
        w, a, b = _two_site_world()
        from repro.core.objects import ObjectKind

        cset = w.config.container("c0").new_id(ObjectKind.CSET)
        client = w.new_client(0, name="harden-cset")

        def run():
            tx = client.start_tx()
            yield from client.set_add(tx, cset, "x")
            w.crash_server(0)
            w.replace_server(0)
            with pytest.raises(RpcRemoteError) as err:
                yield from client.read_cset_objects(tx, cset)
            assert TransactionStateError.__name__ in str(err.value)

        w.run_process(run())
