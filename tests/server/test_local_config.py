"""Unit tests for LocalConfig (the shared configuration view)."""

import pytest

from repro.core import Container, ObjectId, ObjectKind
from repro.errors import NoSuchContainerError
from repro.server import LocalConfig


def make_config():
    config = LocalConfig(3)
    config.register(Container("a", 0, frozenset({0, 1, 2})))
    config.register(Container("b", 1, frozenset({0, 1, 2})))
    return config


def test_register_and_lookup():
    config = make_config()
    assert config.container("a").preferred_site == 0
    with pytest.raises(NoSuchContainerError):
        config.container("missing")
    assert {c.id for c in config.containers()} == {"a", "b"}


def test_preferred_site_and_replication_by_oid():
    config = make_config()
    oid = ObjectId("b", "x", ObjectKind.REGULAR)
    assert config.preferred_site(oid) == 1
    assert config.replicated_at(oid, 2)


def test_lease_lifecycle():
    config = make_config()
    assert config.holds_preferred_lease("a", 0)
    assert not config.holds_preferred_lease("a", 1)
    revoked = config.suspend_leases_of_site(0)
    assert revoked == ["a"]
    assert not config.holds_preferred_lease("a", 0)
    # "b" (site 1) untouched.
    assert config.holds_preferred_lease("b", 1)


def test_activate_deactivate_bumps_epoch():
    config = make_config()
    assert config.active_sites() == [0, 1, 2]
    config.deactivate_site(2)
    assert config.active_sites() == [0, 1]
    assert config.epoch == 1
    assert not config.is_active(2)
    config.activate_site(2)
    assert config.is_active(2)
    assert config.epoch == 2


def test_reassign_and_restore_displaced():
    config = make_config()
    config.reassign_preferred_site("a", 2, remember_original=True)
    assert config.container("a").preferred_site == 2
    assert config.holds_preferred_lease("a", 2)
    assert config.displaced == {"a": 0}
    restored = config.restore_displaced(0)
    assert restored == ["a"]
    assert config.container("a").preferred_site == 0
    assert config.displaced == {}


def test_reassign_without_remember_does_not_displace():
    config = make_config()
    config.reassign_preferred_site("a", 1)
    assert config.displaced == {}
    assert config.restore_displaced(0) == []


def test_double_displacement_keeps_first_origin():
    config = make_config()
    config.reassign_preferred_site("a", 1, remember_original=True)
    config.reassign_preferred_site("a", 2, remember_original=True)
    assert config.displaced == {"a": 0}
    config.restore_displaced(0)
    assert config.container("a").preferred_site == 0
