"""Edge cases of ``RecoveryMixin.restore_from_storage`` (§5.7, §6):
restart with no checkpoint, restart whose checkpoint already covers the
whole log, and restart-of-a-restart idempotence."""

from repro.core import ObjectKind
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


def make_world(n_sites=1, **kwargs):
    kwargs.setdefault("flush_latency", FLUSH_MEMORY)
    kwargs.setdefault("jitter_frac", 0.0)
    d = Deployment(n_sites=n_sites, **kwargs)
    for site in range(n_sites):
        d.create_container("c%d" % site, preferred_site=site)
    return d


def commit_write(world, client, oid, data):
    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, data)
        return (yield from client.commit(tx))

    return world.run_process(scenario())


def read_value(world, client, oid):
    def scenario():
        tx = client.start_tx()
        value = yield from client.read(tx, oid)
        yield from client.commit(tx)
        return value

    return world.run_process(scenario())


def force_checkpoint(world, site):
    """Take one checkpoint synchronously at current log position."""
    checkpointer = world.storages[site].checkpointer
    checkpointer.take_checkpoint_sync_start()
    checkpointer._finish_pending()
    return checkpointer.latest()


def fig9_state(server):
    return (
        server.curr_seqno,
        list(server.committed_vts),
        list(server.got_vts),
        sorted(server._records_by_version),
    )


class TestRestoreFromStorage:
    def test_empty_checkpoint_with_nonempty_log_suffix(self):
        # Checkpointer enabled but it never fired before the crash: the
        # replacement must rebuild purely from the log.
        world = make_world(1)
        world.server(0).enable_checkpointing(interval=1e6)
        client = world.new_client(0)
        oids = [client.new_id("c0") for _ in range(3)]
        for i, oid in enumerate(oids):
            assert commit_write(world, client, oid, b"v%d" % i) == "COMMITTED"
        world.settle(0.5)
        assert world.storages[0].checkpointer.latest() is None
        assert len(world.storages[0].log.entries) > 0

        world.crash_server(0)
        replacement = world.replace_server(0)
        assert replacement.curr_seqno == len(oids)
        assert replacement.committed_vts[0] == len(oids)
        client2 = world.new_client(0)
        for i, oid in enumerate(oids):
            assert read_value(world, client2, oid) == b"v%d" % i

    def test_checkpoint_newer_than_log_tail(self):
        # A checkpoint taken after the last log append covers everything:
        # the log suffix is empty and restore replays zero records, but
        # the checkpointed state alone must be complete.
        world = make_world(1)
        world.server(0).enable_checkpointing(interval=1e6)
        client = world.new_client(0)
        oid = client.new_id("c0")
        assert commit_write(world, client, oid, b"checkpointed") == "COMMITTED"
        world.settle(0.5)
        checkpoint = force_checkpoint(world, 0)
        assert checkpoint.log_position == len(world.storages[0].log.entries)
        state, suffix = world.storages[0].recover()
        assert state is not None and suffix == []

        world.crash_server(0)
        replacement = world.replace_server(0)
        assert replacement.curr_seqno == 1
        client2 = world.new_client(0)
        assert read_value(world, client2, oid) == b"checkpointed"

    def test_checkpoint_plus_log_suffix_does_not_double_apply(self):
        # Commits before the checkpoint land in both checkpoint state and
        # log; commits after only in the log.  The replay guard must skip
        # the covered prefix -- cset applies are not idempotent, so a
        # double apply would inflate the element count.
        world = make_world(1)
        world.server(0).enable_checkpointing(interval=1e6)
        client = world.new_client(0)
        cset = client.new_id("c0", ObjectKind.CSET)

        def add(element):
            tx = client.start_tx()
            yield from client.set_add(tx, cset, element)
            return (yield from client.commit(tx))

        assert world.run_process(add("early")) == "COMMITTED"
        world.settle(0.5)
        force_checkpoint(world, 0)
        assert world.run_process(add("late")) == "COMMITTED"
        world.settle(0.5)

        world.crash_server(0)
        world.replace_server(0)
        client2 = world.new_client(0)

        def counts():
            tx = client2.start_tx()
            value = yield from client2.set_read(tx, cset)
            yield from client2.commit(tx)
            return value.counts()

        assert world.run_process(counts()) == {"early": 1, "late": 1}

    def test_double_restart_is_idempotent(self):
        # Crash/replace twice with no traffic in between: the second
        # restore must land on exactly the same Fig 9 state.
        world = make_world(2)
        world.server(0).enable_checkpointing(interval=1e6)
        client = world.new_client(0)
        oid = client.new_id("c0")
        cset = client.new_id("c0", ObjectKind.CSET)

        def setup():
            tx = client.start_tx()
            yield from client.write(tx, oid, b"stable")
            yield from client.set_add(tx, cset, "once")
            return (yield from client.commit(tx))

        assert world.run_process(setup()) == "COMMITTED"
        world.settle(1.0)
        force_checkpoint(world, 0)

        world.crash_server(0)
        first = world.replace_server(0)
        world.settle(1.0)
        state_after_first = fig9_state(first)

        world.crash_server(0)
        second = world.replace_server(0)
        world.settle(1.0)
        assert fig9_state(second) == state_after_first

        client2 = world.new_client(0)
        assert read_value(world, client2, oid) == b"stable"

        def counts():
            tx = client2.start_tx()
            value = yield from client2.set_read(tx, cset)
            yield from client2.commit(tx)
            return value.counts()

        assert world.run_process(counts()) == {"once": 1}

    def test_checkpoint_carries_gc_state(self):
        # After GC, commit records alone no longer cover object state:
        # regular versions are pruned, cset entries live only in the
        # folded base, and the record map itself is pruned.  The
        # checkpoint must carry the histories (base + watermark + suffix)
        # so a replacement reads exactly what the old server served.
        world = make_world(1)
        world.server(0).enable_checkpointing(interval=1e6)
        client = world.new_client(0)
        oid = client.new_id("c0")
        cset = client.new_id("c0", ObjectKind.CSET)

        def traffic():
            for i in range(3):
                tx = client.start_tx()
                yield from client.write(tx, oid, b"v%d" % i)
                yield from client.set_add(tx, cset, "e%d" % i)
                yield from client.commit(tx)

        world.run_process(traffic())
        world.settle(1.0)
        server = world.server(0)
        assert server.gc_histories() == 5          # 2 pruned + 3 folded
        assert server.stats.gc_records_removed == 3
        assert server.histories.get(cset).base_counts == {
            "e0": 1, "e1": 1, "e2": 1,
        }
        force_checkpoint(world, 0)

        world.crash_server(0)
        replacement = world.replace_server(0)
        restored = replacement.histories.get(cset)
        assert restored.base_counts == {"e0": 1, "e1": 1, "e2": 1}
        assert len(restored) == 0
        assert list(restored.gc_vts) == [3]
        client2 = world.new_client(0)
        assert read_value(world, client2, oid) == b"v2"

        def counts():
            tx = client2.start_tx()
            value = yield from client2.set_read(tx, cset)
            yield from client2.commit(tx)
            return value.counts()

        assert world.run_process(counts()) == {"e0": 1, "e1": 1, "e2": 1}
        # And traffic continues past the restored watermark.
        assert commit_write(world, client2, oid, b"after") == "COMMITTED"
        assert read_value(world, client2, oid) == b"after"
