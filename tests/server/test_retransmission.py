"""Propagation retransmission: replication self-heals after transient
partitions and message loss, without a server restart."""

import pytest

from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


def make_world():
    d = Deployment(n_sites=2, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    d.create_container("c0", preferred_site=0)
    return d


def commit_write(world, client, oid, data):
    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, data)
        return (yield from client.commit(tx))

    return world.run_process(scenario(), within=120.0)


def read_value(world, client, oid):
    def scenario():
        tx = client.start_tx()
        value = yield from client.read(tx, oid)
        yield from client.commit(tx)
        return value

    return world.run_process(scenario(), within=120.0)


def test_propagation_recovers_after_partition_heals():
    world = make_world()
    client0 = world.new_client(0)
    client1 = world.new_client(1)
    oid = client0.new_id("c0")

    # Commit while partitioned: the PROPAGATE batch is dropped.
    world.network.partition(0, 1)
    assert commit_write(world, client0, oid, b"through the storm") == "COMMITTED"
    world.settle(2.0)
    assert read_value(world, client1, oid) is None  # still cut off

    # Heal; the retransmission sweep re-sends the lost batch.
    world.network.heal(0, 1)
    world.settle(5.0)
    assert read_value(world, client1, oid) == b"through the storm"
    assert world.server(0).stats.retransmissions >= 1


def test_transaction_becomes_ds_durable_after_heal():
    world = make_world()
    client0 = world.new_client(0)
    oid = client0.new_id("c0")
    world.network.partition(0, 1)

    def scenario():
        tx = client0.start_tx()
        yield from client0.write(tx, oid, b"v")
        yield from client0.commit(tx)
        committed = world.kernel.now
        yield tx.ds_event
        yield tx.visible_event
        return world.kernel.now - committed

    def healer():
        yield world.kernel.timeout(3.0)
        world.network.heal(0, 1)

    world.kernel.spawn(healer())
    elapsed = world.run_process(scenario(), within=120.0)
    assert elapsed > 3.0  # could not complete until the heal


def test_propagation_survives_random_message_loss():
    world = Deployment(
        n_sites=2, flush_latency=FLUSH_MEMORY, jitter_frac=0.0, seed=7
    )
    world.create_container("c0", preferred_site=0)
    world.network.loss_rate = 0.3  # drop 30% of everything
    client0 = world.new_client(0)
    oids = [client0.new_id("c0") for _ in range(5)]

    def writer():
        statuses = []
        for i, oid in enumerate(oids):
            tx = client0.start_tx()
            try:
                yield from client0.write(tx, oid, b"v%d" % i)
                statuses.append((yield from client0.commit(tx)))
            except Exception:
                statuses.append("LOST-RPC")
        return statuses

    statuses = world.run_process(writer(), within=300.0)
    committed = [i for i, s in enumerate(statuses) if s == "COMMITTED"]
    assert committed  # at least some client RPCs survived the loss
    # Stop losing messages and let retransmission finish the job.
    world.network.loss_rate = 0.0
    world.settle(10.0)
    client1 = world.new_client(1)
    for i in committed:
        assert read_value(world, client1, oids[i]) == b"v%d" % i
