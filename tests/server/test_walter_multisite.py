"""Multi-site Walter behaviour: asynchronous propagation, PSI semantics,
slow commit, durability milestones, partial replication."""

import pytest

from repro.core import ObjectKind
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


def make_world(n_sites=2, **kwargs):
    kwargs.setdefault("flush_latency", FLUSH_MEMORY)
    kwargs.setdefault("jitter_frac", 0.0)
    d = Deployment(n_sites=n_sites, **kwargs)
    for site in range(n_sites):
        d.create_container("c%d" % site, preferred_site=site)
    return d


def test_commit_is_local_then_propagates():
    world = make_world(2)
    client0 = world.new_client(0)
    client1 = world.new_client(1)
    oid = client0.new_id("c0")

    def writer():
        tx = client0.start_tx()
        yield from client0.write(tx, oid, b"v")
        status = yield from client0.commit(tx)
        return (status, world.kernel.now)

    status, commit_time = world.run_process(writer())
    assert status == "COMMITTED"
    # Fast commit involves no cross-site communication: well under an RTT.
    assert commit_time < 0.040

    def remote_reader():
        tx = client1.start_tx()
        value = yield from client1.read(tx, oid)
        yield from client1.commit(tx)
        return value

    # Immediately after commit, site 1 has not committed the tx yet.
    early = world.run_process(remote_reader())
    world.settle(2.0)
    late = world.run_process(remote_reader())
    assert early is None
    assert late == b"v"


def test_ds_durability_latency_within_rtt_band():
    world = make_world(2)
    client0 = world.new_client(0)
    oid = client0.new_id("c0")
    rtt = world.topology.rtt("VA", "CA")

    def writer():
        tx = client0.start_tx()
        yield from client0.write(tx, oid, b"v")
        yield from client0.commit(tx)
        committed_at = world.kernel.now
        ds_at = yield tx.ds_event
        visible_at = yield tx.visible_event
        return (committed_at, ds_at, visible_at)

    committed_at, ds_at, visible_at = world.run_process(writer())
    ds_latency = ds_at - committed_at
    # Fig 19: DS latency in roughly [RTTmax, 2*RTTmax].
    assert rtt * 0.9 <= ds_latency <= rtt * 2.5
    # Global visibility costs roughly one more RTTmax (§8.3).
    assert visible_at - ds_at <= rtt * 1.5


def test_causal_ordering_across_sites():
    # Alice posts at site 0; Bob reads it at site 1 and replies; site 2
    # (or any site) must never show the reply without the original.
    world = make_world(3)
    alice = world.new_client(0)
    bob = world.new_client(1)
    carol = world.new_client(2)
    post = alice.new_id("c0")
    reply = bob.new_id("c1")

    def alice_posts():
        tx = alice.start_tx()
        yield from alice.write(tx, post, b"original")
        yield from alice.commit(tx)

    def bob_replies():
        while True:
            tx = bob.start_tx()
            seen = yield from bob.read(tx, post)
            if seen is not None:
                yield from bob.write(tx, reply, b"reply")
                status = yield from bob.commit(tx)
                assert status == "COMMITTED"
                return
            yield from bob.commit(tx)
            yield world.kernel.timeout(0.020)

    def carol_checks():
        violations = []
        for _ in range(200):
            tx = carol.start_tx()
            r = yield from carol.read(tx, reply)
            p = yield from carol.read(tx, post)
            yield from carol.commit(tx)
            if r is not None and p is None:
                violations.append(world.kernel.now)
            yield world.kernel.timeout(0.005)
        return violations

    world.kernel.spawn(alice_posts())
    world.kernel.spawn(bob_replies())
    checker = world.kernel.spawn(carol_checks())
    world.run(until=10.0)
    assert checker.done and checker.value == []


def test_long_fork_observable_then_merges():
    world = make_world(2)
    client0 = world.new_client(0)
    client1 = world.new_client(1)
    a = client0.new_id("c0")
    b = client1.new_id("c1")

    def scenario():
        tx0 = client0.start_tx()
        yield from client0.write(tx0, a, b"A")
        yield from client0.commit(tx0)
        tx1 = client1.start_tx()
        yield from client1.write(tx1, b, b"B")
        yield from client1.commit(tx1)
        # Immediately: each site sees only its own write (long fork).
        r0 = client0.start_tx()
        saw_a_0 = yield from client0.read(r0, a)
        saw_b_0 = yield from client0.read(r0, b)
        yield from client0.commit(r0)
        r1 = client1.start_tx()
        saw_a_1 = yield from client1.read(r1, a)
        saw_b_1 = yield from client1.read(r1, b)
        yield from client1.commit(r1)
        return (saw_a_0, saw_b_0, saw_a_1, saw_b_1)

    fork = world.run_process(scenario())
    assert fork == (b"A", None, None, b"B")
    world.settle(2.0)

    def merged():
        tx = world.new_client(0).start_tx()
        client = tx.client
        va = yield from client.read(tx, a)
        vb = yield from client.read(tx, b)
        yield from client.commit(tx)
        return (va, vb)

    assert world.run_process(merged()) == (b"A", b"B")


def test_cross_site_write_write_conflict_prevented():
    # Site 1 writes to a site-0-preferred object: slow commit; while it
    # propagates, a local fast commit at site 0 on the same object must
    # not create a conflicting version.  One of the two commits.
    world = make_world(2)
    client0 = world.new_client(0)
    client1 = world.new_client(1)
    oid = client0.new_id("c0")

    def site0_writer():
        tx = client0.start_tx()
        yield from client0.write(tx, oid, b"local")
        return (yield from client0.commit(tx))

    def site1_writer():
        tx = client1.start_tx()
        yield from client1.write(tx, oid, b"remote")
        return (yield from client1.commit(tx))

    p0 = world.kernel.spawn(site0_writer())
    p1 = world.kernel.spawn(site1_writer())
    world.run(until=10.0)
    world.settle(2.0)
    outcomes = sorted([p0.value, p1.value])
    assert outcomes in (["ABORTED", "COMMITTED"], ["COMMITTED", "COMMITTED"])
    if outcomes == ["COMMITTED", "COMMITTED"]:
        # Both committed => they were causally ordered; final state equal.
        def read_at(client):
            tx = client.start_tx()
            value = yield from client.read(tx, oid)
            yield from client.commit(tx)
            return value

        v0 = world.run_process(read_at(client0))
        v1 = world.run_process(read_at(client1))
        assert v0 == v1


def test_slow_commit_takes_a_round_trip():
    world = make_world(2)
    client0 = world.new_client(0)
    oid_remote = client0.new_id("c1")  # preferred site 1 (CA)

    def scenario():
        tx = client0.start_tx()
        yield from client0.write(tx, oid_remote, b"x")
        t0 = world.kernel.now
        status = yield from client0.commit(tx)
        return (status, world.kernel.now - t0)

    status, latency = world.run_process(scenario())
    assert status == "COMMITTED"
    rtt = world.topology.rtt("VA", "CA")
    assert rtt * 0.9 <= latency <= rtt * 2.0
    assert world.server(0).stats.slow_commits == 1


def test_slow_commit_conflict_with_fast_commit_aborts():
    world = make_world(2)
    client0 = world.new_client(0)
    client1 = world.new_client(1)
    oid = client0.new_id("c0")

    def remote_slow():
        tx = client1.start_tx()
        yield from client1.write(tx, oid, b"slow")
        return (yield from client1.commit(tx))

    def local_fast():
        # Commits while the slow commit's prepare is in flight.
        yield world.kernel.timeout(0.010)
        tx = client0.start_tx()
        yield from client0.write(tx, oid, b"fast")
        return (yield from client0.commit(tx))

    slow = world.kernel.spawn(remote_slow())
    fast = world.kernel.spawn(local_fast())
    world.run(until=10.0)
    assert fast.value == "COMMITTED"
    assert slow.value == "ABORTED"


def test_cset_update_anywhere_without_coordination():
    # §8.4: a transaction adding to a cset with a *remote* preferred site
    # still fast-commits (no cross-site coordination).
    world = make_world(2)
    client0 = world.new_client(0)
    cset_oid = client0.new_id("c1", ObjectKind.CSET)  # preferred site 1

    def scenario():
        tx = client0.start_tx()
        yield from client0.set_add(tx, cset_oid, "from-site-0")
        t0 = world.kernel.now
        status = yield from client0.commit(tx)
        return (status, world.kernel.now - t0)

    status, latency = world.run_process(scenario())
    assert status == "COMMITTED"
    assert latency < 0.040  # no RTT in the commit path
    assert world.server(0).stats.slow_commit_attempts == 0


def test_concurrent_cset_updates_from_all_sites_converge():
    world = make_world(3)
    clients = [world.new_client(s) for s in range(3)]
    cset_oid = clients[0].new_id("c0", ObjectKind.CSET)

    def adder(client, elem):
        tx = client.start_tx()
        yield from client.set_add(tx, cset_oid, elem)
        return (yield from client.commit(tx))

    procs = [
        world.kernel.spawn(adder(clients[s], "site-%d" % s)) for s in range(3)
    ]
    world.run(until=10.0)
    assert all(p.value == "COMMITTED" for p in procs)
    world.settle(3.0)

    def read_at(client):
        tx = client.start_tx()
        cset = yield from client.set_read(tx, cset_oid)
        yield from client.commit(tx)
        return cset.counts()

    expected = {"site-0": 1, "site-1": 1, "site-2": 1}
    for client in clients:
        assert world.run_process(read_at(client)) == expected


def test_partial_replication_remote_read():
    # Container replicated only at sites 0,1; a client at site 2 reads it
    # via the preferred site (§5.3).
    world = Deployment(n_sites=3, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    world.create_container("p", preferred_site=0, replica_sites={0, 1})
    client0 = world.new_client(0)
    client2 = world.new_client(2)
    oid = client0.new_id("p")

    def writer():
        tx = client0.start_tx()
        yield from client0.write(tx, oid, b"partial")
        yield from client0.commit(tx)

    world.run_process(writer())
    world.settle(2.0)

    def remote_reader():
        tx = client2.start_tx()
        t0 = world.kernel.now
        value = yield from client2.read(tx, oid)
        elapsed = world.kernel.now - t0
        yield from client2.commit(tx)
        return (value, elapsed)

    value, elapsed = world.run_process(remote_reader())
    assert value == b"partial"
    # The read had to fetch from VA: roughly one VA<->IE round trip.
    assert elapsed >= world.topology.rtt(2, 0) * 0.9


def test_partial_replication_write_at_nonreplica_site():
    world = Deployment(n_sites=3, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    world.create_container("p", preferred_site=0, replica_sites={0, 1})
    client2 = world.new_client(2)
    client0 = world.new_client(0)
    oid = client2.new_id("p")

    def writer():
        tx = client2.start_tx()
        yield from client2.write(tx, oid, b"from-site2")
        return (yield from client2.commit(tx))

    assert world.run_process(writer()) == "COMMITTED"
    world.settle(2.0)

    def reader():
        tx = client0.start_tx()
        value = yield from client0.read(tx, oid)
        yield from client0.commit(tx)
        return value

    assert world.run_process(reader()) == b"from-site2"


def test_four_site_deployment_full_mesh_propagation():
    world = make_world(4)
    clients = [world.new_client(s) for s in range(4)]
    oids = [clients[s].new_id("c%d" % s) for s in range(4)]

    def writer(s):
        tx = clients[s].start_tx()
        yield from clients[s].write(tx, oids[s], ("site%d" % s).encode())
        return (yield from clients[s].commit(tx))

    procs = [world.kernel.spawn(writer(s)) for s in range(4)]
    world.run(until=10.0)
    assert all(p.value == "COMMITTED" for p in procs)
    world.settle(3.0)

    def read_all(client):
        tx = client.start_tx()
        values = []
        for oid in oids:
            value = yield from client.read(tx, oid)
            values.append(value)
        yield from client.commit(tx)
        return values

    expected = [b"site0", b"site1", b"site2", b"site3"]
    for client in clients:
        assert world.run_process(read_all(client)) == expected
