"""Server execution details: leases, GC, trace recording, takeover."""

import pytest

from repro.core import ObjectKind, VectorTimestamp
from repro.deployment import Deployment
from repro.net import RpcRemoteError
from repro.storage import FLUSH_MEMORY


def make_world(n_sites=2):
    d = Deployment(n_sites=n_sites, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    for site in range(n_sites):
        d.create_container("c%d" % site, preferred_site=site)
    return d


def commit_write(world, client, oid, data):
    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, data)
        return (yield from client.commit(tx))

    return world.run_process(scenario(), within=120.0)


class TestLeases:
    def test_suspended_lease_rejects_fast_commit(self):
        world = make_world(2)
        client = world.new_client(0)
        oid = client.new_id("c0")
        world.config.suspend_leases_of_site(0)

        def scenario():
            tx = client.start_tx()
            yield from client.write(tx, oid, b"v")
            with pytest.raises(RpcRemoteError, match="PreferredSiteUnavailable"):
                yield from client.commit(tx)
            return True

        assert world.run_process(scenario()) is True

    def test_suspended_lease_votes_no_in_prepare(self):
        world = make_world(2)
        client0 = world.new_client(0)
        oid_site1 = client0.new_id("c1")
        world.config.suspend_leases_of_site(1)
        # Slow commit from site 0 to site 1's object: prepare votes NO.
        assert commit_write(world, client0, oid_site1, b"v") == "ABORTED"

    def test_reads_unaffected_by_lease_suspension(self):
        world = make_world(2)
        client = world.new_client(0)
        oid = client.new_id("c0")
        assert commit_write(world, client, oid, b"v") == "COMMITTED"
        world.config.suspend_leases_of_site(0)

        def scenario():
            tx = client.start_tx()
            value = yield from client.read(tx, oid)
            yield from client.commit(tx)  # read-only: no lease needed
            return value

        assert world.run_process(scenario()) == b"v"


class TestGC:
    def test_gc_drops_superseded_regular_versions(self):
        world = make_world(1)
        client = world.new_client(0)
        oid = client.new_id("c0")
        for i in range(5):
            assert commit_write(world, client, oid, b"v%d" % i) == "COMMITTED"
        server = world.server(0)
        assert len(server.histories.history(oid)) == 5
        removed = server.gc_histories()
        assert removed == 4
        assert len(server.histories.history(oid)) == 1

        def scenario():
            tx = client.start_tx()
            value = yield from client.read(tx, oid)
            yield from client.commit(tx)
            return value

        assert world.run_process(scenario()) == b"v4"

    def test_gc_preserves_csets(self):
        world = make_world(1)
        client = world.new_client(0)
        cset_oid = client.new_id("c0", ObjectKind.CSET)

        def adds():
            for i in range(4):
                tx = client.start_tx()
                yield from client.set_add(tx, cset_oid, i)
                yield from client.commit(tx)

        world.run_process(adds())
        server = world.server(0)
        server.gc_histories()
        assert len(server.histories.history(cset_oid)) == 4


class TestTrace:
    def test_buffered_reads_not_traced(self):
        world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, trace=True)
        world.create_container("c", preferred_site=0)
        client = world.new_client(0)
        oid = client.new_id("c")

        def scenario():
            tx = client.start_tx()
            yield from client.write(tx, oid, b"mine")
            yield from client.read(tx, oid)  # shadowed by the buffer
            yield from client.commit(tx)

        world.run_process(scenario())
        assert world.trace.reads == []

    def test_snapshot_reads_traced(self):
        world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, trace=True)
        world.create_container("c", preferred_site=0)
        client = world.new_client(0)
        oid = client.new_id("c")

        def scenario():
            tx = client.start_tx()
            value = yield from client.read(tx, oid)
            yield from client.commit(tx)
            return value

        world.run_process(scenario())
        assert len(world.trace.reads) == 1
        assert world.trace.reads[0].oid == oid


class TestPreload:
    def test_preload_is_visible_and_consistent_everywhere(self):
        world = make_world(3)
        container = world.config.container("c0")
        oid = container.new_id()
        cset_oid = container.new_id(ObjectKind.CSET)
        world.preload({oid: b"seeded", cset_oid: ["a", "b"]})
        for site in range(3):
            client = world.new_client(site)

            def scenario(client=client):
                tx = client.start_tx()
                value = yield from client.read(tx, oid)
                cset = yield from client.set_read(tx, cset_oid)
                yield from client.commit(tx)
                return (value, sorted(cset.members()))

            assert world.run_process(scenario()) == (b"seeded", ["a", "b"])

    def test_preload_does_not_break_subsequent_commits(self):
        world = make_world(2)
        container = world.config.container("c0")
        preloaded = {container.new_id(): b"x" for _ in range(10)}
        world.preload(preloaded)
        client = world.new_client(0)
        oid = next(iter(preloaded))
        assert commit_write(world, client, oid, b"overwritten") == "COMMITTED"
        world.settle(2.0)
        client1 = world.new_client(1)

        def scenario():
            tx = client1.start_tx()
            value = yield from client1.read(tx, oid)
            yield from client1.commit(tx)
            return value

        assert world.run_process(scenario()) == b"overwritten"


class TestServerMisc:
    def test_unknown_container_read_is_remote_error(self):
        world = make_world(1)
        client = world.new_client(0)
        from repro.core import ObjectId

        ghost = ObjectId("no-such-container", "x")

        def scenario():
            tx = client.start_tx()
            with pytest.raises(RpcRemoteError, match="NoSuchContainer"):
                yield from client.read(tx, ghost)
            return True

        assert world.run_process(scenario()) is True

    def test_commit_with_no_accesses_is_empty_read_only_tx(self):
        world = make_world(1)
        client = world.new_client(0)

        def scenario():
            tx = client.start_tx()
            # Commit is the first server contact: starts an empty tx.
            return (yield from client.commit(tx))

        assert world.run_process(scenario()) == "COMMITTED"
        assert world.server(0).stats.read_only_commits == 1

    def test_repr(self):
        world = make_world(1)
        assert "site=0" in repr(world.server(0))
