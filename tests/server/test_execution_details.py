"""Server execution details: leases, GC, trace recording, takeover."""

import pytest

from repro.core import ObjectKind, VectorTimestamp
from repro.deployment import Deployment
from repro.net import RpcRemoteError
from repro.storage import FLUSH_MEMORY


def make_world(n_sites=2):
    d = Deployment(n_sites=n_sites, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    for site in range(n_sites):
        d.create_container("c%d" % site, preferred_site=site)
    return d


def commit_write(world, client, oid, data):
    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, data)
        return (yield from client.commit(tx))

    return world.run_process(scenario(), within=120.0)


class TestLeases:
    def test_suspended_lease_rejects_fast_commit(self):
        world = make_world(2)
        client = world.new_client(0)
        oid = client.new_id("c0")
        world.config.suspend_leases_of_site(0)

        def scenario():
            tx = client.start_tx()
            yield from client.write(tx, oid, b"v")
            with pytest.raises(RpcRemoteError, match="PreferredSiteUnavailable"):
                yield from client.commit(tx)
            return True

        assert world.run_process(scenario()) is True

    def test_suspended_lease_votes_no_in_prepare(self):
        world = make_world(2)
        client0 = world.new_client(0)
        oid_site1 = client0.new_id("c1")
        world.config.suspend_leases_of_site(1)
        # Slow commit from site 0 to site 1's object: prepare votes NO.
        assert commit_write(world, client0, oid_site1, b"v") == "ABORTED"

    def test_reads_unaffected_by_lease_suspension(self):
        world = make_world(2)
        client = world.new_client(0)
        oid = client.new_id("c0")
        assert commit_write(world, client, oid, b"v") == "COMMITTED"
        world.config.suspend_leases_of_site(0)

        def scenario():
            tx = client.start_tx()
            value = yield from client.read(tx, oid)
            yield from client.commit(tx)  # read-only: no lease needed
            return value

        assert world.run_process(scenario()) == b"v"


class TestGC:
    def test_gc_drops_superseded_regular_versions(self):
        world = make_world(1)
        client = world.new_client(0)
        oid = client.new_id("c0")
        for i in range(5):
            assert commit_write(world, client, oid, b"v%d" % i) == "COMMITTED"
        server = world.server(0)
        assert len(server.histories.history(oid)) == 5
        removed = server.gc_histories()
        assert removed == 4
        assert len(server.histories.history(oid)) == 1

        def scenario():
            tx = client.start_tx()
            value = yield from client.read(tx, oid)
            yield from client.commit(tx)
            return value

        assert world.run_process(scenario()) == b"v4"

    def test_gc_preserves_csets(self):
        world = make_world(1)
        client = world.new_client(0)
        cset_oid = client.new_id("c0", ObjectKind.CSET)

        def adds():
            for i in range(4):
                tx = client.start_tx()
                yield from client.set_add(tx, cset_oid, i)
                yield from client.commit(tx)

        world.run_process(adds())
        server = world.server(0)
        server.gc_histories()
        # The entries are folded into the cached base (no information is
        # lost, unlike regular-object pruning), so the retained suffix is
        # empty but the visible value is intact.
        hist = server.histories.history(cset_oid)
        assert len(hist) == 0
        assert hist.base_counts == {0: 1, 1: 1, 2: 1, 3: 1}

        def scenario():
            tx = client.start_tx()
            cset = yield from client.set_read(tx, cset_oid)
            yield from client.commit(tx)
            return cset

        assert world.run_process(scenario()).counts() == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_watermark_held_back_by_active_transaction(self):
        world = make_world(1)
        client = world.new_client(0)
        oid = client.new_id("c0")
        assert commit_write(world, client, oid, b"v0") == "COMMITTED"

        pinner = world.new_client(0)
        pinned = pinner.start_tx()
        world.run_process(pinner.begin(pinned))  # snapshot at seqno 1

        for i in range(1, 4):
            assert commit_write(world, client, oid, b"v%d" % i) == "COMMITTED"
        world.settle(0.5)  # retire propagation trackers
        server = world.server(0)
        assert list(server.committed_vts) == [4]
        assert list(server.gc_watermark()) == [1]
        # GC at the held-back watermark: versions 2..4 stay readable.
        assert server.gc_histories() == 0
        world.run_process(pinner.abort(pinned))
        assert list(server.gc_watermark()) == [4]
        assert server.gc_histories() == 3

        def read():
            tx = client.start_tx()
            value = yield from client.read(tx, oid)
            yield from client.commit(tx)
            return value

        assert world.run_process(read()) == b"v3"

    def test_gc_prunes_settled_commit_records(self):
        world = make_world(1)
        client = world.new_client(0)
        oid = client.new_id("c0")
        for i in range(3):
            assert commit_write(world, client, oid, b"v%d" % i) == "COMMITTED"
        world.settle(1.0)  # all globally visible (single site)
        server = world.server(0)
        assert len(server._records_by_version) == 3
        server.gc_histories()
        assert len(server._records_by_version) == 0
        assert server.stats.gc_records_removed == 3
        # The WAL still has everything: a replacement rebuilds correctly.
        world.crash_server(0)
        world.replace_server(0)
        client2 = world.new_client(0)

        def read():
            tx = client2.start_tx()
            value = yield from client2.read(tx, oid)
            yield from client2.commit(tx)
            return value

        assert world.run_process(read()) == b"v2"

    def test_gc_skipped_while_site_inactive(self):
        world = make_world(2)
        client = world.new_client(0)
        oid = client.new_id("c0")
        for i in range(3):
            assert commit_write(world, client, oid, b"v%d" % i) == "COMMITTED"
        world.settle(1.0)
        world.config.deactivate_site(0)
        assert world.server(0).gc_histories() == 0
        world.config.activate_site(0)
        assert world.server(0).gc_histories() == 2

    def test_metrics_snapshot_exposes_watermark_gauges(self):
        world = make_world(1)
        client = world.new_client(0)
        oid = client.new_id("c0")
        assert commit_write(world, client, oid, b"v") == "COMMITTED"
        gauges = world.metrics_snapshot()["gauges"]
        assert gauges["server.gc_watermark{site=0}"] == 1
        assert gauges["server.history_entries{site=0}"] == 1
        assert gauges["server.commit_records{site=0}"] == 1
        assert list(world.gc_watermarks()[0]) == [1]


class TestReadMissAllocation:
    def test_snapshot_read_of_unwritten_oid_does_not_allocate(self):
        world = make_world(1)
        client = world.new_client(0)
        oid = client.new_id("c0")
        server = world.server(0)
        before = set(server.histories.known_oids())

        def read():
            tx = client.start_tx()
            value = yield from client.read(tx, oid)
            yield from client.commit(tx)
            return value

        assert world.run_process(read()) is None
        assert set(server.histories.known_oids()) == before


class TestRemoteReadCausality:
    def _world(self):
        world = make_world(2)
        # Replicated ONLY at its preferred site 1: site 0 must read it
        # remotely, merging with its own local-history versions (§5.3).
        world.create_container("r1", preferred_site=1, replica_sites=[1])
        return world

    def test_remote_read_prefers_causally_newest_version(self):
        world = self._world()
        client0, client1 = world.new_client(0), world.new_client(1)
        oid = client0.new_id("r1")
        # Older version committed AT site 0 (slow commit; site 0 keeps it
        # in its local history), fully propagated ...
        assert commit_write(world, client0, oid, b"older-local") == "COMMITTED"
        world.settle(2.0)
        # ... then a causally newer version at the preferred site.
        assert commit_write(world, client1, oid, b"newer-remote") == "COMMITTED"
        world.settle(2.0)

        def read_at_site0():
            tx = client0.start_tx()
            value = yield from client0.read(tx, oid)
            yield from client0.commit(tx)
            return value

        assert world.run_process(read_at_site0()) == b"newer-remote"
        # Regression: after the preferred site GC-prunes the older
        # version, it disappears from the remote payload while still
        # sitting in site 0's local history.  Composing by list position
        # used to resurrect it; the remote watermark filter must not.
        assert world.server(1).gc_histories() >= 1
        assert world.run_process(read_at_site0()) == b"newer-remote"

    def test_remote_cset_read_folds_base_and_local_suffix(self):
        world = self._world()
        client0, client1 = world.new_client(0), world.new_client(1)
        cset = client0.new_id("r1", ObjectKind.CSET)

        def add(client, elem):
            def scenario():
                tx = client.start_tx()
                yield from client.set_add(tx, cset, elem)
                return (yield from client.commit(tx))

            return world.run_process(scenario())

        assert add(client0, "from-site0") == "COMMITTED"
        assert add(client1, "from-site1") == "COMMITTED"
        world.settle(2.0)
        world.server(1).gc_histories()  # folds both into the base

        def read_at_site0():
            tx = client0.start_tx()
            value = yield from client0.set_read(tx, cset)
            yield from client0.commit(tx)
            return value

        counts = world.run_process(read_at_site0()).counts()
        assert counts == {"from-site0": 1, "from-site1": 1}


class TestSetReadId:
    def test_set_read_id_counts_buffered_and_commits_with_last(self):
        world = make_world(1)
        client = world.new_client(0)
        cset = client.new_id("c0", ObjectKind.CSET)

        def scenario():
            tx = client.start_tx()
            yield from client.set_add(tx, cset, "e")
            count = yield from client.set_read_id(tx, cset, "e", last=True)
            return count, tx.status

        count, status = world.run_process(scenario())
        assert count == 1
        assert status == "COMMITTED"
        assert world.server(0).stats.commits == 1

    def test_set_read_id_rejected_at_replacement_server(self):
        # Same contract as tx_read: a replacement server that lost the
        # transaction's buffered updates must fail the access loudly, not
        # silently start a fresh (empty) transaction.
        world = make_world(1)
        client = world.new_client(0)
        cset = client.new_id("c0", ObjectKind.CSET)

        def scenario():
            tx = client.start_tx()
            yield from client.set_add(tx, cset, "e")
            world.crash_server(0)
            world.replace_server(0)
            with pytest.raises(RpcRemoteError, match="TransactionState"):
                yield from client.set_read_id(tx, cset, "e")
            return True

        assert world.run_process(scenario(), within=240.0) is True


class TestTrace:
    def test_buffered_reads_not_traced(self):
        world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, trace=True)
        world.create_container("c", preferred_site=0)
        client = world.new_client(0)
        oid = client.new_id("c")

        def scenario():
            tx = client.start_tx()
            yield from client.write(tx, oid, b"mine")
            yield from client.read(tx, oid)  # shadowed by the buffer
            yield from client.commit(tx)

        world.run_process(scenario())
        assert world.trace.reads == []

    def test_snapshot_reads_traced(self):
        world = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, trace=True)
        world.create_container("c", preferred_site=0)
        client = world.new_client(0)
        oid = client.new_id("c")

        def scenario():
            tx = client.start_tx()
            value = yield from client.read(tx, oid)
            yield from client.commit(tx)
            return value

        world.run_process(scenario())
        assert len(world.trace.reads) == 1
        assert world.trace.reads[0].oid == oid


class TestPreload:
    def test_preload_is_visible_and_consistent_everywhere(self):
        world = make_world(3)
        container = world.config.container("c0")
        oid = container.new_id()
        cset_oid = container.new_id(ObjectKind.CSET)
        world.preload({oid: b"seeded", cset_oid: ["a", "b"]})
        for site in range(3):
            client = world.new_client(site)

            def scenario(client=client):
                tx = client.start_tx()
                value = yield from client.read(tx, oid)
                cset = yield from client.set_read(tx, cset_oid)
                yield from client.commit(tx)
                return (value, sorted(cset.members()))

            assert world.run_process(scenario()) == (b"seeded", ["a", "b"])

    def test_preload_does_not_break_subsequent_commits(self):
        world = make_world(2)
        container = world.config.container("c0")
        preloaded = {container.new_id(): b"x" for _ in range(10)}
        world.preload(preloaded)
        client = world.new_client(0)
        oid = next(iter(preloaded))
        assert commit_write(world, client, oid, b"overwritten") == "COMMITTED"
        world.settle(2.0)
        client1 = world.new_client(1)

        def scenario():
            tx = client1.start_tx()
            value = yield from client1.read(tx, oid)
            yield from client1.commit(tx)
            return value

        assert world.run_process(scenario()) == b"overwritten"


class TestServerMisc:
    def test_unknown_container_read_is_remote_error(self):
        world = make_world(1)
        client = world.new_client(0)
        from repro.core import ObjectId

        ghost = ObjectId("no-such-container", "x")

        def scenario():
            tx = client.start_tx()
            with pytest.raises(RpcRemoteError, match="NoSuchContainer"):
                yield from client.read(tx, ghost)
            return True

        assert world.run_process(scenario()) is True

    def test_commit_with_no_accesses_is_empty_read_only_tx(self):
        world = make_world(1)
        client = world.new_client(0)

        def scenario():
            tx = client.start_tx()
            # Commit is the first server contact: starts an empty tx.
            return (yield from client.commit(tx))

        assert world.run_process(scenario()) == "COMMITTED"
        assert world.server(0).stats.read_only_commits == 1

    def test_repr(self):
        world = make_world(1)
        assert "site=0" in repr(world.server(0))
