"""PendingIndex / _drain_pending performance contract.

The legacy ``_drain_pending`` rescanned every parked record from the
start after each action: a burst of n held-back records cost O(n^2)
guard evaluations.  The :class:`repro.server.propagation.PendingIndex`
version must touch only the records each clock advance unblocks.  These
tests pin that contract with ``_drain_scan_steps`` (a counter of
examined entries) and check that out-of-order propagation batches still
apply strictly in seqno order.
"""

from repro.core.transaction import CommitRecord
from repro.core.versions import VectorTimestamp, Version
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


def make_world(n_sites=2):
    world = Deployment(n_sites=n_sites, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    for site in range(n_sites):
        world.create_container("c%d" % site, preferred_site=site)
    return world


def remote_record(tid, seqno, n_sites=2, site=0):
    """A site-``site`` commit record with no causal dependencies."""
    return CommitRecord(
        tid=tid,
        site=site,
        seqno=seqno,
        start_vts=VectorTimestamp.zeros(n_sites),
        updates=[],
        committed_at=0.0,
    )


N_PARKED = 10_000


def test_drain_scan_is_o_unblocked_not_o_parked():
    """10k records parked behind one missing seqno: a clock advance must
    examine a handful of entries, not rescan the whole backlog."""
    world = make_world(2)
    receiver = world.server(1)

    # Park seqnos 2..N+1 from site 0; seqno 1 never arrived, so every
    # record fails the GotVTS guard.
    for seqno in range(2, N_PARKED + 2):
        receiver._park_remote(remote_record("t%d" % seqno, seqno), None)
    assert len(receiver._pending_remote) == N_PARKED

    # Nothing is unblocked: the drain must not walk the backlog.
    receiver._drain_scan_steps = 0
    receiver._drain_pending()
    assert receiver._drain_scan_steps <= 4
    assert len(receiver._pending_remote) == N_PARKED

    # Deliver the missing seqno 1 by hand: exactly one head unblocks.
    receiver.got_vts = receiver.got_vts.with_entry(0, 1)
    receiver._drain_scan_steps = 0
    receiver._drain_pending()
    assert receiver._drain_scan_steps <= 4
    # The head (seqno 2) was popped and handed to an apply process.
    assert receiver._pending_remote.get(0, 2) is None

    # Let the chain drain: each apply advances GotVTS by one and wakes
    # only the next head, so the full drain is O(n) scan steps total
    # (the legacy restart-scan would have done ~n^2/2 ~ 50M).
    world.settle(30.0)
    assert receiver.got_vts[0] == N_PARKED + 1
    assert len(receiver._pending_remote) == 0
    assert receiver._drain_scan_steps <= 5 * N_PARKED


def test_duplicate_park_is_noop():
    world = make_world(2)
    receiver = world.server(1)
    record = remote_record("dup", 2)
    receiver._park_remote(record, None)
    receiver._park_remote(record, None)  # retransmitted batch
    assert len(receiver._pending_remote) == 1


def test_out_of_order_batch_applies_in_seqno_order():
    """A PROPAGATE batch delivered in reverse seqno order must park the
    early arrivals and apply everything in seqno order once the first
    record lands."""
    world = make_world(2)
    receiver = world.server(1)
    world.network.register("test-origin", 0)

    records = [remote_record("t%d" % s, s) for s in (5, 4, 3, 2, 1)]

    def deliver():
        yield from receiver.on_propagate("test-origin", records, from_site=0)

    world.run_process(deliver())
    world.settle(2.0)

    assert receiver.got_vts[0] == 5
    assert len(receiver._pending_remote) == 0
    applied = [v for v in receiver._records_by_version if v.site == 0]
    assert applied == [Version(0, s) for s in (1, 2, 3, 4, 5)]
