"""Failure handling (§5.7): server replacement, conservative waiting,
aggressive site removal, and re-integration."""

import pytest

from repro.core import ObjectKind
from repro.deployment import Deployment
from repro.errors import PreferredSiteUnavailableError
from repro.net import RpcError, RpcRemoteError, RpcTimeout
from repro.storage import FLUSH_MEMORY


def make_world(n_sites=2, **kwargs):
    kwargs.setdefault("flush_latency", FLUSH_MEMORY)
    kwargs.setdefault("jitter_frac", 0.0)
    d = Deployment(n_sites=n_sites, **kwargs)
    for site in range(n_sites):
        d.create_container("c%d" % site, preferred_site=site)
    return d


def commit_write(world, client, oid, data):
    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, data)
        return (yield from client.commit(tx))

    return world.run_process(scenario())


def read_value(world, client, oid):
    def scenario():
        tx = client.start_tx()
        value = yield from client.read(tx, oid)
        yield from client.commit(tx)
        return value

    return world.run_process(scenario())


class TestServerReplacement:
    def test_replacement_recovers_committed_state(self):
        world = make_world(1)
        client = world.new_client(0)
        oid = client.new_id("c0")
        assert commit_write(world, client, oid, b"before-crash") == "COMMITTED"
        world.crash_server(0)
        world.replace_server(0)
        client2 = world.new_client(0)
        assert read_value(world, client2, oid) == b"before-crash"

    def test_replacement_resumes_propagation(self):
        # Commit at site 0, crash its server before propagation completes,
        # replace it; site 1 must still eventually see the write.
        world = make_world(2)
        client0 = world.new_client(0)
        oid = client0.new_id("c0")

        def writer():
            tx = client0.start_tx()
            yield from client0.write(tx, oid, b"survives")
            return (yield from client0.commit(tx))

        assert world.run_process(writer()) == "COMMITTED"
        # Crash immediately: the PROPAGATE batch is in flight or undelivered.
        world.crash_server(0)
        replacement = world.replace_server(0)
        world.settle(3.0)
        assert replacement.stats.resumed_propagations >= 1
        client1 = world.new_client(1)
        assert read_value(world, client1, oid) == b"survives"

    def test_replacement_recovers_remote_state(self):
        world = make_world(2)
        client1 = world.new_client(1)
        oid = client1.new_id("c1")
        assert commit_write(world, client1, oid, b"remote-data") == "COMMITTED"
        world.settle(3.0)  # propagate to site 0
        world.crash_server(0)
        world.replace_server(0)
        client0 = world.new_client(0)
        assert read_value(world, client0, oid) == b"remote-data"

    def test_outstanding_transactions_of_crashed_server_are_lost(self):
        world = make_world(1)
        client = world.new_client(0)
        oid = client.new_id("c0")

        def scenario():
            tx = client.start_tx()
            yield from client.write(tx, oid, b"uncommitted")
            world.crash_server(0)
            world.replace_server(0)
            # Commit RPC goes to the replacement, which never saw the tx.
            with pytest.raises(RpcError):
                yield from client.commit(tx)
            return True

        assert world.run_process(scenario(), within=120.0) is True
        client2 = world.new_client(0)
        assert read_value(world, client2, oid) is None

    def test_recovery_with_checkpoint(self):
        world = make_world(1)
        world.server(0).enable_checkpointing(interval=0.5)
        client = world.new_client(0)
        oids = [client.new_id("c0") for _ in range(5)]
        for i, oid in enumerate(oids):
            commit_write(world, client, oid, b"v%d" % i)
            world.settle(0.3)
        world.settle(1.0)  # let a checkpoint cover a prefix
        assert world.storages[0].checkpointer.latest() is not None
        world.crash_server(0)
        world.replace_server(0)
        client2 = world.new_client(0)
        for i, oid in enumerate(oids):
            assert read_value(world, client2, oid) == b"v%d" % i


class TestConservativeRecovery:
    def test_writes_to_failed_preferred_site_blocked_until_return(self):
        # Conservative option: wait for the site; meanwhile writes to its
        # objects cannot commit (they need the failed preferred site).
        world = make_world(2)
        client0 = world.new_client(0)
        oid_of_site1 = client0.new_id("c1")
        world.fail_site(1)

        def blocked_writer():
            tx = client0.start_tx()
            yield from client0.write(tx, oid_of_site1, b"blocked")
            # Slow commit cannot reach site 1: prepare times out, abort.
            return (yield from client0.commit(tx))

        assert world.run_process(blocked_writer(), within=120.0) == "ABORTED"

        # Site comes back (conservative: same server, links heal).
        for other in range(2):
            if other != 1:
                world.network.heal(1, other)
        world.network.recover_host(world.addresses[1])
        restored = world.replace_server(1)
        assert restored is world.servers[1]

        def retry_writer():
            tx = client0.start_tx()
            yield from client0.write(tx, oid_of_site1, b"after-return")
            return (yield from client0.commit(tx))

        assert world.run_process(retry_writer(), within=120.0) == "COMMITTED"

    def test_reads_of_locally_replicated_data_keep_working(self):
        world = make_world(2)
        client0 = world.new_client(0)
        oid1 = client0.new_id("c1")
        client1 = world.new_client(1)
        assert commit_write(world, client1, oid1, b"replicated-here") == "COMMITTED"
        world.settle(3.0)
        world.fail_site(1)
        # Full replication: site 0 serves the read from its own replica.
        assert read_value(world, client0, oid1) == b"replicated-here"


class TestAggressiveRecovery:
    def test_remove_site_reassigns_preferred_site(self):
        world = make_world(2)
        client0 = world.new_client(0)
        oid_of_site1 = client0.new_id("c1")
        world.fail_site(1)
        world.remove_site(failed_site=1, reassign_to=0, within=120.0)
        assert world.config.active_sites() == [0]
        assert world.config.container("c1").preferred_site == 0

        # Writes to the reassigned container now fast-commit at site 0.
        assert commit_write(world, client0, oid_of_site1, b"new-home") == "COMMITTED"
        assert world.server(0).stats.slow_commit_attempts == 0

    def test_propagated_transactions_survive_removal(self):
        world = make_world(3)
        client2 = world.new_client(2)
        oid = client2.new_id("c2")
        assert commit_write(world, client2, oid, b"made-it-out") == "COMMITTED"
        world.settle(3.0)  # fully propagated
        world.fail_site(2)
        upto = world.remove_site(failed_site=2, reassign_to=0, within=120.0)
        assert upto >= 1
        client0 = world.new_client(0)
        assert read_value(world, client0, oid) == b"made-it-out"

    def test_unpropagated_transactions_are_abandoned(self):
        # Aggressive option sacrifices committed-but-unreplicated txs.
        world = make_world(2)
        client1 = world.new_client(1)
        oid = client1.new_id("c1")
        # Partition first so the commit cannot propagate, then commit.
        world.network.partition(0, 1)
        assert commit_write(world, client1, oid, b"doomed") == "COMMITTED"
        world.servers[1].crash()
        upto = world.remove_site(failed_site=1, reassign_to=0, within=120.0)
        assert upto == 0  # nothing from site 1 reached site 0
        client0 = world.new_client(0)
        assert read_value(world, client0, oid) is None

    def test_partially_propagated_prefix_survives(self):
        # Site 1 commits tx1 which reaches site 0, then is cut off and
        # commits tx2 which does not.  After removal, tx1 survives and is
        # committed at site 0; tx2 is abandoned.
        world = make_world(2)
        client1 = world.new_client(1)
        oid_a = client1.new_id("c1")
        oid_b = client1.new_id("c1")
        assert commit_write(world, client1, oid_a, b"first") == "COMMITTED"
        world.settle(3.0)
        world.network.partition(0, 1)
        assert commit_write(world, client1, oid_b, b"second") == "COMMITTED"
        world.servers[1].crash()
        upto = world.remove_site(failed_site=1, reassign_to=0, within=120.0)
        assert upto == 1
        client0 = world.new_client(0)
        assert read_value(world, client0, oid_a) == b"first"
        assert read_value(world, client0, oid_b) is None


class TestReintegration:
    def test_failed_site_returns_and_takes_back_containers(self):
        world = make_world(2)
        client0 = world.new_client(0)
        client1 = world.new_client(1)
        oid1 = client1.new_id("c1")
        assert commit_write(world, client1, oid1, b"original") == "COMMITTED"
        world.settle(3.0)

        world.fail_site(1)
        world.remove_site(failed_site=1, reassign_to=0, within=120.0)
        # While removed, site 0 commits to the displaced container.
        assert commit_write(world, client0, oid1, b"updated-during-outage") == "COMMITTED"
        world.settle(1.0)

        world.reintegrate_site(1, within=120.0)
        assert world.config.active_sites() == [0, 1]
        assert world.config.container("c1").preferred_site == 1
        world.settle(3.0)

        # The returning site sees the update made during its absence.
        client1b = world.new_client(1)
        assert read_value(world, client1b, oid1) == b"updated-during-outage"
        # And it can fast-commit to its containers again.
        assert commit_write(world, client1b, oid1, b"back-home") == "COMMITTED"
        assert world.servers[1].stats.slow_commit_attempts == 0
        world.settle(3.0)
        assert read_value(world, client0, oid1) == b"back-home"

    def test_reintegrated_site_discards_abandoned_transactions(self):
        world = make_world(2)
        client1 = world.new_client(1)
        oid = client1.new_id("c1")
        world.network.partition(0, 1)
        assert commit_write(world, client1, oid, b"abandoned") == "COMMITTED"
        world.servers[1].crash()
        world.remove_site(failed_site=1, reassign_to=0, within=120.0)
        world.reintegrate_site(1, within=120.0)
        world.settle(3.0)
        client1b = world.new_client(1)
        # The abandoned write was discarded during re-integration.
        assert read_value(world, client1b, oid) is None


class TestMidTransactionServerLoss:
    def test_access_after_replacement_fails_rather_than_forking_tx(self):
        # A client mid-transaction loses its server; the replacement must
        # reject further accesses for that tid instead of silently
        # starting a fresh transaction (which would commit a *partial*
        # update set).
        world = make_world(1)
        client = world.new_client(0)
        oid_a = client.new_id("c0")
        oid_b = client.new_id("c0")

        def scenario():
            tx = client.start_tx()
            yield from client.write(tx, oid_a, b"first half")
            world.crash_server(0)
            world.replace_server(0)
            with pytest.raises(RpcError):
                yield from client.write(tx, oid_b, b"second half")
            with pytest.raises(RpcError):
                yield from client.commit(tx)
            return True

        assert world.run_process(scenario(), within=240.0) is True
        client2 = world.new_client(0)
        # Neither half was committed: atomicity preserved.
        assert read_value(world, client2, oid_a) is None
        assert read_value(world, client2, oid_b) is None
