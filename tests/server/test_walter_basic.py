"""Basic Walter end-to-end behaviour on a single site."""

import pytest

from repro.core import ObjectKind
from repro.deployment import Deployment
from repro.storage import FLUSH_MEMORY


@pytest.fixture
def world():
    d = Deployment(n_sites=1, flush_latency=FLUSH_MEMORY, jitter_frac=0.0)
    d.create_container("c", preferred_site=0)
    return d


def test_write_commit_read_back(world):
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"hello")
        status = yield from client.commit(tx)
        assert status == "COMMITTED"
        tx2 = client.start_tx()
        value = yield from client.read(tx2, oid)
        yield from client.commit(tx2)
        return value

    assert world.run_process(scenario()) == b"hello"


def test_unwritten_object_reads_nil(world):
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        value = yield from client.read(tx, oid)
        yield from client.commit(tx)
        return value

    assert world.run_process(scenario()) is None


def test_read_own_buffered_write(world):
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"mine")
        value = yield from client.read(tx, oid)
        yield from client.abort(tx)
        return value

    assert world.run_process(scenario()) == b"mine"


def test_aborted_writes_invisible(world):
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"never")
        yield from client.abort(tx)
        tx2 = client.start_tx()
        value = yield from client.read(tx2, oid)
        yield from client.commit(tx2)
        return value

    assert world.run_process(scenario()) is None


def test_snapshot_isolation_within_site(world):
    client_a = world.new_client(0)
    client_b = world.new_client(0)
    oid = client_a.new_id("c")

    def scenario():
        # B takes its snapshot, then A commits a write; B must not see it.
        tx_b = client_b.start_tx()
        before = yield from client_b.read(tx_b, oid)
        tx_a = client_a.start_tx()
        yield from client_a.write(tx_a, oid, b"new")
        status = yield from client_a.commit(tx_a)
        assert status == "COMMITTED"
        after = yield from client_b.read(tx_b, oid)
        yield from client_b.commit(tx_b)
        return (before, after)

    before, after = world.run_process(scenario())
    assert before is None and after is None  # repeatable snapshot read


def test_write_write_conflict_aborts_second(world):
    client_a = world.new_client(0)
    client_b = world.new_client(0)
    oid = client_a.new_id("c")

    def scenario():
        tx_a = client_a.start_tx()
        tx_b = client_b.start_tx()
        yield from client_a.write(tx_a, oid, b"a")
        yield from client_b.write(tx_b, oid, b"b")
        s1 = yield from client_a.commit(tx_a)
        s2 = yield from client_b.commit(tx_b)
        return (s1, s2)

    assert world.run_process(scenario()) == ("COMMITTED", "ABORTED")
    assert world.server(0).stats.aborts == 1


def test_disjoint_writes_both_commit(world):
    client_a = world.new_client(0)
    client_b = world.new_client(0)
    oid_a = client_a.new_id("c")
    oid_b = client_a.new_id("c")

    def scenario():
        tx_a = client_a.start_tx()
        tx_b = client_b.start_tx()
        yield from client_a.write(tx_a, oid_a, b"a")
        yield from client_b.write(tx_b, oid_b, b"b")
        s1 = yield from client_a.commit(tx_a)
        s2 = yield from client_b.commit(tx_b)
        return (s1, s2)

    assert world.run_process(scenario()) == ("COMMITTED", "COMMITTED")


def test_cset_add_read_del(world):
    client = world.new_client(0)
    cset_oid = client.new_id("c", ObjectKind.CSET)

    def scenario():
        tx = client.start_tx()
        yield from client.set_add(tx, cset_oid, "x")
        yield from client.set_add(tx, cset_oid, "y")
        yield from client.set_del(tx, cset_oid, "y")
        yield from client.commit(tx)
        tx2 = client.start_tx()
        cset = yield from client.set_read(tx2, cset_oid)
        count_x = yield from client.set_read_id(tx2, cset_oid, "x")
        count_y = yield from client.set_read_id(tx2, cset_oid, "y")
        yield from client.commit(tx2)
        return (cset.counts(), count_x, count_y)

    counts, count_x, count_y = world.run_process(scenario())
    assert counts == {"x": 1}
    assert (count_x, count_y) == (1, 0)


def test_concurrent_cset_updates_never_conflict(world):
    client_a = world.new_client(0)
    client_b = world.new_client(0)
    cset_oid = client_a.new_id("c", ObjectKind.CSET)

    def scenario():
        tx_a = client_a.start_tx()
        tx_b = client_b.start_tx()
        yield from client_a.set_add(tx_a, cset_oid, "e")
        yield from client_b.set_add(tx_b, cset_oid, "e")
        s1 = yield from client_a.commit(tx_a)
        s2 = yield from client_b.commit(tx_b)
        tx = client_a.start_tx()
        count = yield from client_a.set_read_id(tx, cset_oid, "e")
        yield from client_a.commit(tx)
        return (s1, s2, count)

    assert world.run_process(scenario()) == ("COMMITTED", "COMMITTED", 2)


def test_read_only_commit_is_trivial(world):
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        yield from client.read(tx, oid)
        status = yield from client.commit(tx)
        return status

    assert world.run_process(scenario()) == "COMMITTED"
    assert world.server(0).stats.read_only_commits == 1
    assert world.server(0).curr_seqno == 0  # no version consumed


def test_last_flag_piggybacks_commit(world):
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        status = yield from client.write(tx, oid, b"v", last=True)
        assert status == "COMMITTED"
        tx2 = client.start_tx()
        value = yield from client.read(tx2, oid, last=True)
        assert tx2.status == "COMMITTED"
        return value

    assert world.run_process(scenario()) == b"v"


def test_single_site_tx_is_immediately_ds_durable(world):
    client = world.new_client(0)
    oid = client.new_id("c")

    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"v")
        yield from client.commit(tx)
        yield tx.ds_event
        yield tx.visible_event
        return True

    assert world.run_process(scenario()) is True
