"""Write-ahead log with group commit (paper §6).

"Walter uses write-ahead logging, where commit logs are flushed to disk at
commit time ... To improve disk efficiency, Walter employs group commit to
flush many commit records to disk at the same time."

The disk model has a single knob, ``flush_latency``: the time one flush
takes.  Records arriving while a flush is in progress are batched into the
next flush -- that *is* group commit, and it is what bounds commit latency
under load (Fig 18).  "Write-caching off" is modelled as a larger flush
latency; in-memory commit (the Redis-comparison configuration of §8.7)
is ``flush_latency=0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from ..sim import Event, Kernel, Store

#: Flush latencies (seconds) for the three disk configurations of Fig 18.
FLUSH_EC2 = 0.002            # EC2 instance storage (write cache state unknown)
FLUSH_WRITE_CACHING_ON = 0.001   # private cluster, write cache enabled
FLUSH_WRITE_CACHING_OFF = 0.008  # private cluster, write cache disabled
FLUSH_MEMORY = 0.0           # commit to memory only (§8.7 configuration)


@dataclass
class LogRecord:
    """One durable record with the simulated time it became durable."""

    payload: Any
    appended_at: float
    durable_at: Optional[float] = None


@dataclass
class DiskStats:
    flushes: int = 0
    records: int = 0
    max_batch: int = 0
    stalls: int = 0
    fenced: int = 0


class DiskLog:
    """An append-only durable log with group commit.

    :meth:`append` enqueues a record and returns an event that fires when
    the record is on disk.  A single flusher process drains the queue in
    batches of whatever accumulated during the previous flush.
    """

    def __init__(
        self,
        kernel: Kernel,
        flush_latency: float = FLUSH_EC2,
        name: str = "disk",
        flush_window: float = 0.0,
    ):
        if flush_latency < 0:
            raise ValueError("flush latency must be >= 0")
        if flush_window < 0:
            raise ValueError("flush window must be >= 0")
        self.kernel = kernel
        self.flush_latency = flush_latency
        #: Adaptive group-commit window (DESIGN.md §14): with the log
        #: *busy* (the previous flush ended within ``_busy_window``), the
        #: flusher holds the next flush open this long to absorb
        #: concurrent commits.  0 keeps the legacy behavior exactly: the
        #: flusher takes whatever queued during the previous flush and
        #: flushes immediately.
        self.flush_window = flush_window
        self._busy_window = 4.0 * flush_latency
        self._last_flush_end = float("-inf")
        self.name = name
        self._durable_event_name = "%s.durable" % name
        self.entries: List[LogRecord] = []
        self.stats = DiskStats()
        self._flush_counter = None
        self._record_counter = None
        self._stall_counter = None
        self._batch_hist = None
        self._tracer = None
        self._trace_site = 0
        #: Fault injection: flushes (even memory-speed ones) are held
        #: until this simulated time -- models a slow/saturated disk.
        self._stalled_until = 0.0
        #: Fencing epoch (§5.7): bumped by :meth:`fence` at server
        #: takeover; queued writes from an older epoch never land.
        self.epoch = 0
        self._inflight: List = []
        self._queue = Store(kernel, name="%s.queue" % name)
        self._flusher = kernel.spawn(self._flush_loop(), name="%s.flusher" % name)

    def bind_metrics(self, registry, site: int) -> None:
        """Mirror flush/record counts into ``disklog.*{site=s}`` metrics
        (batch sizes as a log-bucket histogram)."""
        self._flush_counter = registry.counter("disklog.flushes", site=site)
        self._record_counter = registry.counter("disklog.records", site=site)
        from ..obs import log_buckets

        self._batch_hist = registry.histogram(
            "disklog.flush_batch", buckets=log_buckets(1.0, 4096.0), site=site
        )
        self._stall_counter = registry.counter("disklog.stalls", site=site)

    def bind_tracer(self, tracer, site: int) -> None:
        """Deep tracing: emit a ``wal.flush`` span when a local commit
        record lands on disk, parented to the transaction's commit span
        (the flush is the group-commit leg of the critical path)."""
        self._tracer = tracer
        self._trace_site = site

    @staticmethod
    def _latency_critical(batch: List) -> bool:
        """Whether any queued record is one a transaction is blocked on
        (a local commit's WAL append gates the client's commit ack);
        background records -- remote applies, remote commits,
        checkpoints -- only need durability eventually."""
        return any(
            isinstance(record.payload, dict)
            and record.payload.get("kind") == "local_commit"
            for record, _done, _epoch in batch
        )

    def _trace_flush(self, payload: Any, batch: int) -> None:
        tracer = self._tracer
        if tracer is None or not tracer.deep:
            return
        if not (isinstance(payload, dict) and payload.get("kind") == "local_commit"):
            return
        from ..obs.trace import FAST_COMMIT, SLOW_COMMIT_COMMIT, WAL_FLUSH

        tid = payload["record"].tid
        parent = tracer.last_seq(tid, FAST_COMMIT) or tracer.last_seq(
            tid, SLOW_COMMIT_COMMIT
        )
        tracer.record(
            tid, WAL_FLUSH, self._trace_site, self.kernel.now,
            parent=parent, batch=batch,
        )

    def inject_stall(self, duration: float) -> float:
        """Fault injection: hold every flush until ``now + duration``.

        Commit paths blocked on :meth:`append` stay blocked for the
        stall, which is how the chaos harness models a disk hiccup.
        Overlapping stalls extend to the furthest deadline; returns the
        time flushes resume.
        """
        if duration < 0:
            raise ValueError("stall duration must be >= 0")
        self._stalled_until = max(self._stalled_until, self.kernel.now + duration)
        self.stats.stalls += 1
        if self._stall_counter is not None:
            self._stall_counter.inc()
        return self._stalled_until

    def append(self, payload: Any) -> Event:
        """Enqueue ``payload``; the returned event fires when durable."""
        done = Event(self.kernel, self._durable_event_name)
        record = LogRecord(payload, appended_at=self.kernel.now)
        if self.flush_latency == 0 and self.kernel.now >= self._stalled_until:
            # Memory-speed commit: durable immediately (same kernel step).
            record.durable_at = self.kernel.now
            self.entries.append(record)
            self.stats.records += 1
            if self._record_counter is not None:
                self._record_counter.inc()
            if self._tracer is not None:
                self._trace_flush(payload, 1)
            done.trigger(record)
            return done
        self._queue.put((record, done, self.epoch))
        return done

    def fence(self) -> List[Any]:
        """Storage fencing at server takeover (§5.7).

        A replicated cluster storage system fences off the old server's
        lease when a replacement takes over: writes the old server issued
        that are not yet durable are discarded and can never land later
        (otherwise a zombie write could resurface after the replacement
        already rebuilt its state, or collide with a reused seqno).
        Returns the discarded payloads so the deployment can account for
        the never-durable local commits.
        """
        self.epoch += 1
        doomed = [record.payload for record, _done, _epoch in self._queue.drain()]
        doomed += [record.payload for record, _done, _epoch in self._inflight]
        self._inflight = []
        self.stats.fenced += len(doomed)
        return doomed

    def _flush_loop(self):
        while True:
            first = yield self._queue.get()
            batch = [first] + self._queue.drain()
            self._inflight = batch
            if (
                self.flush_window > 0.0
                and len(batch) == 1
                and self.kernel.now - self._last_flush_end <= self._busy_window
                and not self._latency_critical(batch)
            ):
                # Busy log, lone background record (remote apply /
                # checkpoint -- nothing is blocked on its durability):
                # flushes are arriving back-to-back but this one caught
                # only a single record, so hold it open briefly --
                # records racing in during the window share the flush
                # instead of forcing the next one.  A batch that already
                # collected company flushes now (the in-progress-flush
                # queue is group commit enough); a local commit flushes
                # now (a client is waiting on the ack); and an idle log
                # (no recent flush) skips the wait entirely.
                yield self.kernel.timeout(self.flush_window)
                batch.extend(self._queue.drain())
                self._inflight = batch
            while self.kernel.now < self._stalled_until:
                # Injected stall: wait it out (it may be extended while
                # we wait), absorbing records that queue up meanwhile.
                yield self.kernel.timeout(self._stalled_until - self.kernel.now)
                batch.extend(self._queue.drain())
                self._inflight = batch
            yield self.kernel.timeout(self.flush_latency)
            self.stats.flushes += 1
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
            if self._flush_counter is not None:
                self._flush_counter.inc()
                self._batch_hist.observe(float(len(batch)))
            for record, done, epoch in batch:
                if epoch != self.epoch:
                    continue  # fenced while in flight: never lands
                record.durable_at = self.kernel.now
                self.entries.append(record)
                self.stats.records += 1
                if self._record_counter is not None:
                    self._record_counter.inc()
                if self._tracer is not None:
                    self._trace_flush(record.payload, len(batch))
                done.trigger(record)
            self._inflight = []
            self._last_flush_end = self.kernel.now

    def payloads(self) -> List[Any]:
        """Durable payloads in append order (used by recovery)."""
        return [r.payload for r in self.entries]

    def truncate(self, keep_from: int) -> int:
        """Garbage-collect entries before index ``keep_from`` (§6: "the
        persistent log is periodically garbage collected")."""
        dropped = min(keep_from, len(self.entries))
        self.entries = self.entries[dropped:]
        return dropped
