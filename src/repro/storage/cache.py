"""In-memory object cache with cset-preferring eviction (paper §6).

"The entries in the in-memory cache are evicted on an LRU basis.  Since it
is expensive to reconstruct csets from the log, the eviction policy
prefers to evict regular objects rather than csets."

Implemented as two LRU queues (regular and cset); eviction drains the
regular queue first and touches csets only when no regular entry remains.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..core.objects import ObjectId, ObjectKind


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions_regular: int = 0
    evictions_cset: int = 0

    def inc(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RegistryCacheStats:
    """The :class:`CacheStats` attribute API backed by per-site counters
    in a :class:`repro.obs.MetricsRegistry` (``cache.<field>{site=s}``),
    so cache hit-rates show up in benchmark metric snapshots instead of
    staying siloed in the storage layer."""

    FIELDS = ("hits", "misses", "evictions_regular", "evictions_cset")

    __slots__ = ("_registry", "_site", "_handles")

    def __init__(self, registry, site: int):
        object.__setattr__(self, "_registry", registry)
        object.__setattr__(self, "_site", site)
        object.__setattr__(self, "_handles", {})

    def _counter(self, name: str):
        handle = self._handles.get(name)
        if handle is None:
            handle = self._handles[name] = self._registry.counter(
                "cache.%s" % name, site=self._site
            )
        return handle

    def inc(self, name: str, n: int = 1) -> None:
        """See :meth:`ServerStats.inc` -- one handle lookup per bump."""
        self._counter(name).inc(n)

    def __getattr__(self, name: str) -> int:
        if name in RegistryCacheStats.FIELDS:
            return self._counter(name).value
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        if name in RegistryCacheStats.FIELDS:
            self._counter(name).set(value)
        else:
            object.__setattr__(self, name, value)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ObjectCache:
    """LRU cache keyed by ObjectId, preferring to evict regular objects."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._regular: "OrderedDict[ObjectId, Any]" = OrderedDict()
        self._cset: "OrderedDict[ObjectId, Any]" = OrderedDict()
        self.stats = CacheStats()

    def bind_metrics(self, registry, site: int) -> None:
        """Mirror this cache's stats into registry counters; existing
        counts carry over.  Idempotent (a replacement server rebinding
        the same storage keeps the same counters)."""
        stats = RegistryCacheStats(registry, site)
        if not isinstance(self.stats, RegistryCacheStats):
            for field_name in RegistryCacheStats.FIELDS:
                stats._counter(field_name).inc(getattr(self.stats, field_name))
        self.stats = stats

    def __len__(self) -> int:
        return len(self._regular) + len(self._cset)

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._regular or oid in self._cset

    def _queue_for(self, oid: ObjectId) -> "OrderedDict[ObjectId, Any]":
        return self._cset if oid.kind is ObjectKind.CSET else self._regular

    def get(self, oid: ObjectId) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a hit refreshes LRU recency."""
        queue = self._queue_for(oid)
        if oid in queue:
            queue.move_to_end(oid)
            self.stats.inc("hits")
            return True, queue[oid]
        self.stats.inc("misses")
        return False, None

    def put(self, oid: ObjectId, value: Any) -> Optional[ObjectId]:
        """Insert/refresh; returns the evicted oid if any."""
        queue = self._queue_for(oid)
        if oid in queue:
            queue[oid] = value
            queue.move_to_end(oid)
            return None
        queue[oid] = value
        if len(self) <= self.capacity:
            return None
        return self._evict()

    def _evict(self) -> ObjectId:
        if self._regular:
            victim, _ = self._regular.popitem(last=False)
            self.stats.inc("evictions_regular")
        else:
            victim, _ = self._cset.popitem(last=False)
            self.stats.inc("evictions_cset")
        return victim

    def invalidate(self, oid: ObjectId) -> None:
        self._queue_for(oid).pop(oid, None)

    def clear(self) -> None:
        self._regular.clear()
        self._cset.clear()
