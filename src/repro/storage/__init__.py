"""Durable storage substrate: WAL with group commit, cache, checkpoints."""

from .cache import CacheStats, ObjectCache, RegistryCacheStats
from .checkpoint import Checkpoint, Checkpointer
from .cluster import DEFAULT_CACHE_CAPACITY, SiteStorage
from .disklog import (
    FLUSH_EC2,
    FLUSH_MEMORY,
    FLUSH_WRITE_CACHING_OFF,
    FLUSH_WRITE_CACHING_ON,
    DiskLog,
    DiskStats,
    LogRecord,
)

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_CAPACITY",
    "RegistryCacheStats",
    "Checkpoint",
    "Checkpointer",
    "DiskLog",
    "DiskStats",
    "FLUSH_EC2",
    "FLUSH_MEMORY",
    "FLUSH_WRITE_CACHING_OFF",
    "FLUSH_WRITE_CACHING_ON",
    "LogRecord",
    "ObjectCache",
    "SiteStorage",
]
