"""Replicated cluster storage stand-in (paper §4.4, §5.7).

"When a transaction commits at its site, writes have been logged to a
replicated cluster storage system, so writes are not lost due to power
failures" and "each server at a site stores its transaction log in a
replicated cluster storage system.  When a Walter server fails, the
replacement server resumes propagation for those committed transactions
that have not yet been fully propagated."

The paper's real system used GFS/Petal/FAB-style storage; the
reproduction models the property that matters -- durability independent of
the Walter server process.  A :class:`SiteStorage` lives in the
deployment, not in the server object, so a replacement server constructed
over the same SiteStorage recovers the previous server's durable state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..sim import Kernel
from .cache import ObjectCache
from .checkpoint import Checkpointer
from .disklog import DiskLog

#: Default in-memory object-cache capacity (paper §6 sizes the cache to
#: hold the working set; 50k matches the benchmarks' populated keyspace).
DEFAULT_CACHE_CAPACITY = 50_000


class SiteStorage:
    """The durable state of one site, surviving Walter-server restarts."""

    def __init__(
        self,
        kernel: Kernel,
        site: int,
        flush_latency: float,
        name: str = "",
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        flush_window: float = 0.0,
    ):
        self.kernel = kernel
        self.site = site
        self.log = DiskLog(
            kernel,
            flush_latency=flush_latency,
            name=name or ("disk-site%d" % site),
            flush_window=flush_window,
        )
        #: In-memory object cache with cset-preferring LRU eviction (§6).
        self.cache = ObjectCache(cache_capacity)
        self._checkpointer: Optional[Checkpointer] = None
        #: Small durable key-value area for server metadata (leases etc.).
        self.metadata: Dict[str, Any] = {}

    def bind_metrics(self, registry) -> None:
        """Expose this site's cache and WAL stats through the shared
        metrics registry (labelled ``site=<id>``)."""
        self.cache.bind_metrics(registry, self.site)
        self.log.bind_metrics(registry, self.site)

    def bind_tracer(self, tracer) -> None:
        """Attach the deployment tracer so the WAL can emit deep-mode
        ``wal.flush`` spans (no-op outside deep tracing)."""
        self.log.bind_tracer(tracer, self.site)

    def inject_flush_stall(self, duration: float) -> float:
        """Fault injection: stall WAL flushes for ``duration`` simulated
        seconds (see :meth:`DiskLog.inject_stall`)."""
        return self.log.inject_stall(duration)

    def fence(self) -> list:
        """Fence this storage before a replacement server takes over
        (§5.7): the old server's checkpointer stops (it died with the
        server process) and its not-yet-durable WAL writes are discarded.
        Returns the discarded payloads.  Already-taken checkpoints stay
        available for :meth:`recover`."""
        if self._checkpointer is not None:
            self._checkpointer.stop()
        return self.log.fence()

    def attach_checkpointer(
        self, state_fn: Callable[[], Any], interval: float = 30.0
    ) -> Checkpointer:
        """(Re)create the background checkpointer for the current server."""
        if self._checkpointer is not None:
            self._checkpointer.stop()
        self._checkpointer = Checkpointer(self.kernel, self.log, state_fn, interval)
        self._checkpointer.start()
        return self._checkpointer

    @property
    def checkpointer(self) -> Optional[Checkpointer]:
        return self._checkpointer

    def recover(self):
        """``(checkpoint_state, log_suffix)`` for a replacement server."""
        if self._checkpointer is not None:
            return self._checkpointer.recover()
        return None, self.log.payloads()
