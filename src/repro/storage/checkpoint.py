"""Background index checkpointing (paper §6).

"To speed up system startup and recovery, Walter periodically checkpoints
the index to persistent storage; the checkpoint also describes
transactions that are being replicated.  Checkpointing is done in the
background, so it does not block transaction processing.  When the server
starts, it reconstructs the index from the checkpointed state and the
data in the log after the checkpoint."

The checkpointer snapshots an application-provided state function every
``interval`` simulated seconds, together with the current log length, so
recovery replays only the log suffix.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..sim import Interrupt, Kernel
from .disklog import DiskLog


@dataclass
class Checkpoint:
    """A snapshot of the server index plus its log position."""

    taken_at: float
    log_position: int
    state: Any


class Checkpointer:
    """Periodically snapshots ``state_fn`` and tracks the log position."""

    def __init__(
        self,
        kernel: Kernel,
        log: DiskLog,
        state_fn: Callable[[], Any],
        interval: float = 30.0,
        write_latency: float = 0.010,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.kernel = kernel
        self.log = log
        self.state_fn = state_fn
        self.interval = interval
        self.write_latency = write_latency
        self.checkpoints: List[Checkpoint] = []
        self._proc = None

    def start(self) -> None:
        if self._proc is None or self._proc.done:
            self._proc = self.kernel.spawn(self._loop(), name="checkpointer")

    def stop(self) -> None:
        if self._proc is not None and not self._proc.done:
            self._proc.interrupt("stopped")

    def _loop(self):
        try:
            while True:
                yield self.kernel.timeout(self.interval)
                self.take_checkpoint_sync_start()
                # The write happens in the background; model its latency
                # without blocking the caller (we *are* the background).
                yield self.kernel.timeout(self.write_latency)
                self._finish_pending()
        except Interrupt:
            return

    def take_checkpoint_sync_start(self) -> None:
        self._pending = Checkpoint(
            taken_at=self.kernel.now,
            log_position=len(self.log.entries),
            state=copy.deepcopy(self.state_fn()),
        )

    def _finish_pending(self) -> None:
        self.checkpoints.append(self._pending)
        self._pending = None

    def latest(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    def recover(self):
        """Return ``(state, log_suffix)`` for server restart: the last
        checkpointed state plus the durable log records after it."""
        checkpoint = self.latest()
        if checkpoint is None:
            return None, self.log.payloads()
        return (
            copy.deepcopy(checkpoint.state),
            self.log.payloads()[checkpoint.log_position:],
        )
