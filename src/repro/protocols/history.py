"""Common observed-history format shared by every protocol backend.

A :class:`ProtocolHistory` is the black-box record of one run: for each
transaction, where it ran, when it began and finished, the reads it
observed (key and value), the writes it buffered, and its final status.
Each backend additionally stores its protocol-specific *witness* in
``TxRecord.meta`` -- commit timestamps for SI, consensus slots for the
strictly-serializable protocol, dependency vectors for NMSI -- which its
oracle verifies and which the lattice derivations translate into the
weaker levels' witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"
ERROR = "ERROR"

#: op tuples: ("read", key, observed_value) / ("write", key, value)
Op = Tuple[str, str, Any]


@dataclass
class TxRecord:
    """One transaction's externally observed behaviour."""

    tid: str
    site: int
    begin_time: float
    ops: List[Op] = field(default_factory=list)
    end_time: Optional[float] = None
    status: Optional[str] = None
    #: Protocol-specific witness (commit_ts, slot, depvec, ...).
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        return self.status == COMMITTED

    def reads(self) -> List[Tuple[str, Any]]:
        return [(key, value) for kind, key, value in self.ops if kind == "read"]

    def writes(self) -> Dict[str, Any]:
        """Final buffered value per written key (last write wins)."""
        out: Dict[str, Any] = {}
        for kind, key, value in self.ops:
            if kind == "write":
                out[key] = value
        return out

    def write_set(self) -> frozenset:
        return frozenset(k for kind, k, _v in self.ops if kind == "write")


@dataclass
class ProtocolHistory:
    """All transactions of one run, in begin order."""

    protocol: str
    n_sites: int
    transactions: List[TxRecord] = field(default_factory=list)

    def begin(self, tid: str, site: int, now: float) -> TxRecord:
        record = TxRecord(tid=tid, site=site, begin_time=now)
        self.transactions.append(record)
        return record

    def by_tid(self, tid: str) -> TxRecord:
        for record in self.transactions:
            if record.tid == tid:
                return record
        raise KeyError(tid)

    def committed(self) -> List[TxRecord]:
        return [t for t in self.transactions if t.committed]

    def finished(self) -> List[TxRecord]:
        return [t for t in self.transactions if t.status is not None]

    def outcome_tally(self) -> Dict[str, int]:
        tally: Dict[str, int] = {COMMITTED: 0, ABORTED: 0, ERROR: 0}
        for t in self.transactions:
            tally[t.status or ERROR] = tally.get(t.status or ERROR, 0) + 1
        return tally
