"""Non-Monotonic Snapshot Isolation on the simulated substrate.

NMSI (Ardekani et al., "Non-Monotonic Snapshot Isolation") keeps PSI's
two expensive guarantees -- no lost updates, consistent snapshots -- but
drops the *monotonic* site-ordered snapshot: instead of a startVTS
frozen from the site's committed frontier, every transaction carries a
**dependency vector** that grows from what it actually reads.  Two
transactions at the same site may hold incomparable snapshots, and a
version can be read as soon as it is applied, without waiting for the
site frontier to advance past it.

Implementation shape (one :class:`NMSIServer` per site, fully
replicated):

* every committed transaction becomes a version ``(site, seqno)`` whose
  ``depvec`` records, per site, the highest seqno it depends on;
* reads return the newest locally-applied version *compatible* with the
  transaction's dependency closure (rule: no already-read key may have a
  newer version inside the candidate's dependencies); an incompatible
  forced version dooms the transaction instead of returning an
  inconsistent snapshot;
* writes are buffered; commit runs a per-key-master vote: the master of
  each written key rejects lost updates (a read-modify-write must have
  read the key's latest version) and serializes conflicting writers with
  short-lived locks; blind writes adopt the overwritten version as a
  dependency so each key's versions form a dependency chain;
* replication pushes the committed record to every site with retries;
  application is gated on the dependency vector (per-origin seqno order
  plus all dependencies applied), never on a total site order.

Witness recorded per committed transaction: its version id, final
dependency vector, and the version each read observed -- verified by
:func:`repro.protocols.oracles.check_nmsi`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import TransactionStateError
from ..net import Host, RpcError
from ..server.state import ServerCosts
from ..sim import Interrupt, Resource
from ..storage import DiskLog
from .base import ProtocolBackend, ProtocolSession, key_site
from .history import ABORTED, COMMITTED, TxRecord
from .levels import NMSI

Ver = Tuple[int, int]  # (origin site, per-origin seqno)


def covers(depvec: Tuple[int, ...], ver: Ver) -> bool:
    """True iff the dependency vector includes ``ver``."""
    return depvec[ver[0]] >= ver[1]


def merge_dep(depvec: Tuple[int, ...], other: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(max(a, b) for a, b in zip(depvec, other))


def with_ver(depvec: Tuple[int, ...], ver: Ver) -> Tuple[int, ...]:
    if depvec[ver[0]] >= ver[1]:
        return depvec
    out = list(depvec)
    out[ver[0]] = ver[1]
    return tuple(out)


@dataclass
class VersionRec:
    ver: Ver
    value: Any
    depvec: Tuple[int, ...]
    writer: str


@dataclass
class NMSITx:
    tid: str
    depvec: Tuple[int, ...]
    read_vers: Dict[str, Optional[Ver]] = field(default_factory=dict)
    writes: Dict[str, Any] = field(default_factory=dict)
    doomed: bool = False
    status: str = "ACTIVE"


class NMSIServer(Host):
    """One site of the NMSI store: coordinator for local transactions,
    master for the keys it owns, replica of everything."""

    PUSH_RETRY_DELAY = 0.25
    PUSH_MAX_ATTEMPTS = 400

    def __init__(self, kernel, network, site_id: int, name: str, n_sites: int,
                 peers: Dict[int, str], costs: Optional[ServerCosts] = None,
                 flush_latency: float = 0.0):
        super().__init__(kernel, network, site_id, name)
        self.site_id = site_id
        self.n_sites = n_sites
        self.peers = dict(peers)
        self.costs = costs or ServerCosts()
        self.cpu = Resource(kernel, self.costs.cores, name="%s.cpu" % name)
        self.disk = DiskLog(kernel, flush_latency=flush_latency, name="%s.disk" % name)
        self.store: Dict[str, List[VersionRec]] = {}
        self.applied: List[int] = [0] * n_sites
        self._apply_queue: List[dict] = []
        self._seen_vers: set = set()
        self.locks: Dict[str, str] = {}
        self._txs: Dict[str, NMSITx] = {}
        self._seq = itertools.count(1)
        self._zero = tuple([0] * n_sites)

    # ------------------------------------------------------------------
    # Transaction lifecycle (client-facing)
    # ------------------------------------------------------------------
    def rpc_tx_begin(self, tid: str):
        yield from self.cpu.use(self.costs.read_op * 0.5)
        self._txs[tid] = NMSITx(tid=tid, depvec=self._zero)
        return "OK"

    def _tx(self, tid: str) -> NMSITx:
        tx = self._txs.get(tid)
        if tx is None or tx.status != "ACTIVE":
            raise TransactionStateError("unknown/finished tx %r" % (tid,))
        return tx

    def rpc_tx_read(self, tid: str, key: str):
        yield from self.cpu.use(self.costs.read_op)
        tx = self._tx(tid)
        if key in tx.writes:
            return tx.writes[key]
        if key in tx.read_vers:
            # Repeatable read: return the already-chosen version.
            ver = tx.read_vers[key]
            return None if ver is None else self._version(key, ver).value
        chosen = self._choose_version(tx, key)
        if chosen is _INCONSISTENT:
            # The forced version (already in the dependency closure)
            # conflicts with an earlier read: no consistent snapshot
            # extension exists.  Doom the transaction; the value returned
            # is never certified.
            tx.doomed = True
            chain = self.store.get(key, [])
            forced = chain[self._floor(tx, key)]
            tx.read_vers[key] = forced.ver
            return forced.value
        if chosen is None:
            tx.read_vers[key] = None
            return None
        tx.depvec = with_ver(merge_dep(tx.depvec, chosen.depvec), chosen.ver)
        tx.read_vers[key] = chosen.ver
        return chosen.value

    def rpc_tx_write(self, tid: str, key: str, value: Any):
        yield from self.cpu.use(self.costs.write_op)
        self._tx(tid).writes[key] = value
        return "OK"

    def rpc_tx_abort(self, tid: str):
        tx = self._txs.pop(tid, None)
        if tx is not None:
            tx.status = ABORTED
        return ABORTED

    def rpc_tx_commit(self, tid: str):
        yield from self.cpu.use(self.costs.commit_op)
        tx = self._tx(tid)
        if tx.doomed:
            tx.status = ABORTED
            self._txs.pop(tid, None)
            return {"status": ABORTED}
        if not tx.writes:
            tx.status = COMMITTED
            self._txs.pop(tid, None)
            return {
                "status": COMMITTED,
                "ver": None,
                "depvec": tx.depvec,
                "read_vers": dict(tx.read_vers),
            }
        by_master: Dict[int, List[str]] = {}
        for key in tx.writes:
            by_master.setdefault(key_site(key, self.n_sites), []).append(key)
        granted: List[int] = []
        ok = True
        merges: List[Tuple[Ver, Tuple[int, ...]]] = []
        for master, keys in sorted(by_master.items()):
            reply = yield from self._prepare_at(master, tid, keys, tx)
            if not reply.get("ok"):
                ok = False
                break
            granted.append(master)
            merges.extend(reply.get("merge", []))
        if not ok:
            for master in granted:
                self._release_at(master, tid)
            tx.status = ABORTED
            self._txs.pop(tid, None)
            return {"status": ABORTED}
        # Blind writes adopt the overwritten version (and its deps) so
        # every key's committed versions form a dependency chain.
        for ver, depvec in merges:
            tx.depvec = with_ver(merge_dep(tx.depvec, tuple(depvec)), tuple(ver))
        seq = next(self._seq)
        ver: Ver = (self.site_id, seq)
        record = {
            "ver": ver,
            "depvec": tx.depvec,
            "writes": dict(tx.writes),
            "tid": tid,
        }
        yield self.disk.append(("commit", tid))
        self._enqueue(record)
        for site, address in self.peers.items():
            if site != self.site_id:
                self.kernel.spawn(
                    self._push(address, "nmsi_apply", {"record": record}),
                    name="%s.push:%s:%d" % (self.address, tid, site),
                )
        tx.status = COMMITTED
        self._txs.pop(tid, None)
        return {
            "status": COMMITTED,
            "ver": ver,
            "depvec": tx.depvec,
            "read_vers": dict(tx.read_vers),
        }

    # ------------------------------------------------------------------
    # Snapshot reads
    # ------------------------------------------------------------------
    def _version(self, key: str, ver: Ver) -> VersionRec:
        for rec in self.store.get(key, []):
            if rec.ver == ver:
                return rec
        raise KeyError((key, ver))

    def _floor(self, tx: NMSITx, key: str) -> int:
        """Index of the newest version of ``key`` already inside the
        transaction's dependency closure, or -1."""
        chain = self.store.get(key, [])
        for i in range(len(chain) - 1, -1, -1):
            if covers(tx.depvec, chain[i].ver):
                return i
        return -1

    def _compatible(self, tx: NMSITx, candidate: VersionRec) -> bool:
        """May ``tx`` extend its snapshot with ``candidate``?  Not if the
        candidate's dependencies include a version of an already-read key
        newer than the one the transaction read."""
        for prev_key, read_ver in tx.read_vers.items():
            chain = self.store.get(prev_key, [])
            start = 0
            if read_ver is not None:
                for i, rec in enumerate(chain):
                    if rec.ver == read_ver:
                        start = i + 1
                        break
            for rec in chain[start:]:
                if covers(candidate.depvec, rec.ver):
                    return False
        return True

    def _choose_version(self, tx: NMSITx, key: str):
        chain = self.store.get(key, [])
        floor = self._floor(tx, key)
        for i in range(len(chain) - 1, max(floor, 0) - 1, -1):
            if self._compatible(tx, chain[i]):
                return chain[i]
        if floor >= 0:
            return _INCONSISTENT
        return None  # no version forced, none compatible/present: initial

    # ------------------------------------------------------------------
    # Per-key-master certification (lost updates, conflicting writers)
    # ------------------------------------------------------------------
    def _prepare_at(self, master: int, tid: str, keys: List[str], tx: NMSITx):
        # Only keys the transaction actually read appear in ``reads``; a
        # missing key is a blind write (no lost-update check, but the
        # master hands back the overwritten version to depend on).
        reads = {k: tx.read_vers[k] for k in keys if k in tx.read_vers}
        if master == self.site_id:
            return self._prepare_local(tid, keys, reads)
        try:
            reply = yield from self.call(
                self.peers[master], "nmsi_prepare",
                timeout=5.0, tid=tid, keys=keys, reads=reads,
            )
            return reply
        except RpcError:
            return {"ok": False}

    def rpc_nmsi_prepare(self, tid: str, keys: List[str], reads: Dict[str, Optional[Ver]]):
        yield from self.cpu.use(self.costs.commit_op)
        return self._prepare_local(tid, keys, reads)

    def _prepare_local(self, tid: str, keys: List[str], reads) -> dict:
        for key in keys:
            holder = self.locks.get(key)
            if holder is not None and holder != tid:
                return {"ok": False}
        merge = []
        for key in keys:
            chain = self.store.get(key, [])
            latest = chain[-1] if chain else None
            if key in reads:
                # Read-modify-write: the read must have seen the latest
                # committed version the master knows -- else lost update.
                read_ver = reads[key]
                latest_ver = latest.ver if latest is not None else None
                if latest_ver != (tuple(read_ver) if read_ver is not None else None):
                    return {"ok": False}
            elif latest is not None:
                merge.append((latest.ver, latest.depvec))
        for key in keys:
            self.locks[key] = tid
        return {"ok": True, "merge": merge}

    def _release_at(self, master: int, tid: str) -> None:
        if master == self.site_id:
            self._release_local(tid)
        else:
            self.kernel.spawn(
                self._push(self.peers[master], "nmsi_release", {"tid": tid}),
                name="%s.release:%s:%d" % (self.address, tid, master),
            )

    def rpc_nmsi_release(self, tid: str):
        self._release_local(tid)
        return "OK"

    def _release_local(self, tid: str) -> None:
        for key in [k for k, holder in self.locks.items() if holder == tid]:
            del self.locks[key]

    # ------------------------------------------------------------------
    # Replication: dependency-gated application
    # ------------------------------------------------------------------
    def rpc_nmsi_apply(self, record: dict):
        yield from self.cpu.use(self.costs.apply_remote)
        self._enqueue(record)
        return "ACK"

    def _enqueue(self, record: dict) -> None:
        ver = tuple(record["ver"])
        if ver in self._seen_vers or ver[1] <= self.applied[ver[0]]:
            return
        self._seen_vers.add(ver)
        self._apply_queue.append(record)
        self._drain()

    def _can_apply(self, record: dict) -> bool:
        origin, seq = record["ver"]
        if seq != self.applied[origin] + 1:
            return False
        depvec = record["depvec"]
        for site in range(self.n_sites):
            if site != origin and depvec[site] > self.applied[site]:
                return False
        return True

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            for record in list(self._apply_queue):
                if self._can_apply(record):
                    self._apply_queue.remove(record)
                    self._apply(record)
                    progress = True

    def _apply(self, record: dict) -> None:
        ver = tuple(record["ver"])
        depvec = tuple(record["depvec"])
        tid = record["tid"]
        for key, value in record["writes"].items():
            self.store.setdefault(key, []).append(
                VersionRec(ver=ver, value=value, depvec=depvec, writer=tid)
            )
            if self.locks.get(key) == tid:
                del self.locks[key]
        self.applied[ver[0]] = ver[1]
        self._seen_vers.discard(ver)

    def _push(self, address: str, method: str, args: dict):
        """Deliver one message reliably: retry through partitions/loss
        until acked (the protocol chaos harness heals before judging)."""
        try:
            for _attempt in range(self.PUSH_MAX_ATTEMPTS):
                try:
                    yield from self.call(address, method, timeout=2.0, **args)
                    return
                except RpcError:
                    yield self.kernel.timeout(self.PUSH_RETRY_DELAY)
        except Interrupt:
            return


class _Inconsistent:
    __slots__ = ()


_INCONSISTENT = _Inconsistent()


class NMSISession(ProtocolSession):
    def __init__(self, backend: "NMSIProtocol", site: int, name: str):
        super().__init__(backend, site, name)
        self._host = Host(backend.kernel, backend.network, site, name)
        self._host.start()
        self._server = backend.servers[site].address

    def _call(self, method: str, **args) -> Generator:
        result = yield from self._host.call(self._server, method, timeout=30.0, **args)
        return result

    def _do_begin(self, tid: str, record: TxRecord) -> Generator:
        yield from self._call("tx_begin", tid=tid)

    def _do_read(self, tid: str, key: str) -> Generator:
        value = yield from self._call("tx_read", tid=tid, key=key)
        return value

    def _do_write(self, tid: str, key: str, value: Any) -> Generator:
        yield from self._call("tx_write", tid=tid, key=key, value=value)

    def _do_commit(self, tid: str, record: TxRecord) -> Generator:
        reply = yield from self._call("tx_commit", tid=tid)
        if reply["status"] == COMMITTED:
            record.meta["ver"] = (
                tuple(reply["ver"]) if reply["ver"] is not None else None
            )
            record.meta["depvec"] = tuple(reply["depvec"])
            record.meta["read_vers"] = {
                k: (tuple(v) if v is not None else None)
                for k, v in reply["read_vers"].items()
            }
            return COMMITTED
        return ABORTED

    def _do_abort(self, tid: str, record: TxRecord) -> Generator:
        yield from self._call("tx_abort", tid=tid)


class NMSIProtocol(ProtocolBackend):
    name = "nmsi"
    isolation = NMSI

    def _build(self) -> None:
        addresses = {site: "nmsi-%d" % site for site in range(self.n_sites)}
        self.servers = [
            NMSIServer(
                self.kernel,
                self.network,
                site,
                addresses[site],
                n_sites=self.n_sites,
                peers=addresses,
                flush_latency=self.flush_latency,
            )
            for site in range(self.n_sites)
        ]
        for server in self.servers:
            server.start()

    def _make_session(self, site: int, name: str) -> NMSISession:
        return NMSISession(self, site, name)

    def check(self):
        from .oracles import check_nmsi

        return check_nmsi(self.history)
