"""Per-protocol oracles over :class:`ProtocolHistory`, plus the
inclusion-lattice re-checks.

Each oracle verifies a run against the *witness* its protocol recorded
(:attr:`TxRecord.meta`):

* :func:`check_si` -- primary-copy snapshot isolation: ``(start_ts,
  commit_ts)`` per transaction; reads must match the newest version at
  or below ``start_ts``, write-conflicting transactions must not be
  concurrent, commit timestamps are unique.
* :func:`check_nmsi` -- non-monotonic snapshot isolation: a version id
  and dependency vector per committed transaction plus the version each
  read observed; checks read values, snapshot consistency (no read's
  dependency closure contains a version of another read key newer than
  the one observed), and write-conflict freedom (conflicting committed
  transactions are dependency-ordered).
* :func:`check_psi_history` -- PSI at the witness level: NMSI's checks
  strengthened with a single per-transaction snapshot vector
  (``start_vts``) that every read must be *maximal* in -- the monotonic
  site-snapshot property that NMSI deliberately drops.  (Walter's own
  oracle remains :func:`repro.spec.checker.check_trace`; this
  witness-level variant exists so stronger protocols' histories can be
  re-checked as PSI.)
* :func:`check_consus` -- strict serializability: replays the Paxos log
  deterministically, re-deriving every outcome and read value, checks
  replica prefix agreement, and enforces the real-time bound (a
  transaction that committed before another began occupies a smaller
  slot).
* :func:`check_eventual` -- the lattice bottom: reads never fabricate
  values (every non-initial read observed some written value).

:func:`lattice_report` mechanically translates a protocol's witness into
every weaker level's witness (consensus slots become SI timestamps, SI
timestamps become a single-site dependency chain, Walter's
``startVTS``/``Version`` become dependency vectors) and re-runs the
weaker oracles: a history accepted at a level must be accepted at every
level below it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..spec.checker import Violation
from .history import COMMITTED, ProtocolHistory, TxRecord
from .levels import EVENTUAL, NMSI, PSI, SNAPSHOT_ISOLATION

Ver = Tuple[int, int]


def _covers(depvec: Tuple[int, ...], ver: Ver) -> bool:
    return depvec[ver[0]] >= ver[1]


# ----------------------------------------------------------------------
# Snapshot isolation (single commit order)
# ----------------------------------------------------------------------
def check_si(history: ProtocolHistory) -> List[Violation]:
    violations: List[Violation] = []
    committed = history.committed()
    writers: List[TxRecord] = []
    for tx in committed:
        if "start_ts" not in tx.meta or tx.meta.get("commit_ts") is None:
            violations.append(
                Violation("si-witness", "%s committed without timestamps" % tx.tid)
            )
            continue
        if tx.meta["commit_ts"] < tx.meta["start_ts"]:
            violations.append(
                Violation(
                    "si-witness",
                    "%s commit_ts %s < start_ts %s"
                    % (tx.tid, tx.meta["commit_ts"], tx.meta["start_ts"]),
                )
            )
        if tx.write_set():
            writers.append(tx)

    seen_cts: Dict[int, str] = {}
    for tx in writers:
        cts = tx.meta["commit_ts"]
        if cts in seen_cts:
            violations.append(
                Violation(
                    "si-unique-commit",
                    "commit_ts %s reused by %s and %s" % (cts, seen_cts[cts], tx.tid),
                )
            )
        seen_cts[cts] = tx.tid

    # key -> [(commit_ts, value, tid)] ascending.
    versions: Dict[str, List[Tuple[int, Any, str]]] = {}
    for tx in writers:
        for key, value in tx.writes().items():
            versions.setdefault(key, []).append((tx.meta["commit_ts"], value, tx.tid))
    for chain in versions.values():
        chain.sort(key=lambda entry: entry[0])

    def snapshot_value(key: str, ts: int) -> Any:
        value = None
        for commit_ts, v, _tid in versions.get(key, []):
            if commit_ts <= ts:
                value = v
            else:
                break
        return value

    for tx in committed:
        if "start_ts" not in tx.meta:
            continue
        start_ts = tx.meta["start_ts"]
        buffered: Dict[str, Any] = {}
        for kind, key, value in tx.ops:
            if kind == "write":
                buffered[key] = value
                continue
            expected = (
                buffered[key] if key in buffered else snapshot_value(key, start_ts)
            )
            if value != expected:
                violations.append(
                    Violation(
                        "si-snapshot-read",
                        "%s read %s=%r but snapshot@%s holds %r"
                        % (tx.tid, key, value, start_ts, expected),
                    )
                )

    for i, a in enumerate(writers):
        for b in writers[i + 1:]:
            if not (a.write_set() & b.write_set()):
                continue
            a_first = a.meta["commit_ts"] <= b.meta["start_ts"]
            b_first = b.meta["commit_ts"] <= a.meta["start_ts"]
            if not (a_first or b_first):
                violations.append(
                    Violation(
                        "si-write-conflict",
                        "%s and %s are concurrent and both wrote %s"
                        % (a.tid, b.tid, sorted(a.write_set() & b.write_set())),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# NMSI (dependency vectors)
# ----------------------------------------------------------------------
def _nmsi_version_table(
    history: ProtocolHistory, violations: List[Violation]
) -> Dict[Ver, TxRecord]:
    table: Dict[Ver, TxRecord] = {}
    for tx in history.committed():
        if not tx.write_set():
            continue
        ver = tx.meta.get("ver")
        if ver is None or tx.meta.get("depvec") is None:
            violations.append(
                Violation("nmsi-witness", "%s committed writes without ver/depvec" % tx.tid)
            )
            continue
        ver = tuple(ver)
        if ver in table:
            violations.append(
                Violation(
                    "nmsi-witness",
                    "version %r assigned to %s and %s" % (ver, table[ver].tid, tx.tid),
                )
            )
        table[ver] = tx
    return table


def check_nmsi(history: ProtocolHistory) -> List[Violation]:
    violations: List[Violation] = []
    table = _nmsi_version_table(history, violations)

    def newer_than(w: TxRecord, u: Optional[Ver]) -> bool:
        # Per-key versions form a dependency chain; w is newer than the
        # version u the transaction read iff u is in w's dependencies
        # (or the transaction read the initial state).
        if u is None:
            return True
        w_ver = tuple(w.meta["ver"])
        return w_ver != u and _covers(tuple(w.meta["depvec"]), u)

    for tx in history.committed():
        read_vers = tx.meta.get("read_vers")
        if read_vers is None:
            if tx.reads():
                violations.append(
                    Violation("nmsi-witness", "%s committed reads without read_vers" % tx.tid)
                )
            continue
        depvec = tuple(tx.meta["depvec"]) if tx.meta.get("depvec") is not None else None

        # Read values match the witnessed versions (own buffered writes win).
        buffered: Dict[str, Any] = {}
        for kind, key, value in tx.ops:
            if kind == "write":
                buffered[key] = value
                continue
            if key in buffered:
                expected = buffered[key]
            else:
                if key not in read_vers:
                    violations.append(
                        Violation(
                            "nmsi-witness", "%s read %s with no witnessed version" % (tx.tid, key)
                        )
                    )
                    continue
                ver = read_vers[key]
                if ver is None:
                    expected = None
                else:
                    writer = table.get(tuple(ver))
                    if writer is None:
                        violations.append(
                            Violation(
                                "nmsi-read-version",
                                "%s read %s at unknown version %r" % (tx.tid, key, ver),
                            )
                        )
                        continue
                    expected = writer.writes().get(key, _MISSING)
                    if expected is _MISSING:
                        violations.append(
                            Violation(
                                "nmsi-read-version",
                                "%s read %s at version %r which did not write it"
                                % (tx.tid, key, ver),
                            )
                        )
                        continue
                if depvec is not None and ver is not None and not _covers(depvec, tuple(ver)):
                    violations.append(
                        Violation(
                            "nmsi-read-forward",
                            "%s read %s at %r outside its dependency vector"
                            % (tx.tid, key, ver),
                        )
                    )
            if value != expected:
                violations.append(
                    Violation(
                        "nmsi-read-value",
                        "%s read %s=%r but witnessed version holds %r"
                        % (tx.tid, key, value, expected),
                    )
                )

        # Snapshot consistency: no read's dependency closure contains a
        # version of another read key newer than the one observed.
        items = list(read_vers.items())
        for key, u in items:
            u = tuple(u) if u is not None else None
            for other_key, u_prime in items:
                if other_key == key or u_prime is None:
                    continue
                u_prime = tuple(u_prime)
                anchor = table.get(u_prime)
                if anchor is None:
                    continue
                closure = tuple(anchor.meta["depvec"])
                for w_ver, w_tx in table.items():
                    if key not in w_tx.write_set():
                        continue
                    in_closure = w_ver == u_prime or _covers(closure, w_ver)
                    if in_closure and w_ver != u and newer_than(w_tx, u):
                        violations.append(
                            Violation(
                                "nmsi-snapshot-consistency",
                                "%s read %s at %r but its read of %s at %r depends on "
                                "newer version %r"
                                % (tx.tid, key, u, other_key, u_prime, w_ver),
                            )
                        )

    # Write-conflict freedom: conflicting committed transactions are
    # dependency-ordered.
    writers = list(table.values())
    for i, a in enumerate(writers):
        for b in writers[i + 1:]:
            overlap = a.write_set() & b.write_set()
            if not overlap:
                continue
            a_dep_b = _covers(tuple(b.meta["depvec"]), tuple(a.meta["ver"]))
            b_dep_a = _covers(tuple(a.meta["depvec"]), tuple(b.meta["ver"]))
            if not (a_dep_b or b_dep_a):
                violations.append(
                    Violation(
                        "nmsi-write-conflict",
                        "%s and %s are dependency-concurrent and both wrote %s"
                        % (a.tid, b.tid, sorted(overlap)),
                    )
                )
    return violations


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


# ----------------------------------------------------------------------
# PSI at the witness level (NMSI + monotonic snapshot vector)
# ----------------------------------------------------------------------
def check_psi_history(history: ProtocolHistory) -> List[Violation]:
    violations = check_nmsi(history)
    table = _nmsi_version_table(history, [])

    def chain_max(key: str, vts: Tuple[int, ...]) -> Optional[Ver]:
        best: Optional[Ver] = None
        for ver, tx in table.items():
            if key not in tx.write_set() or not _covers(vts, ver):
                continue
            if best is None or _covers(tuple(tx.meta["depvec"]), best):
                best = ver
        return best

    for tx in history.committed():
        read_vers = tx.meta.get("read_vers")
        start_vts = tx.meta.get("start_vts")
        if read_vers is None:
            continue
        if start_vts is None:
            if read_vers:
                violations.append(
                    Violation("psi-witness", "%s committed reads without start_vts" % tx.tid)
                )
            continue
        start_vts = tuple(start_vts)
        for key, ver in read_vers.items():
            ver = tuple(ver) if ver is not None else None
            expected = chain_max(key, start_vts)
            if ver != expected:
                violations.append(
                    Violation(
                        "psi-monotonic-snapshot",
                        "%s read %s at %r but its snapshot %r holds %r"
                        % (tx.tid, key, ver, start_vts, expected),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# Strict serializability (Consus)
# ----------------------------------------------------------------------
def check_consus(history: ProtocolHistory, backend) -> List[Violation]:
    from .consus import batched_commands, validate_and_apply

    violations: List[Violation] = []

    log = backend.chosen_log()
    merged = {slot: cmd for slot, cmd in log}
    for server in backend.servers:
        prefix = server.log_prefix()
        for slot, cmd in enumerate(prefix):
            if merged.get(slot) != cmd:
                violations.append(
                    Violation(
                        "consus-replica-agreement",
                        "%s applied %r at slot %d but the merged log holds %r"
                        % (server.address, cmd, slot, merged.get(slot)),
                    )
                )

    # Deterministic replay of the merged log: slots in order, each
    # slot's batched commands in list order, every command assigned a
    # global sequence number -- the serialization position the servers
    # report as the (historically named) ``slot`` witness.
    kv: Dict[str, Tuple[Any, int]] = {}
    outcomes: Dict[int, str] = {}
    pre_values: Dict[int, Dict[str, Any]] = {}
    seq_cmd: Dict[int, dict] = {}
    tid_slot: Dict[str, int] = {}
    seq = 0
    for _slot, cmd in log:
        for entry in batched_commands(cmd):
            read_keys = set(entry["reads"]) | set(entry["writes"])
            pre_values[seq] = {
                key: (kv[key][0] if key in kv else None) for key in read_keys
            }
            outcomes[seq] = validate_and_apply(kv, seq, entry)
            seq_cmd[seq] = entry
            tid_slot.setdefault(entry["tid"], seq)
            seq += 1

    for tx in history.committed():
        slot = tx.meta.get("slot")
        if slot is None:
            violations.append(
                Violation("consus-witness", "%s committed without a slot" % tx.tid)
            )
            continue
        cmd = seq_cmd.get(slot)
        if not isinstance(cmd, dict) or cmd.get("tid") != tx.tid:
            violations.append(
                Violation(
                    "consus-witness",
                    "%s claims seq %d but the log holds %r" % (tx.tid, slot, cmd),
                )
            )
            continue
        if outcomes.get(slot) != COMMITTED:
            violations.append(
                Violation(
                    "consus-outcome",
                    "%s reported COMMITTED but replay decides %s at seq %d"
                    % (tx.tid, outcomes.get(slot), slot),
                )
            )
            continue
        buffered: Dict[str, Any] = {}
        for kind, key, value in tx.ops:
            if kind == "write":
                buffered[key] = value
                continue
            expected = buffered[key] if key in buffered else pre_values[slot].get(key)
            if value != expected:
                violations.append(
                    Violation(
                        "consus-read-value",
                        "%s read %s=%r but the serial state at seq %d holds %r"
                        % (tx.tid, key, value, slot, expected),
                    )
                )

    # A transaction the client saw ABORT must not have committed in the log.
    for tx in history.finished():
        if tx.status != "ABORTED":
            continue
        slot = tid_slot.get(tx.tid)
        if slot is not None and outcomes.get(slot) == COMMITTED and tx.write_set():
            violations.append(
                Violation(
                    "consus-outcome",
                    "%s reported ABORTED but replay commits it at slot %d"
                    % (tx.tid, slot),
                )
            )

    # Real-time bound: commit before begin => smaller slot.
    committed = [t for t in history.committed() if t.meta.get("slot") is not None]
    for a in committed:
        for b in committed:
            if a is b or a.end_time is None:
                continue
            if a.end_time < b.begin_time and a.meta["slot"] > b.meta["slot"]:
                violations.append(
                    Violation(
                        "consus-real-time",
                        "%s finished before %s began but serializes after it "
                        "(slots %d > %d)"
                        % (a.tid, b.tid, a.meta["slot"], b.meta["slot"]),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# Eventual (lattice bottom): reads never fabricate values
# ----------------------------------------------------------------------
def check_eventual(history: ProtocolHistory) -> List[Violation]:
    violations: List[Violation] = []
    written: Dict[str, set] = {}
    for tx in history.transactions:
        for key, value in tx.writes().items():
            written.setdefault(key, set()).add(_freeze(value))
    for tx in history.committed():
        for key, value in tx.reads():
            if value is None:
                continue
            if _freeze(value) not in written.get(key, set()):
                violations.append(
                    Violation(
                        "eventual-no-fabrication",
                        "%s read %s=%r which nobody wrote" % (tx.tid, key, value),
                    )
                )
    return violations


def _freeze(value: Any):
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    if isinstance(value, list):
        return tuple(value)
    return value


# ----------------------------------------------------------------------
# Lattice derivations: translate a stronger witness into a weaker one
# ----------------------------------------------------------------------
def _clone_with_meta(
    history: ProtocolHistory, meta_of
) -> ProtocolHistory:
    derived = ProtocolHistory(protocol=history.protocol, n_sites=history.n_sites)
    for tx in history.transactions:
        clone = TxRecord(
            tid=tx.tid,
            site=tx.site,
            begin_time=tx.begin_time,
            ops=tx.ops,
            end_time=tx.end_time,
            status=tx.status,
            meta=meta_of(tx) if tx.committed else dict(tx.meta),
        )
        derived.transactions.append(clone)
    return derived


def derive_si_from_slots(history: ProtocolHistory) -> ProtocolHistory:
    """Consensus slots -> SI timestamps: a transaction serialized at slot
    ``s`` starts at ``2s+1`` and commits at ``2s+2``, so its snapshot
    contains exactly the writers of smaller slots."""

    def meta_of(tx: TxRecord) -> dict:
        slot = tx.meta.get("slot")
        if slot is None:
            return dict(tx.meta)
        return {"start_ts": 2 * slot + 1, "commit_ts": 2 * slot + 2}

    return _clone_with_meta(history, meta_of)


def derive_nmsi_from_si(history: ProtocolHistory) -> ProtocolHistory:
    """SI timestamps -> a single-site dependency chain: the i-th writer
    in commit order becomes version ``(0, i)`` depending on every earlier
    version; a reader's vector covers exactly its snapshot prefix."""
    n = history.n_sites
    writers = sorted(
        (tx for tx in history.committed() if tx.write_set() and "commit_ts" in tx.meta),
        key=lambda tx: tx.meta["commit_ts"],
    )
    rank_of: Dict[str, int] = {tx.tid: i + 1 for i, tx in enumerate(writers)}
    commit_ts_of_rank = [tx.meta["commit_ts"] for tx in writers]

    def vec(rank: int) -> Tuple[int, ...]:
        return tuple([rank] + [0] * (n - 1))

    def prefix_rank(ts: int) -> int:
        rank = 0
        for i, cts in enumerate(commit_ts_of_rank):
            if cts <= ts:
                rank = i + 1
            else:
                break
        return rank

    # key -> [(commit_ts, rank)] ascending, for read-version lookup.
    chains: Dict[str, List[Tuple[int, int]]] = {}
    for tx in writers:
        for key in tx.write_set():
            chains.setdefault(key, []).append(
                (tx.meta["commit_ts"], rank_of[tx.tid])
            )

    def meta_of(tx: TxRecord) -> dict:
        if "start_ts" not in tx.meta:
            return dict(tx.meta)
        start_ts = tx.meta["start_ts"]
        snap = prefix_rank(start_ts)
        read_vers: Dict[str, Optional[Ver]] = {}
        buffered = set()
        for kind, key, _value in tx.ops:
            if kind == "write":
                buffered.add(key)
                continue
            if key in buffered or key in read_vers:
                continue
            ver: Optional[Ver] = None
            for cts, rank in chains.get(key, []):
                if cts <= start_ts:
                    ver = (0, rank)
                else:
                    break
            read_vers[key] = ver
        rank = rank_of.get(tx.tid)
        meta: Dict[str, Any] = {
            "depvec": vec(max(snap, (rank - 1) if rank else 0)),
            "read_vers": read_vers,
            "start_vts": vec(snap),
            "ver": (0, rank) if rank is not None else None,
        }
        return meta

    return _clone_with_meta(history, meta_of)


def derive_nmsi_from_walter(backend) -> ProtocolHistory:
    """Walter's trace witness -> NMSI: the commit ``Version`` becomes the
    version id, ``startVTS`` the dependency vector, and each read's
    observed version is the newest version of the key visible to the
    snapshot (Walter's site-snapshot-read property)."""
    history = backend.history
    table: Dict[str, Tuple[Ver, Tuple[int, ...]]] = {}
    for tx in history.committed():
        version = tx.meta.get("version")
        start_vts = tx.meta.get("start_vts")
        if version is not None and tx.write_set():
            table[tx.tid] = ((version.site, version.seqno), tuple(start_vts))

    # key -> [(ver, depvec)] for committed writers of that key.
    chains: Dict[str, List[Tuple[Ver, Tuple[int, ...]]]] = {}
    for tx in history.committed():
        if tx.tid not in table:
            continue
        ver, depvec = table[tx.tid]
        for key in tx.write_set():
            chains.setdefault(key, []).append((ver, depvec))

    def newest_visible(key: str, vts: Tuple[int, ...]) -> Optional[Ver]:
        best: Optional[Tuple[Ver, Tuple[int, ...]]] = None
        for ver, depvec in chains.get(key, []):
            if not _covers(vts, ver):
                continue
            if best is None or _covers(depvec, best[0]):
                best = (ver, depvec)
        return best[0] if best is not None else None

    # Read-only committed transactions have no TracedTx entry (the trace
    # records update transactions); recover their snapshot from the read
    # trace, which stamps every observation with the reader's startVTS.
    read_vts: Dict[str, Tuple[int, ...]] = {}
    for read in backend.world.trace.reads:
        read_vts.setdefault(read.tid, tuple(read.start_vts))

    def meta_of(tx: TxRecord) -> dict:
        start_vts = tx.meta.get("start_vts")
        if start_vts is None and tx.tid in read_vts:
            start_vts = read_vts[tx.tid]
        if start_vts is None:
            return dict(tx.meta)
        vts = tuple(start_vts)
        entry = table.get(tx.tid)
        read_vers: Dict[str, Optional[Ver]] = {}
        buffered = set()
        for kind, key, _value in tx.ops:
            if kind == "write":
                buffered.add(key)
            elif key not in buffered and key not in read_vers:
                read_vers[key] = newest_visible(key, vts)
        depvec = vts
        if entry is not None:
            # The commit version extends the snapshot chain: fold the
            # origin-site seqno in so conflicting successors see it.
            ver = entry[0]
            depvec = tuple(
                max(v, ver[1] - 1) if i == ver[0] else v for i, v in enumerate(vts)
            )
        return {
            "ver": entry[0] if entry is not None else None,
            "depvec": depvec,
            "read_vers": read_vers,
        }

    return _clone_with_meta(history, meta_of)


def lattice_report(backend) -> Dict[str, List[Violation]]:
    """Re-check a protocol's history at every weaker level of the
    inclusion lattice, deriving each weaker witness mechanically."""
    history = backend.history
    report: Dict[str, List[Violation]] = {}
    if backend.name == "consus":
        as_si = derive_si_from_slots(history)
        report[SNAPSHOT_ISOLATION] = check_si(as_si)
        as_nmsi = derive_nmsi_from_si(as_si)
        report[PSI] = check_psi_history(as_nmsi)
        report[NMSI] = check_nmsi(as_nmsi)
    elif backend.name == "si":
        as_nmsi = derive_nmsi_from_si(history)
        report[PSI] = check_psi_history(as_nmsi)
        report[NMSI] = check_nmsi(as_nmsi)
    elif backend.name == "walter":
        report[NMSI] = check_nmsi(derive_nmsi_from_walter(backend))
    report[EVENTUAL] = check_eventual(history)
    return report


__all__ = [
    "check_consus",
    "check_eventual",
    "check_nmsi",
    "check_psi_history",
    "check_si",
    "derive_nmsi_from_si",
    "derive_nmsi_from_walter",
    "derive_si_from_slots",
    "lattice_report",
]
