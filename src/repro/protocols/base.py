"""The pluggable protocol interface.

Every protocol in the zoo -- Walter's PSI, the primary-copy SI baseline,
NMSI, and the Consus-flavored strictly-serializable commit -- plugs into
one substrate-facing contract:

* a :class:`ProtocolBackend` owns a simulation (kernel, topology,
  network, servers) and records a :class:`ProtocolHistory` of everything
  clients observed;
* a :class:`ProtocolSession` is a client bound to one site, exposing the
  common transactional surface as simulation generators:
  ``begin`` / ``read`` / ``write`` / ``commit`` / ``abort``;
* ``backend.check()`` runs the protocol's *own* oracle over the recorded
  history, and ``backend.lattice_report()`` re-checks the same history
  against every weaker level's oracle with a mechanically derived
  witness -- the inclusion-lattice conformance check.

Keys are plain strings.  Backends that spread data across sites (Walter,
NMSI) place each key deterministically with :func:`key_site`, so
identical workloads touch identical placements in every protocol.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Generator, List, Optional

from ..net import Network, Topology
from ..sim import Kernel, RandomStreams
from ..spec.checker import Violation
from .history import ABORTED, COMMITTED, ERROR, ProtocolHistory, TxRecord


def key_site(key: str, n_sites: int) -> int:
    """Deterministic home site for a key (stable across runs/processes)."""
    return zlib.crc32(key.encode()) % n_sites


class ProtocolSession:
    """One client of a protocol backend, bound to a site.

    Subclasses implement the ``_do_*`` generator hooks; the base class
    records the observed history so oracles see every protocol through
    the same lens.
    """

    def __init__(self, backend: "ProtocolBackend", site: int, name: str):
        self.backend = backend
        self.site = site
        self.name = name
        self._seq = 0
        self._records: Dict[str, TxRecord] = {}

    # -- the common transactional surface (all generators) -------------
    def begin(self) -> Generator:
        self._seq += 1
        tid = "%s-%d" % (self.name, self._seq)
        record = self.backend.history.begin(tid, self.site, self.backend.kernel.now)
        self._records[tid] = record
        yield from self._do_begin(tid, record)
        return tid

    def read(self, tid: str, key: str) -> Generator:
        value = yield from self._do_read(tid, key)
        self._records[tid].ops.append(("read", key, value))
        return value

    def write(self, tid: str, key: str, value: Any) -> Generator:
        yield from self._do_write(tid, key, value)
        self._records[tid].ops.append(("write", key, value))
        return None

    def commit(self, tid: str) -> Generator:
        record = self._records[tid]
        try:
            status = yield from self._do_commit(tid, record)
        except Exception:
            record.status = ERROR
            record.end_time = self.backend.kernel.now
            raise
        record.status = status
        record.end_time = self.backend.kernel.now
        return status

    def abort(self, tid: str) -> Generator:
        record = self._records[tid]
        yield from self._do_abort(tid, record)
        record.status = ABORTED
        record.end_time = self.backend.kernel.now
        return ABORTED

    # -- protocol hooks ------------------------------------------------
    def _do_begin(self, tid: str, record: TxRecord) -> Generator:
        return
        yield  # pragma: no cover

    def _do_read(self, tid: str, key: str) -> Generator:
        raise NotImplementedError

    def _do_write(self, tid: str, key: str, value: Any) -> Generator:
        raise NotImplementedError

    def _do_commit(self, tid: str, record: TxRecord) -> Generator:
        raise NotImplementedError

    def _do_abort(self, tid: str, record: TxRecord) -> Generator:
        raise NotImplementedError


class ProtocolBackend:
    """A running installation of one protocol over the sim substrate."""

    #: Registry name ("walter", "si", "nmsi", "consus").
    name: str = "abstract"
    #: Isolation level from :mod:`repro.protocols.levels`.
    isolation: str = "undefined"

    def __init__(
        self,
        n_sites: int = 3,
        seed: int = 0,
        jitter_frac: float = 0.0,
        flush_latency: float = 0.0,
        topology: Optional[Topology] = None,
    ):
        self.n_sites = n_sites
        self.seed = seed
        self.flush_latency = flush_latency
        self.history = ProtocolHistory(protocol=self.name, n_sites=n_sites)
        self._build_substrate(topology, jitter_frac)
        self._session_seq = 0
        self._build()

    # Subclasses that wrap a Deployment override this to reuse its
    # kernel/network instead of building fresh ones.
    def _build_substrate(self, topology: Optional[Topology], jitter_frac: float) -> None:
        self.kernel = Kernel()
        self.streams = RandomStreams(self.seed)
        self.topology = topology or Topology.ec2(self.n_sites)
        self.network = Network(
            self.kernel, self.topology, streams=self.streams, jitter_frac=jitter_frac
        )

    def _build(self) -> None:
        raise NotImplementedError

    # -- clients -------------------------------------------------------
    def session(self, site: int, name: Optional[str] = None) -> ProtocolSession:
        self._session_seq += 1
        name = name or "%s-s%d-c%d" % (self.name, site, self._session_seq)
        return self._make_session(site, name)

    def _make_session(self, site: int, name: str) -> ProtocolSession:
        raise NotImplementedError

    #: Sites a session may issue writes from (the SI baseline restricts
    #: writes to its primary).
    @property
    def writable_sites(self) -> List[int]:
        return list(range(self.n_sites))

    # -- running -------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        return self.kernel.run(until=until)

    def run_process(self, gen: Generator, within: float = 60.0):
        return self.kernel.run_process(gen, until=self.kernel.now + within)

    def settle(self, duration: float = 2.0) -> None:
        self.kernel.run(until=self.kernel.now + duration)

    # -- oracles -------------------------------------------------------
    def check(self) -> List[Violation]:
        """Model-check the recorded history against this protocol's own
        oracle; empty list means conformant."""
        raise NotImplementedError

    def lattice_report(self) -> Dict[str, List[Violation]]:
        """Check the same history against every weaker level's oracle,
        deriving each weaker witness from this protocol's own.  A
        non-empty entry is an inclusion-lattice violation: a history this
        protocol's oracle accepts must be acceptable at every weaker
        level."""
        from .oracles import lattice_report

        return lattice_report(self)

    # -- partitions/faults (used by the protocol chaos harness) --------
    def heal_all(self) -> None:
        self.network.heal_all()


__all__ = [
    "ABORTED",
    "COMMITTED",
    "ERROR",
    "ProtocolBackend",
    "ProtocolSession",
    "key_site",
]
