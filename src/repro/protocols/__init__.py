"""The protocol zoo: PSI (Walter), SI (primary-copy), NMSI, and a
Consus-style strictly-serializable commit, all on one sim substrate.

Every backend implements the :class:`~repro.protocols.base.ProtocolBackend`
/ :class:`~repro.protocols.base.ProtocolSession` contract, records a
:class:`~repro.protocols.history.ProtocolHistory`, checks itself with its
own oracle (``backend.check()``), and re-checks its history at every
weaker isolation level (``backend.lattice_report()``).
"""

from .base import ProtocolBackend, ProtocolSession, key_site
from .history import ABORTED, COMMITTED, ERROR, ProtocolHistory, TxRecord
from .levels import (
    ALL_LEVELS,
    EVENTUAL,
    FIG8_LEVELS,
    LATTICE_CHAIN,
    NMSI,
    PSI,
    SERIALIZABILITY,
    SNAPSHOT_ISOLATION,
    STRICT_SERIALIZABILITY,
    WEAKER_THAN,
    weaker_levels,
)
# The registry pulls in every backend (and through Walter the whole
# deployment stack), while the spec layer needs only the constants above;
# load it lazily so ``repro.spec.anomalies -> repro.protocols.levels``
# does not cycle back through ``repro.deployment``.
_REGISTRY_EXPORTS = ("PROTOCOLS", "PROTOCOL_NAMES", "build", "get_protocol")


def __getattr__(name):
    if name in _REGISTRY_EXPORTS:
        from . import registry

        return getattr(registry, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

__all__ = [
    "ABORTED",
    "ALL_LEVELS",
    "COMMITTED",
    "ERROR",
    "EVENTUAL",
    "FIG8_LEVELS",
    "LATTICE_CHAIN",
    "NMSI",
    "PROTOCOLS",
    "PROTOCOL_NAMES",
    "PSI",
    "ProtocolBackend",
    "ProtocolHistory",
    "ProtocolSession",
    "SERIALIZABILITY",
    "SNAPSHOT_ISOLATION",
    "STRICT_SERIALIZABILITY",
    "TxRecord",
    "WEAKER_THAN",
    "build",
    "get_protocol",
    "key_site",
    "weaker_levels",
]
