"""Consus-flavored strictly serializable commit on the sim substrate.

One total order for everything: every transaction's outcome is decided
by running its read/write summary through multi-decree Paxos (reusing
:class:`repro.config_service.paxos.PaxosNode`) and validating it
deterministically at slot-application time on every replica.  This is
the "commit = consensus on the transaction itself" shape of
Consus/Calvin-style geo-replicated commit, the strict end of the zoo's
isolation lattice:

* clients execute optimistically against their site's replica -- reads
  record the **last-writer sequence number** of each key they observe;
* commit enqueues ``{tid, reads, writes}`` at its site's coordinator,
  which **batches every command that accumulates while a proposal is in
  flight into the next Paxos slot** (one consensus round amortized over
  the whole batch -- the Consus/Calvin trick that keeps the ordering
  layer off the commit critical path under load);
* ``apply_fn`` walks each slot's batch in list order and assigns every
  command a global *sequence number*; validation is deterministic and
  identical on every replica: the transaction commits iff every key it
  read still has the observed last-writer seq (no intervening writer
  was serialized before it);
* the sequence order (slot-major, batch-position-minor) is the
  serialization order, and Paxos's choose-once/adopt semantics
  guarantee a transaction that committed in real time before another
  began occupies a smaller seq -- which is what upgrades serializable
  to *strictly* serializable.

Read-only transactions also go through consensus: their reads are
certified at a seq, so they observe a state consistent with the
real-time commit order (no stale local reads).

Witness per committed transaction: its seq (``meta["slot"]``, kept
under the historical key) plus the per-key last-writer seqs it read.
The oracle (:func:`repro.protocols.oracles.check_consus`) replays the
replicated log deterministically, batch entries in order, and
re-derives every outcome and read value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..config_service.paxos import PaxosNode, ProposalFailed
from ..net import Host
from .base import ProtocolBackend, ProtocolSession
from .history import ABORTED, COMMITTED, TxRecord
from .levels import STRICT_SERIALIZABILITY


#: Internal outcome marker for commands whose batch never got chosen.
_PROPOSAL_FAILED = object()


@dataclass
class ConsusTx:
    tid: str
    #: key -> last-writer seq observed (None: read initial state).
    reads: Dict[str, Optional[int]] = field(default_factory=dict)
    #: key -> value observed at that slot (repeatable within the tx).
    read_values: Dict[str, Any] = field(default_factory=dict)
    writes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ACTIVE"


def validate_and_apply(kv: Dict[str, Tuple[Any, int]], seq: int, cmd: dict) -> str:
    """The deterministic state-machine transition shared by every
    replica (and by the oracle's replay): commit iff every read key's
    last-writer seq is unchanged, then install writes stamped ``seq``."""
    for key, seen_seq in cmd["reads"].items():
        current = kv.get(key)
        current_seq = current[1] if current is not None else None
        if current_seq != seen_seq:
            return ABORTED
    for key, value in cmd["writes"].items():
        kv[key] = (value, seq)
    return COMMITTED


def batched_commands(cmd: Any) -> List[dict]:
    """The transaction commands carried by one log entry: a batch's
    members in list order, a bare command as a singleton, anything else
    (e.g. a no-op filler) as none."""
    if isinstance(cmd, dict):
        if "batch" in cmd:
            return list(cmd["batch"])
        if "reads" in cmd and "writes" in cmd:
            return [cmd]
    return []


class ConsusServer(PaxosNode):
    """One site's replica: Paxos node + KV state machine + transaction
    coordinator for local clients."""

    #: Commit is a consensus round; give contended proposals more room
    #: than the config service needs before surfacing ProposalFailed --
    #: especially since a failed proposal now fails a whole batch.
    MAX_ATTEMPTS = 80

    def __init__(self, kernel, network, site, name, index, peers):
        super().__init__(
            kernel, network, site, name, index, peers, apply_fn=self._apply_cmd
        )
        #: key -> (value, last-writer seq), advanced only in seq order.
        self.kv: Dict[str, Tuple[Any, int]] = {}
        #: seq -> COMMITTED/ABORTED, the deterministic outcome.
        self.decided: Dict[int, str] = {}
        #: Commands applied so far = the next command's seq.
        self.applied_seq = 0
        #: tid -> (status, seq) once its command has been applied.
        self._outcomes: Dict[str, Tuple[str, int]] = {}
        self._txs: Dict[str, ConsusTx] = {}
        self._waiters: List = []
        #: Commands from local commits waiting for the next proposal.
        self._commit_queue: List[dict] = []
        self._batch_kick = None

    def start(self) -> None:
        super().start()
        self.kernel.spawn(self._batch_loop(), name="%s.batcher" % self.address)

    # -- state machine -------------------------------------------------
    def _apply_cmd(self, slot: int, cmd: Any) -> None:
        for entry in batched_commands(cmd):
            seq = self.applied_seq
            self.applied_seq += 1
            status = validate_and_apply(self.kv, seq, entry)
            self.decided[seq] = status
            self._outcomes[entry["tid"]] = (status, seq)
        for event in self._waiters:
            event.trigger_once()
        self._waiters = []

    def _wait_applied(self, slot: int) -> Generator:
        while self.applied_upto <= slot:
            event = self.kernel.event(name="%s.wait:%d" % (self.address, slot))
            self._waiters.append(event)
            yield event

    # -- transaction coordinator ---------------------------------------
    def rpc_tx_begin(self, tid: str):
        self._txs[tid] = ConsusTx(tid=tid)
        return "OK"

    def rpc_tx_read(self, tid: str, key: str):
        tx = self._txs[tid]
        if key in tx.writes:
            return tx.writes[key]
        if key in tx.reads:
            # Repeatable read: the witness pins (seq, value) at first
            # observation; validation aborts the tx if the seq moved.
            return tx.read_values[key]
        current = self.kv.get(key)
        if current is None:
            tx.reads[key] = None
            tx.read_values[key] = None
            return None
        value, writer_seq = current
        tx.reads[key] = writer_seq
        tx.read_values[key] = value
        return value

    def rpc_tx_write(self, tid: str, key: str, value: Any):
        self._txs[tid].writes[key] = value
        return "OK"

    def rpc_tx_abort(self, tid: str):
        tx = self._txs.pop(tid, None)
        if tx is not None:
            tx.status = ABORTED
        return ABORTED

    def rpc_tx_commit(self, tid: str):
        tx = self._txs.pop(tid)
        cmd = {"tid": tid, "reads": dict(tx.reads), "writes": dict(tx.writes)}
        self._commit_queue.append(cmd)
        if self._batch_kick is not None:
            self._batch_kick.trigger_once()
        while tid not in self._outcomes:
            event = self.kernel.event(name="%s.commit:%s" % (self.address, tid))
            self._waiters.append(event)
            yield event
        status, seq = self._outcomes.pop(tid)
        if status is _PROPOSAL_FAILED:
            raise ProposalFailed(
                "%s could not get %s's batch chosen" % (self.address, tid)
            )
        tx.status = status
        return {"status": status, "slot": seq}

    # -- batcher --------------------------------------------------------
    def _batch_loop(self) -> Generator:
        """One proposal in flight per site: every command that arrives
        while the previous consensus round runs rides the next slot as a
        single batch, so consensus cost is amortized across concurrent
        local commits instead of paid per transaction."""
        while True:
            while not self._commit_queue:
                self._batch_kick = self.kernel.event(
                    name="%s.batch-kick" % self.address
                )
                yield self._batch_kick
                self._batch_kick = None
            batch = list(self._commit_queue)
            del self._commit_queue[:]
            proposal = {"batch": batch} if len(batch) > 1 else batch[0]
            try:
                slot = yield from self.propose(proposal)
                yield from self._wait_applied(slot)
            except ProposalFailed:
                # Surface the failure to every commit riding this batch
                # (the client sees the same ProposalFailed the unbatched
                # path used to raise).
                for entry in batch:
                    self._outcomes.setdefault(entry["tid"], (_PROPOSAL_FAILED, -1))
                for event in self._waiters:
                    event.trigger_once()
                self._waiters = []


class ConsusSession(ProtocolSession):
    def __init__(self, backend: "ConsusProtocol", site: int, name: str):
        super().__init__(backend, site, name)
        self._host = Host(backend.kernel, backend.network, site, name)
        self._host.start()
        self._server = backend.servers[site].address

    def _call(self, method: str, **args) -> Generator:
        result = yield from self._host.call(self._server, method, timeout=60.0, **args)
        return result

    def _do_begin(self, tid: str, record: TxRecord) -> Generator:
        yield from self._call("tx_begin", tid=tid)

    def _do_read(self, tid: str, key: str) -> Generator:
        value = yield from self._call("tx_read", tid=tid, key=key)
        return value

    def _do_write(self, tid: str, key: str, value: Any) -> Generator:
        yield from self._call("tx_write", tid=tid, key=key, value=value)

    def _do_commit(self, tid: str, record: TxRecord) -> Generator:
        reply = yield from self._call("tx_commit", tid=tid)
        if reply["status"] == COMMITTED:
            record.meta["slot"] = reply["slot"]
            return COMMITTED
        return ABORTED

    def _do_abort(self, tid: str, record: TxRecord) -> Generator:
        yield from self._call("tx_abort", tid=tid)


class ConsusProtocol(ProtocolBackend):
    name = "consus"
    isolation = STRICT_SERIALIZABILITY

    def _build(self) -> None:
        names = ["consus-%d" % site for site in range(self.n_sites)]
        self.servers = [
            ConsusServer(
                self.kernel, self.network, site, names[site], index=site, peers=names
            )
            for site in range(self.n_sites)
        ]
        for server in self.servers:
            server.start()

    def _make_session(self, site: int, name: str) -> ConsusSession:
        return ConsusSession(self, site, name)

    def chosen_log(self) -> List[Tuple[int, Any]]:
        """The union of every replica's chosen commands, slot-ordered.
        (Replicas converge; the oracle additionally checks prefix
        agreement.)"""
        merged: Dict[int, Any] = {}
        for server in self.servers:
            for slot in range(server.applied_upto):
                merged.setdefault(slot, server.log_prefix()[slot])
        return sorted(merged.items())

    def check(self):
        from .oracles import check_consus

        return check_consus(self.history, self)


__all__ = ["ConsusProtocol", "ConsusServer", "ConsusSession", "ProposalFailed",
           "batched_commands", "validate_and_apply"]
