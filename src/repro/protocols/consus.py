"""Consus-flavored strictly serializable commit on the sim substrate.

One total order for everything: every transaction's outcome is decided
by running its read/write summary through multi-decree Paxos (reusing
:class:`repro.config_service.paxos.PaxosNode`) and validating it
deterministically at slot-application time on every replica.  This is
the "commit = consensus on the transaction itself" shape of
Consus/Calvin-style geo-replicated commit, the strict end of the zoo's
isolation lattice:

* clients execute optimistically against their site's replica -- reads
  record the **last-writer slot** of each key they observe;
* commit proposes ``{tid, reads, writes}``; Paxos assigns it a slot;
* ``apply_fn`` validates at the slot, identically on every replica: the
  transaction commits iff every key it read still has the observed
  last-writer slot (no intervening writer was serialized before it);
* the slot order is the serialization order, and Paxos's
  choose-once/adopt semantics guarantee a transaction that committed in
  real time before another began occupies a smaller slot -- which is
  what upgrades serializable to *strictly* serializable.

Read-only transactions also go through consensus: their reads are
certified at a slot, so they observe a state consistent with the
real-time commit order (no stale local reads).

Witness per committed transaction: its slot plus the per-key last-writer
slots it read.  The oracle (:func:`repro.protocols.oracles.check_consus`)
replays the replicated log deterministically and re-derives every
outcome and read value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..config_service.paxos import PaxosNode, ProposalFailed
from ..net import Host
from .base import ProtocolBackend, ProtocolSession
from .history import ABORTED, COMMITTED, TxRecord
from .levels import STRICT_SERIALIZABILITY


@dataclass
class ConsusTx:
    tid: str
    #: key -> last-writer slot observed (None: read initial state).
    reads: Dict[str, Optional[int]] = field(default_factory=dict)
    #: key -> value observed at that slot (repeatable within the tx).
    read_values: Dict[str, Any] = field(default_factory=dict)
    writes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ACTIVE"


def validate_and_apply(kv: Dict[str, Tuple[Any, int]], slot: int, cmd: dict) -> str:
    """The deterministic state-machine transition shared by every
    replica (and by the oracle's replay): commit iff every read key's
    last-writer slot is unchanged, then install writes stamped ``slot``."""
    for key, seen_slot in cmd["reads"].items():
        current = kv.get(key)
        current_slot = current[1] if current is not None else None
        if current_slot != seen_slot:
            return ABORTED
    for key, value in cmd["writes"].items():
        kv[key] = (value, slot)
    return COMMITTED


class ConsusServer(PaxosNode):
    """One site's replica: Paxos node + KV state machine + transaction
    coordinator for local clients."""

    #: Commit is a consensus round; give contended proposals more room
    #: than the config service needs before surfacing ProposalFailed.
    MAX_ATTEMPTS = 40

    def __init__(self, kernel, network, site, name, index, peers):
        super().__init__(
            kernel, network, site, name, index, peers, apply_fn=self._apply_cmd
        )
        #: key -> (value, last-writer slot), advanced only in slot order.
        self.kv: Dict[str, Tuple[Any, int]] = {}
        #: slot -> COMMITTED/ABORTED, the deterministic outcome.
        self.decided: Dict[int, str] = {}
        self._txs: Dict[str, ConsusTx] = {}
        self._waiters: List = []

    # -- state machine -------------------------------------------------
    def _apply_cmd(self, slot: int, cmd: Any) -> None:
        if isinstance(cmd, dict) and "reads" in cmd and "writes" in cmd:
            self.decided[slot] = validate_and_apply(self.kv, slot, cmd)
        for event in self._waiters:
            event.trigger_once()
        self._waiters = []

    def _wait_applied(self, slot: int) -> Generator:
        while self.applied_upto <= slot:
            event = self.kernel.event(name="%s.wait:%d" % (self.address, slot))
            self._waiters.append(event)
            yield event

    # -- transaction coordinator ---------------------------------------
    def rpc_tx_begin(self, tid: str):
        self._txs[tid] = ConsusTx(tid=tid)
        return "OK"

    def rpc_tx_read(self, tid: str, key: str):
        tx = self._txs[tid]
        if key in tx.writes:
            return tx.writes[key]
        if key in tx.reads:
            # Repeatable read: the witness pins (slot, value) at first
            # observation; validation aborts the tx if the slot moved.
            return tx.read_values[key]
        current = self.kv.get(key)
        if current is None:
            tx.reads[key] = None
            tx.read_values[key] = None
            return None
        value, writer_slot = current
        tx.reads[key] = writer_slot
        tx.read_values[key] = value
        return value

    def rpc_tx_write(self, tid: str, key: str, value: Any):
        self._txs[tid].writes[key] = value
        return "OK"

    def rpc_tx_abort(self, tid: str):
        tx = self._txs.pop(tid, None)
        if tx is not None:
            tx.status = ABORTED
        return ABORTED

    def rpc_tx_commit(self, tid: str):
        tx = self._txs.pop(tid)
        cmd = {"tid": tid, "reads": dict(tx.reads), "writes": dict(tx.writes)}
        slot = yield from self.propose(cmd)
        yield from self._wait_applied(slot)
        status = self.decided.get(slot, ABORTED)
        tx.status = status
        return {"status": status, "slot": slot}


class ConsusSession(ProtocolSession):
    def __init__(self, backend: "ConsusProtocol", site: int, name: str):
        super().__init__(backend, site, name)
        self._host = Host(backend.kernel, backend.network, site, name)
        self._host.start()
        self._server = backend.servers[site].address

    def _call(self, method: str, **args) -> Generator:
        result = yield from self._host.call(self._server, method, timeout=60.0, **args)
        return result

    def _do_begin(self, tid: str, record: TxRecord) -> Generator:
        yield from self._call("tx_begin", tid=tid)

    def _do_read(self, tid: str, key: str) -> Generator:
        value = yield from self._call("tx_read", tid=tid, key=key)
        return value

    def _do_write(self, tid: str, key: str, value: Any) -> Generator:
        yield from self._call("tx_write", tid=tid, key=key, value=value)

    def _do_commit(self, tid: str, record: TxRecord) -> Generator:
        reply = yield from self._call("tx_commit", tid=tid)
        if reply["status"] == COMMITTED:
            record.meta["slot"] = reply["slot"]
            return COMMITTED
        return ABORTED

    def _do_abort(self, tid: str, record: TxRecord) -> Generator:
        yield from self._call("tx_abort", tid=tid)


class ConsusProtocol(ProtocolBackend):
    name = "consus"
    isolation = STRICT_SERIALIZABILITY

    def _build(self) -> None:
        names = ["consus-%d" % site for site in range(self.n_sites)]
        self.servers = [
            ConsusServer(
                self.kernel, self.network, site, names[site], index=site, peers=names
            )
            for site in range(self.n_sites)
        ]
        for server in self.servers:
            server.start()

    def _make_session(self, site: int, name: str) -> ConsusSession:
        return ConsusSession(self, site, name)

    def chosen_log(self) -> List[Tuple[int, Any]]:
        """The union of every replica's chosen commands, slot-ordered.
        (Replicas converge; the oracle additionally checks prefix
        agreement.)"""
        merged: Dict[int, Any] = {}
        for server in self.servers:
            for slot in range(server.applied_upto):
                merged.setdefault(slot, server.log_prefix()[slot])
        return sorted(merged.items())

    def check(self):
        from .oracles import check_consus

        return check_consus(self.history, self)


__all__ = ["ConsusProtocol", "ConsusServer", "ConsusSession", "ProposalFailed",
           "validate_and_apply"]
