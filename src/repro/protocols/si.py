"""Snapshot-isolation protocol: the primary-copy BDB baseline, plugged
into the protocol-zoo interface.

One :class:`~repro.baselines.bdb.BDBServer` primary (site 0) executes
every transaction under SI; the other sites host read-only replicas fed
by asynchronous log shipping (paper §8.2).  Sessions at non-primary
sites pay the WAN round trip to the primary on every transactional
operation -- exactly the latency cost Walter's PSI was designed to
avoid, which is what the zoo benchmark measures.

Witness recorded per transaction: the primary's ``(start_ts,
commit_ts)`` pair, verified by :func:`repro.protocols.oracles.check_si`.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..baselines.bdb import BDBServer
from ..server.state import ServerCosts
from .base import ProtocolBackend, ProtocolSession
from .history import ABORTED, COMMITTED, TxRecord
from .levels import SNAPSHOT_ISOLATION


class SISession(ProtocolSession):
    def __init__(self, backend: "SIProtocol", site: int, name: str):
        super().__init__(backend, site, name)
        from ..net import Host

        self._host = Host(backend.kernel, backend.network, site, name)
        self._host.start()
        self._primary = backend.primary.address

    def _call(self, method: str, **args) -> Generator:
        result = yield from self._host.call(self._primary, method, timeout=30.0, **args)
        return result

    def _do_begin(self, tid: str, record: TxRecord) -> Generator:
        start_ts = yield from self._call("tx_begin", tid=tid)
        record.meta["start_ts"] = start_ts

    def _do_read(self, tid: str, key: str) -> Generator:
        value = yield from self._call("tx_get", tid=tid, key=key)
        return value

    def _do_write(self, tid: str, key: str, value: Any) -> Generator:
        yield from self._call("tx_put", tid=tid, key=key, value=value)

    def _do_commit(self, tid: str, record: TxRecord) -> Generator:
        status = yield from self._call("tx_commit", tid=tid)
        timestamps = self.backend.primary.tx_timestamps.get(tid)
        if timestamps is not None:
            record.meta["start_ts"], record.meta["commit_ts"] = timestamps
        return COMMITTED if status == COMMITTED else ABORTED

    def _do_abort(self, tid: str, record: TxRecord) -> Generator:
        yield from self._call("tx_abort", tid=tid)


class SIProtocol(ProtocolBackend):
    name = "si"
    isolation = SNAPSHOT_ISOLATION

    def _build(self) -> None:
        replica_names = ["si-replica-%d" % s for s in range(1, self.n_sites)]
        self.primary = BDBServer(
            self.kernel,
            self.network,
            0,
            "si-primary",
            costs=ServerCosts(),
            role="primary",
            replicas=replica_names,
            flush_latency=self.flush_latency,
        )
        self.replicas = [
            BDBServer(
                self.kernel,
                self.network,
                site,
                "si-replica-%d" % site,
                costs=ServerCosts(),
                role="replica",
                flush_latency=self.flush_latency,
            )
            for site in range(1, self.n_sites)
        ]
        for replica in self.replicas:
            replica.start()
        self.primary.start()

    def _make_session(self, site: int, name: str) -> SISession:
        return SISession(self, site, name)

    @property
    def writable_sites(self) -> List[int]:
        # Primary-copy: every transaction executes at the primary; the
        # zoo still places *clients* at every site so the latency cost
        # of centralization is measured, not hidden.
        return [0]

    def check(self):
        from .oracles import check_si

        return check_si(self.history)
