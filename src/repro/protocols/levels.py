"""The isolation-level registry: one ordered list of consistency levels.

This is the single source of truth shared by the anomaly table
(:mod:`repro.spec.anomalies`), the Fig 8 benchmark, the acceptance
checkers (:mod:`repro.spec.acceptance`), and the protocol registry
(:mod:`repro.protocols.registry`).  Adding a protocol level here is the
only way to add a column anywhere -- the table headers, the oracles, and
the lattice tests all derive from these constants, so they cannot
desynchronize.

Levels are ordered strongest-first.  ``WEAKER_THAN`` encodes the
*acceptance lattice*: an edge ``a -> b`` means every history acceptable
under ``a`` is acceptable under ``b``.  The main chain is

    strict serializability => (strong) SI => PSI => NMSI => eventual

plus ``strict serializability => serializability => eventual``.  Plain
(timing-blind) serializability and the operational snapshot levels are
incomparable: serializability permits arbitrarily stale reads (any serial
order explains them) while the paper's SI/PSI specifications bind
snapshots to real start events; conversely SI permits write skew, which
serializability forbids.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

STRICT_SERIALIZABILITY = "strict_serializability"
SERIALIZABILITY = "serializability"
SNAPSHOT_ISOLATION = "snapshot_isolation"
PSI = "psi"
NMSI = "nmsi"
EVENTUAL = "eventual"

#: The paper's Fig 8 columns, in printed order (kept for compatibility).
FIG8_LEVELS: List[str] = [SERIALIZABILITY, SNAPSHOT_ISOLATION, PSI, EVENTUAL]

#: Every level the repo can check, strongest first.
ALL_LEVELS: List[str] = [
    STRICT_SERIALIZABILITY,
    SERIALIZABILITY,
    SNAPSHOT_ISOLATION,
    PSI,
    NMSI,
    EVENTUAL,
]

#: Acceptance-lattice edges: ``(stronger, weaker)`` -- any history the
#: stronger level accepts, the weaker level accepts too.
WEAKER_THAN: List[Tuple[str, str]] = [
    (STRICT_SERIALIZABILITY, SERIALIZABILITY),
    (STRICT_SERIALIZABILITY, SNAPSHOT_ISOLATION),
    (SERIALIZABILITY, EVENTUAL),
    (SNAPSHOT_ISOLATION, PSI),
    (PSI, NMSI),
    (NMSI, EVENTUAL),
]

#: The chain the conformance suite checks on real protocol runs.
LATTICE_CHAIN: List[str] = [
    STRICT_SERIALIZABILITY,
    SNAPSHOT_ISOLATION,
    PSI,
    NMSI,
    EVENTUAL,
]


def weaker_levels(level: str) -> List[str]:
    """Transitive closure of ``WEAKER_THAN`` from ``level`` (exclusive),
    in ``ALL_LEVELS`` order."""
    reached = {level}
    frontier = [level]
    while frontier:
        src = frontier.pop()
        for a, b in WEAKER_THAN:
            if a == src and b not in reached:
                reached.add(b)
                frontier.append(b)
    reached.discard(level)
    return [lv for lv in ALL_LEVELS if lv in reached]


def level_index(level: str) -> int:
    return ALL_LEVELS.index(level)


#: Human-readable labels for tables.
LEVEL_LABELS: Dict[str, str] = {
    STRICT_SERIALIZABILITY: "strict ser.",
    SERIALIZABILITY: "serializability",
    SNAPSHOT_ISOLATION: "snapshot isolation",
    PSI: "PSI",
    NMSI: "NMSI",
    EVENTUAL: "eventual",
}
