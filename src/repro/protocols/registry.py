"""The protocol registry: one name per backend, one place to look.

``PROTOCOLS`` maps registry names to backend classes; the conformance
suite, the chaos harness (``python -m repro.chaos --protocol ...``), and
``benchmarks/bench_protocol_zoo.py`` all parametrize over it, so adding
a protocol here enrolls it everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import ProtocolBackend
from .consus import ConsusProtocol
from .nmsi import NMSIProtocol
from .si import SIProtocol
from .walter import WalterProtocol

PROTOCOLS: Dict[str, Type[ProtocolBackend]] = {
    cls.name: cls
    for cls in (WalterProtocol, SIProtocol, NMSIProtocol, ConsusProtocol)
}

#: Strongest-first listing order used by reports and benchmarks.
PROTOCOL_NAMES: List[str] = ["consus", "si", "walter", "nmsi"]


def get_protocol(name: str) -> Type[ProtocolBackend]:
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            "unknown protocol %r (have: %s)" % (name, ", ".join(sorted(PROTOCOLS)))
        )


def build(name: str, **kwargs) -> ProtocolBackend:
    """Instantiate a registered backend."""
    return get_protocol(name)(**kwargs)
