"""Walter (PSI) plugged into the protocol-zoo interface.

Wraps a full traced :class:`~repro.deployment.Deployment`: one container
per site, keys placed on their :func:`~repro.protocols.base.key_site`
home container, sessions backed by real :class:`WalterClient` instances.
The oracle is the existing PSI trace checker
(:func:`repro.spec.checker.check_trace`) -- the protocol layer adds the
black-box :class:`ProtocolHistory` on top so Walter runs feed the same
conformance suite and lattice derivations as every other protocol.

Witness recorded per committed transaction: its commit ``Version`` and
``startVTS`` (from the execution trace), which the lattice check
translates into an NMSI dependency vector.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..core.objects import ObjectId
from ..deployment import Deployment
from ..net import Topology
from .base import ProtocolBackend, ProtocolSession, key_site
from .history import ABORTED, COMMITTED, TxRecord
from .levels import PSI


class WalterSession(ProtocolSession):
    def __init__(self, backend: "WalterProtocol", site: int, name: str):
        super().__init__(backend, site, name)
        self._client = backend.world.new_client(site, name=name)
        self._handles: Dict[str, Any] = {}

    def _do_begin(self, tid_ignored: str, record: TxRecord) -> Generator:
        handle = self._client.start_tx()
        # Use Walter's own tid so the ProtocolHistory rows join directly
        # with the execution trace rows.
        record.tid = handle.tid
        self._records[handle.tid] = record
        self._handles[handle.tid] = handle
        return
        yield  # pragma: no cover

    def begin(self) -> Generator:
        # Override: the Walter tid is minted by the client library, not
        # by the session counter.
        record = self.backend.history.begin(
            "walter-pending", self.site, self.backend.kernel.now
        )
        yield from self._do_begin(record.tid, record)
        return record.tid

    def _do_read(self, tid: str, key: str) -> Generator:
        value = yield from self._client.read(self._handles[tid], self.backend.oid(key))
        return value

    def _do_write(self, tid: str, key: str, value: Any) -> Generator:
        yield from self._client.write(self._handles[tid], self.backend.oid(key), value)

    def _do_commit(self, tid: str, record: TxRecord) -> Generator:
        status = yield from self._client.commit(self._handles[tid])
        if status == COMMITTED:
            traced = self.backend.world.trace.transactions.get(tid)
            if traced is not None:
                record.meta["version"] = traced.version
                record.meta["start_vts"] = traced.start_vts
        return COMMITTED if status == COMMITTED else ABORTED

    def _do_abort(self, tid: str, record: TxRecord) -> Generator:
        yield from self._client.abort(self._handles[tid])


class WalterProtocol(ProtocolBackend):
    name = "walter"
    isolation = PSI

    def _build_substrate(self, topology: Optional[Topology], jitter_frac: float) -> None:
        self.world = Deployment(
            n_sites=self.n_sites,
            topology=topology,
            seed=self.seed,
            flush_latency=self.flush_latency,
            trace=True,
            jitter_frac=jitter_frac,
        )
        self.kernel = self.world.kernel
        self.network = self.world.network
        self.topology = self.world.topology
        self.streams = self.world.streams

    def _build(self) -> None:
        self._containers = [
            self.world.create_container("zoo-c%d" % site, preferred_site=site)
            for site in range(self.n_sites)
        ]
        self._oids: Dict[str, ObjectId] = {}

    def oid(self, key: str) -> ObjectId:
        oid = self._oids.get(key)
        if oid is None:
            container = self._containers[key_site(key, self.n_sites)]
            oid = container.new_id(local="k:%s" % key)
            self._oids[key] = oid
        return oid

    def _make_session(self, site: int, name: str) -> WalterSession:
        return WalterSession(self, site, name)

    def check(self) -> List:
        from ..spec.checker import check_trace

        return check_trace(self.world.trace, abandoned=self.world.abandoned_versions)
