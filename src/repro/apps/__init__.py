"""Applications built on Walter: WaltSocial and ReTwis (paper §7)."""
