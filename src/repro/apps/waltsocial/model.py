"""WaltSocial data model (paper §7).

"Each user has a profile object for storing personal information (e.g.,
name, email, hobbies) and several cset objects: a friend-list has oids of
the profile objects of friends, a message-list has oids of received
messages, an event-list has oids of events in the user's activity
history, and an album-list has oids of photo albums, where each photo
album is itself a cset with the oids of photo objects."

"Each user has a container that stores her objects.  The container is
replicated at all sites to optimize for reads.  The system directs a user
to log into the preferred site of her container."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...core.objects import Container, ObjectId, ObjectKind
from ...deployment import Deployment


@dataclass(frozen=True)
class Profile:
    """The value stored in a user's profile object (immutable: profile
    updates write a fresh Profile)."""

    name: str
    email: str = ""
    hobbies: str = ""
    status: str = ""

    def with_status(self, status: str) -> "Profile":
        return Profile(self.name, self.email, self.hobbies, status)


@dataclass
class User:
    """A user's container and well-known object ids."""

    name: str
    home_site: int
    container: Container
    profile: ObjectId
    friend_list: ObjectId
    message_list: ObjectId
    event_list: ObjectId
    album_list: ObjectId


class WaltSocialDB:
    """The user registry plus container/object bootstrapping."""

    def __init__(self, world: Deployment):
        self.world = world
        self.users: Dict[str, User] = {}

    def create_user(self, name: str, home_site: int) -> User:
        """Register a user's container (preferred site = home site,
        replicated everywhere) and mint her well-known objects."""
        if name in self.users:
            raise ValueError("user %r already exists" % (name,))
        container = self.world.create_container(
            "user:%s" % name, preferred_site=home_site
        )
        user = User(
            name=name,
            home_site=home_site,
            container=container,
            profile=container.new_id(local="profile"),
            friend_list=container.new_id(ObjectKind.CSET, local="friends"),
            message_list=container.new_id(ObjectKind.CSET, local="messages"),
            event_list=container.new_id(ObjectKind.CSET, local="events"),
            album_list=container.new_id(ObjectKind.CSET, local="albums"),
        )
        self.users[name] = user
        return user

    def populate(
        self,
        n_users: int,
        name_prefix: str = "user",
        statuses_per_user: int = 0,
        wall_posts_per_user: int = 0,
    ) -> None:
        """Create users round-robin across sites and preload their data
        (the §8.6 setup: users with prior status updates and wall posts)."""
        preload = {}
        for i in range(n_users):
            site = i % self.world.n_sites
            user = self.create_user("%s%d" % (name_prefix, i), site)
            preload[user.profile] = Profile(name=user.name, email="%s@example.com" % user.name)
            events = []
            messages = []
            for s in range(statuses_per_user):
                oid = user.container.new_id(local="status-%d" % s)
                preload[oid] = "status %d of %s" % (s, user.name)
                events.append(oid)
            for m in range(wall_posts_per_user):
                oid = user.container.new_id(local="wall-%d" % m)
                preload[oid] = "wall post %d on %s" % (m, user.name)
                messages.append(oid)
            if events:
                preload[user.event_list] = events
            if messages:
                preload[user.message_list] = messages
        self.world.preload(preload)

    def user(self, name: str) -> User:
        return self.users[name]

    def __len__(self) -> int:
        return len(self.users)
