"""WaltSocial operations (paper §7, Figs 15 and 21).

Every operation is one Walter transaction issued through a client at the
acting user's site.  The object counts per operation match Fig 21:

=============  ==========  ============  ===========
operation      objs read   objs written  csets written
read-info      3           0             0
befriend       2           0             2
status-update  1           2             2
post-message   2           2             2
=============  ==========  ============  ===========
"""

from __future__ import annotations

from ...client import WalterClient
from .model import Profile, WaltSocialDB


class WaltSocial:
    """Application operations; all methods are generators run by clients."""

    def __init__(self, db: WaltSocialDB):
        self.db = db

    # ------------------------------------------------------------------
    # read-info: profile + friend-list + message-list (3 reads)
    # ------------------------------------------------------------------
    def read_info(self, client: WalterClient, username: str):
        user = self.db.user(username)
        tx = client.start_tx()
        profile = yield from client.read(tx, user.profile)
        friends = yield from client.set_read(tx, user.friend_list)
        messages = yield from client.set_read(tx, user.message_list)
        status = yield from client.commit(tx)
        return {
            "status": status,
            "profile": profile,
            "friends": sorted(str(f) for f in friends.members()),
            "n_messages": len(list(messages.members())),
        }

    # ------------------------------------------------------------------
    # befriend: Fig 15 -- symmetric friend-list adds in one transaction
    # ------------------------------------------------------------------
    def befriend(self, client: WalterClient, username_a: str, username_b: str):
        a, b = self.db.user(username_a), self.db.user(username_b)
        tx = client.start_tx()
        profile_a = yield from client.read(tx, a.profile)
        profile_b = yield from client.read(tx, b.profile)
        yield from client.set_add(tx, a.friend_list, b.profile)
        yield from client.set_add(tx, b.friend_list, a.profile)
        status = yield from client.commit(tx)
        return {"status": status, "a": profile_a, "b": profile_b}

    def unfriend(self, client: WalterClient, username_a: str, username_b: str):
        a, b = self.db.user(username_a), self.db.user(username_b)
        tx = client.start_tx()
        yield from client.set_del(tx, a.friend_list, b.profile)
        yield from client.set_del(tx, b.friend_list, a.profile)
        status = yield from client.commit(tx)
        return {"status": status}

    # ------------------------------------------------------------------
    # status-update: new event object + profile rewrite + 2 cset adds
    # ------------------------------------------------------------------
    def status_update(self, client: WalterClient, username: str, text: str):
        user = self.db.user(username)
        tx = client.start_tx()
        profile = yield from client.read(tx, user.profile)
        profile = profile if isinstance(profile, Profile) else Profile(name=username)
        event_oid = client.new_id(user.container.id)
        yield from client.write(tx, event_oid, "status: %s" % text)
        yield from client.write(tx, user.profile, profile.with_status(text))
        yield from client.set_add(tx, user.event_list, event_oid)
        yield from client.set_add(tx, user.message_list, event_oid)
        status = yield from client.commit(tx)
        return {"status": status, "event": event_oid}

    # ------------------------------------------------------------------
    # post-message: message object + event object + 2 cset adds
    # ------------------------------------------------------------------
    def post_message(self, client: WalterClient, sender: str, recipient: str, text: str):
        src, dst = self.db.user(sender), self.db.user(recipient)
        tx = client.start_tx()
        profile_src = yield from client.read(tx, src.profile)
        profile_dst = yield from client.read(tx, dst.profile)
        message_oid = client.new_id(src.container.id)
        event_oid = client.new_id(src.container.id)
        yield from client.write(tx, message_oid, "%s -> %s: %s" % (sender, recipient, text))
        yield from client.write(tx, event_oid, "sent message to %s" % recipient)
        yield from client.set_add(tx, dst.message_list, message_oid)
        yield from client.set_add(tx, src.event_list, event_oid)
        status = yield from client.commit(tx)
        return {
            "status": status,
            "message": message_oid,
            "profiles": (profile_src, profile_dst),
            "tx": tx,
        }

    def post_message_marked(self, client: WalterClient, sender: str, recipient: str, text: str):
        """post-message with the §3.4 "in-flight" mark.

        "One way to avoid possible confusion among users is for the
        application to show an in-flight mark on a freshly posted
        message; this mark is removed only when the message has been
        committed at all sites."  The returned dict carries an
        ``in_flight`` callable (True until globally visible) and the
        transaction's ``visible_event`` to wait on.
        """
        result = yield from self.post_message(client, sender, recipient, text)
        tx = result["tx"]
        result["in_flight"] = lambda: not tx.visible_event.triggered
        result["visible_event"] = tx.visible_event
        return result

    # ------------------------------------------------------------------
    # Albums (§7: album-list of csets, each album a cset of photo oids)
    # ------------------------------------------------------------------
    def create_album(self, client: WalterClient, username: str, album_name: str):
        """The §2 motivating example: create the album object, post a
        wall update, and link the album -- atomically."""
        user = self.db.user(username)
        tx = client.start_tx()
        from ...core.objects import ObjectKind

        album_oid = client.new_id(user.container.id, ObjectKind.CSET)
        wall_oid = client.new_id(user.container.id)
        yield from client.write(tx, wall_oid, "%s created album %s" % (username, album_name))
        yield from client.set_add(tx, user.album_list, (album_name, album_oid))
        yield from client.set_add(tx, user.message_list, wall_oid)
        status = yield from client.commit(tx)
        return {"status": status, "album": album_oid}

    def add_photo(self, client: WalterClient, username: str, album_oid, photo_bytes: bytes):
        user = self.db.user(username)
        tx = client.start_tx()
        photo_oid = client.new_id(user.container.id)
        yield from client.write(tx, photo_oid, photo_bytes)
        yield from client.set_add(tx, album_oid, photo_oid)
        yield from client.set_add(tx, user.event_list, photo_oid)
        status = yield from client.commit(tx)
        return {"status": status, "photo": photo_oid}

    # ------------------------------------------------------------------
    # Helpers for assertions in tests/examples
    # ------------------------------------------------------------------
    def friends_of(self, client: WalterClient, username: str):
        """Friend profiles, applying the §3.5 count>=1 convention."""
        user = self.db.user(username)
        tx = client.start_tx()
        friends = yield from client.set_read(tx, user.friend_list)
        yield from client.commit(tx)
        return list(friends.members())

    def wall_of(self, client: WalterClient, username: str, limit: int = 10):
        user = self.db.user(username)
        tx = client.start_tx()
        posts = yield from client.read_cset_objects(tx, user.message_list, limit=limit)
        yield from client.commit(tx)
        return [value for _elem, value in posts]
