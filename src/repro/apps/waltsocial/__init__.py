"""WaltSocial: the paper's Facebook-like social network (§7)."""

from .model import Profile, User, WaltSocialDB
from .operations import WaltSocial

__all__ = ["Profile", "User", "WaltSocial", "WaltSocialDB"]
