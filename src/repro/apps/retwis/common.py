"""Shared ReTwis definitions (paper §7, §8.7).

ReTwis is a Twitter clone: users post messages, follow other users, and
read their timeline (the 10 most recent posts by people they follow).
Both backends implement the same three operations so the Fig 23
comparison drives identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Timeline page size: "ReTwis displays the 10 most recent messages".
TIMELINE_SIZE = 10


@dataclass
class Post:
    """A rendered timeline entry."""

    post_id: str
    author: str
    text: str


class ReTwisBackend:
    """Interface both backends implement (methods are generators)."""

    def register(self, username: str, site: int) -> None:
        raise NotImplementedError

    def post(self, client, username: str, text: str):
        raise NotImplementedError

    def follow(self, client, username: str, other: str):
        raise NotImplementedError

    def status(self, client, username: str):
        raise NotImplementedError
