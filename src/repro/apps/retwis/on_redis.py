"""The original ReTwis data layout on the Redis-like store (paper §7).

"In the original implementation, a user's timeline is stored in a Redis
list.  When a user posts a message, ReTwis performs an atomic increment
on a sequence number to generate a postID, stores the message under the
postID, and appends the postID to each of her followers' timelines."

Redis allows updates only at the master, so all mutating commands go to
the master site regardless of where the client runs (which is why the
paper runs the Redis experiments at one site only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...net import Host
from .common import Post, ReTwisBackend, TIMELINE_SIZE


class RedisReTwis(ReTwisBackend):
    def __init__(self, master_address: str):
        self.master = master_address
        self.users: Dict[str, int] = {}  # username -> home site (bookkeeping)

    def register(self, username: str, site: int) -> None:
        self.users[username] = site

    def populate_direct(self, server, n_users: int, follows_per_user: int, seed: int = 0) -> None:
        """Seed the follower graph directly into the master's data dict
        (benchmark setup, not simulated traffic)."""
        import random

        rng = random.Random(seed)
        for i in range(n_users):
            self.register("u%d" % i, 0)
        names = list(self.users)
        for name in names:
            for other in rng.sample(names, min(follows_per_user + 1, len(names))):
                if other != name:
                    server.data.setdefault("following:%s" % name, set()).add(other)
                    server.data.setdefault("followers:%s" % other, set()).add(name)

    # ------------------------------------------------------------------
    # Operations (generators driven by a Host with RPC access)
    # ------------------------------------------------------------------
    def post(self, client: Host, username: str, text: str):
        post_id = yield from client.call(self.master, "incr", key="next_post_id")
        yield from client.call(
            self.master, "set", key="post:%d" % post_id, value=(username, text)
        )
        followers = yield from client.call(
            self.master, "smembers", key="followers:%s" % username
        )
        yield from client.call(
            self.master, "lpush", key="timeline:%s" % username, value=post_id
        )
        for follower in followers:
            yield from client.call(
                self.master, "lpush", key="timeline:%s" % follower, value=post_id
            )
        return {"status": "OK", "post": post_id}

    def follow(self, client: Host, username: str, other: str):
        yield from client.call(self.master, "sadd", key="following:%s" % username, member=other)
        yield from client.call(self.master, "sadd", key="followers:%s" % other, member=username)
        return {"status": "OK"}

    def status(self, client: Host, username: str) -> List[Post]:
        ids = yield from client.call(
            self.master, "lrange", key="timeline:%s" % username, start=0,
            stop=TIMELINE_SIZE - 1,
        )
        if not ids:
            return []
        values = yield from client.call(
            self.master, "mget", keys=["post:%d" % i for i in ids]
        )
        posts = []
        for post_id, value in zip(ids, values):
            if value is None:
                continue
            author, text = value
            posts.append(Post(post_id=str(post_id), author=author, text=text))
        return posts
