"""ReTwis ported to Walter (paper §7).

"We use a cset object to represent each user's timeline so that different
sites can add posts to a user's timeline without conflicts.  To post a
message, we use a transaction that writes a message under a unique
postID, and adds the postID to the timeline of every follower."

Timeline cset elements are ``(seqno, post_oid)`` tuples; the sequence
number (replacing Redis's INCR-generated post id) orders the timeline so
"10 most recent" is well defined.  Reading a timeline uses the combined
read-cset-objects RPC (§6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List

from ...client import WalterClient
from ...core.objects import Container, ObjectId, ObjectKind
from ...deployment import Deployment
from .common import Post, ReTwisBackend, TIMELINE_SIZE


@dataclass
class WalterReTwisUser:
    name: str
    home_site: int
    container: Container
    timeline: ObjectId  # cset of (seqno, post oid)
    followers: ObjectId  # cset of usernames
    following: ObjectId  # cset of usernames


class WalterReTwis(ReTwisBackend):
    def __init__(self, world: Deployment):
        self.world = world
        self.users: Dict[str, WalterReTwisUser] = {}
        self._post_seq = itertools.count(1)

    def register(self, username: str, site: int) -> WalterReTwisUser:
        container = self.world.create_container(
            "retwis:%s" % username, preferred_site=site
        )
        user = WalterReTwisUser(
            name=username,
            home_site=site,
            container=container,
            timeline=container.new_id(ObjectKind.CSET, local="timeline"),
            followers=container.new_id(ObjectKind.CSET, local="followers"),
            following=container.new_id(ObjectKind.CSET, local="following"),
        )
        self.users[username] = user
        return user

    def populate(self, n_users: int, follows_per_user: int, seed: int = 0) -> None:
        """Register users round-robin across sites and preload a follower
        graph (each user follows ``follows_per_user`` others)."""
        import random

        rng = random.Random(seed)
        for i in range(n_users):
            self.register("u%d" % i, i % self.world.n_sites)
        names = list(self.users)
        followers = {name: [] for name in names}
        following = {name: [] for name in names}
        for name in names:
            others = rng.sample(names, min(follows_per_user + 1, len(names)))
            for other in others:
                if other != name and other not in following[name]:
                    following[name].append(other)
                    followers[other].append(name)
        preload = {}
        for name in names:
            user = self.users[name]
            if followers[name]:
                preload[user.followers] = followers[name]
            if following[name]:
                preload[user.following] = following[name]
        self.world.preload(preload)

    # ------------------------------------------------------------------
    # Operations (generators)
    # ------------------------------------------------------------------
    def post(self, client: WalterClient, username: str, text: str):
        user = self.users[username]
        tx = client.start_tx()
        followers = yield from client.set_read(tx, user.followers)
        post_oid = client.new_id(user.container.id)
        seq = next(self._post_seq)
        yield from client.write(tx, post_oid, (username, text))
        entry = (seq, post_oid)
        yield from client.set_add(tx, user.timeline, entry)  # own timeline
        for follower in followers.members():
            follower_user = self.users[follower]
            yield from client.set_add(tx, follower_user.timeline, entry)
        status = yield from client.commit(tx)
        return {"status": status, "post": post_oid}

    def follow(self, client: WalterClient, username: str, other: str):
        me, them = self.users[username], self.users[other]
        tx = client.start_tx()
        yield from client.set_add(tx, me.following, other)
        yield from client.set_add(tx, them.followers, username)
        status = yield from client.commit(tx)
        return {"status": status}

    def unfollow(self, client: WalterClient, username: str, other: str):
        me, them = self.users[username], self.users[other]
        tx = client.start_tx()
        yield from client.set_del(tx, me.following, other)
        yield from client.set_del(tx, them.followers, username)
        status = yield from client.commit(tx)
        return {"status": status}

    def status(self, client: WalterClient, username: str) -> List[Post]:
        user = self.users[username]
        tx = client.start_tx()
        entries = yield from client.read_cset_objects(
            tx, user.timeline, limit=TIMELINE_SIZE, newest_first=True
        )
        yield from client.commit(tx)
        posts = []
        for (seq, oid), value in entries:
            if value is None:
                continue
            author, text = value
            posts.append(Post(post_id="%d" % seq, author=author, text=text))
        return posts
