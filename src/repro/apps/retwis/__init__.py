"""ReTwis: the paper's ported Twitter clone (§7, §8.7)."""

from .common import Post, ReTwisBackend, TIMELINE_SIZE
from .on_redis import RedisReTwis
from .on_walter import WalterReTwis, WalterReTwisUser

__all__ = [
    "Post",
    "ReTwisBackend",
    "RedisReTwis",
    "TIMELINE_SIZE",
    "WalterReTwis",
    "WalterReTwisUser",
]
