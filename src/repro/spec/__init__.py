"""Executable specifications, anomaly scenarios, and the PSI trace checker."""

from .anomalies import (
    ANOMALY_NAMES,
    EVENTUAL,
    EXPECTED_TABLE,
    ISOLATION_LEVELS,
    PSI,
    SERIALIZABILITY,
    SNAPSHOT_ISOLATION,
    anomaly_table,
    check_anomaly,
)
from .checker import (
    ExecutionTrace,
    TracedRead,
    TracedTx,
    Violation,
    check_commit_causality,
    check_no_write_write_conflicts,
    check_site_snapshot_reads,
    check_trace,
)
from .eventual import EventualStore
from .psi_spec import ParallelSnapshotIsolation, PSITx
from .serializable import ObservedTx, is_serializable, replay_serial
from .si_spec import ABORTED, COMMITTED, SnapshotIsolation, SpecTx

__all__ = [
    "ABORTED",
    "ANOMALY_NAMES",
    "COMMITTED",
    "EVENTUAL",
    "EXPECTED_TABLE",
    "EventualStore",
    "ExecutionTrace",
    "ISOLATION_LEVELS",
    "ObservedTx",
    "PSI",
    "PSITx",
    "ParallelSnapshotIsolation",
    "SERIALIZABILITY",
    "SNAPSHOT_ISOLATION",
    "SnapshotIsolation",
    "SpecTx",
    "TracedRead",
    "TracedTx",
    "Violation",
    "anomaly_table",
    "check_anomaly",
    "check_commit_causality",
    "check_no_write_write_conflicts",
    "check_site_snapshot_reads",
    "check_trace",
    "is_serializable",
    "replay_serial",
]
