"""Trace checker for the three PSI properties (§3.2).

The distributed Walter implementation records an :class:`ExecutionTrace`
while it runs (when tracing is enabled).  This module re-derives, from the
trace alone, whether the execution satisfied:

* PSI Property 1 (Site Snapshot Read): every read returned the state of
  the object at the reader's site as of the reader's start snapshot;
* PSI Property 2 (No Write-Write Conflicts): committed somewhere-
  concurrent transactions have disjoint write sets -- operationally, any
  two committed transactions with intersecting write sets must be
  causally ordered (one's commit version visible in the other's snapshot);
* PSI Property 3 (Commit Causality Across Sites): if T1 committed at T2's
  site before T2 started, T1 commits before T2 at every site.

This is the core model-based-testing oracle: integration tests run the
real servers under randomized workloads (and fault injection), then call
:func:`check_trace` on what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..core.cset import CSet
from ..core.history import SiteHistories
from ..core.objects import ObjectId, ObjectKind
from ..core.updates import Update
from ..core.versions import VectorTimestamp, Version


@dataclass
class TracedTx:
    """A committed transaction as recorded by the implementation."""

    tid: str
    site: int
    start_vts: VectorTimestamp
    version: Version
    updates: List[Update]
    write_set: frozenset


@dataclass
class TracedRead:
    """One read observation: what some transaction saw."""

    tid: str
    site: int
    start_vts: VectorTimestamp
    oid: ObjectId
    value: Any  # data for regular objects, Dict[elem, count] for csets


@dataclass
class ExecutionTrace:
    """Everything the checker needs about one run."""

    n_sites: int
    transactions: Dict[str, TracedTx] = field(default_factory=dict)
    #: Per site, the order in which transaction versions committed there
    #: (the order CommittedVTS advanced).
    site_commit_order: Dict[int, List[Version]] = field(default_factory=dict)
    reads: List[TracedRead] = field(default_factory=list)

    def record_commit(self, tx: TracedTx) -> None:
        self.transactions[tx.tid] = tx

    def record_site_commit(self, site: int, version: Version) -> None:
        self.site_commit_order.setdefault(site, []).append(version)

    def record_read(self, read: TracedRead) -> None:
        self.reads.append(read)


@dataclass
class Violation:
    property_name: str
    detail: str

    def __str__(self) -> str:
        return "%s: %s" % (self.property_name, self.detail)


def check_trace(
    trace: ExecutionTrace, abandoned: Optional[Set[Version]] = None
) -> List[Violation]:
    """Return all PSI property violations found (empty list = clean).

    ``abandoned`` names transaction versions legitimately sacrificed by
    the aggressive site-removal option (§4.4) or by storage fencing at a
    server takeover (§5.7): the system first exposed them, then a
    reconfiguration declared they never happened.  Reads are then judged
    against *both* worlds -- with and without the abandoned transactions
    -- since a read is valid if it matched the site state at the time it
    executed.  The paper accepts exactly this anomaly: under the
    aggressive option, clients that observed a sacrificed transaction
    before the failure saw data that is subsequently lost.
    """
    violations: List[Violation] = []
    violations.extend(check_site_snapshot_reads(trace, abandoned))
    violations.extend(check_no_write_write_conflicts(trace, abandoned))
    violations.extend(check_commit_causality(trace))
    return violations


# ----------------------------------------------------------------------
# Property 2: no write-write conflicts
# ----------------------------------------------------------------------
def check_no_write_write_conflicts(
    trace: ExecutionTrace, abandoned: Optional[Set[Version]] = None
) -> List[Violation]:
    """Committed transactions with intersecting write sets must be
    causally ordered: one's version is visible to the other's startVTS.
    Two somewhere-concurrent conflicting commits violate PSI Property 2.

    A transaction ``abandoned`` by aggressive site removal (§4.4) is
    exempt: the new configuration declared it never happened and freed
    its write locks, so the reassigned preferred site may legitimately
    admit a conflicting write that never saw it."""
    violations = []
    abandoned = abandoned or frozenset()
    txs = [t for t in trace.transactions.values() if t.version not in abandoned]
    for i, t1 in enumerate(txs):
        for t2 in txs[i + 1:]:
            overlap = t1.write_set & t2.write_set
            if not overlap:
                continue
            t1_before_t2 = t2.start_vts.visible(t1.version)
            t2_before_t1 = t1.start_vts.visible(t2.version)
            if not (t1_before_t2 or t2_before_t1):
                violations.append(
                    Violation(
                        "no-write-write-conflicts",
                        "%s and %s are somewhere-concurrent and both wrote %s"
                        % (t1.tid, t2.tid, sorted(str(o) for o in overlap)),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# Property 3: commit causality across sites
# ----------------------------------------------------------------------
def check_commit_causality(trace: ExecutionTrace) -> List[Violation]:
    """If T1 is in T2's snapshot, T1 commits before T2 at every site
    where both committed."""
    positions: Dict[int, Dict[Version, int]] = {
        site: {v: i for i, v in enumerate(order)}
        for site, order in trace.site_commit_order.items()
    }
    txs = list(trace.transactions.values())
    if not _causality_suspect(trace, positions, txs):
        return []
    # Exact (quadratic) enumeration, kept verbatim so violating traces
    # report the same violations in the same order as before the
    # fast-path optimization.
    violations = []
    for t1 in txs:
        for t2 in txs:
            if t1 is t2:
                continue
            if not t2.start_vts.visible(t1.version):
                continue
            for site, pos in positions.items():
                p1 = pos.get(t1.version)
                p2 = pos.get(t2.version)
                if p1 is not None and p2 is not None and p1 > p2:
                    violations.append(
                        Violation(
                            "commit-causality",
                            "%s precedes %s causally but committed after it at site %d"
                            % (t1.tid, t2.tid, site),
                        )
                    )
    return violations


def _causality_suspect(
    trace: ExecutionTrace,
    positions: Dict[int, Dict[Version, int]],
    txs: List[TracedTx],
) -> bool:
    """Near-linear screen for Property 3: can any (T1, T2, site) triple
    violate commit causality?

    A violation needs T1 committed *after* T2 at some site while T1's
    version is visible to T2's snapshot.  Per site, walk the commit
    order backwards keeping, for each origin site, the smallest seqno
    committed strictly later; T2 is suspect iff that minimum is visible
    to its startVTS (visibility is a per-origin seqno threshold, so the
    minimum stands in for every later T1 from that origin).  Clean
    traces -- the common case -- cost O(commits * origin sites) instead
    of O(txs^2).  Any anomaly, including a malformed vector width the
    exact check would surface as an exception, returns True and defers
    to the exact enumeration.
    """
    by_version: Dict[Version, List[TracedTx]] = {}
    for tx in txs:
        by_version.setdefault(tx.version, []).append(tx)
    try:
        for pos in positions.values():
            ordered = sorted(pos.items(), key=lambda item: item[1], reverse=True)
            min_later: Dict[int, int] = {}
            for version, _index in ordered:
                candidates = by_version.get(version)
                if candidates is not None:
                    for origin, seqno in min_later.items():
                        probe = Version(origin, seqno)
                        for t2 in candidates:
                            if t2.start_vts.visible(probe):
                                return True
                    if version.site not in min_later or version.seqno < min_later[version.site]:
                        min_later[version.site] = version.seqno
    except Exception:  # noqa: BLE001 - let the exact check raise it
        return True
    return False


# ----------------------------------------------------------------------
# Property 1: site snapshot reads
# ----------------------------------------------------------------------
def check_site_snapshot_reads(
    trace: ExecutionTrace, abandoned: Optional[Set[Version]] = None
) -> List[Violation]:
    """Replay each site's commit order into a model history and verify
    every recorded read against the model's snapshot value.

    With a non-empty ``abandoned`` set (see :func:`check_trace`), each
    site gets a second model that skips the abandoned transactions, and a
    read passes if it matches either model: the full one (the site state
    before removal redefined history) or the surviving one (after).
    """
    violations = []
    abandoned = abandoned or frozenset()
    # A version can legitimately name two traced transactions: a
    # fenced/abandoned transaction and the no-op that later sealed its
    # seqno hole (see RecoveryMixin.seal_seqno_holes).  Keep every
    # incarnation in recording order: at the origin site the first
    # occurrence in the commit order is the original, a re-occurrence is
    # the seal; other sites only ever commit the latest incarnation (the
    # original was, by construction, never propagated).
    instances: Dict[Version, List[TracedTx]] = {}
    for tx in trace.transactions.values():
        instances.setdefault(tx.version, []).append(tx)
    for version in sorted(instances):
        real = [tx for tx in instances[version] if tx.updates or tx.write_set]
        if len(real) > 1:
            # Only seal no-ops may share a version with a dead
            # transaction; two real transactions on one version is
            # outright seqno reuse.
            violations.append(
                Violation(
                    "site-snapshot-read",
                    "version %s assigned to multiple transactions: %s"
                    % (version, sorted(tx.tid for tx in real)),
                )
            )
    site_models: Dict[int, SiteHistories] = {}
    surviving_models: Dict[int, SiteHistories] = {}
    for site, order in trace.site_commit_order.items():
        model = SiteHistories()
        surviving = SiteHistories() if abandoned else model
        seen: Dict[Version, int] = {}
        for version in order:
            txs_for = instances.get(version)
            if txs_for is None:
                violations.append(
                    Violation(
                        "site-snapshot-read",
                        "site %d committed unknown version %s" % (site, version),
                    )
                )
                continue
            occurrence = seen.get(version, 0)
            seen[version] = occurrence + 1
            if version.site == site:
                tx = txs_for[min(occurrence, len(txs_for) - 1)]
            else:
                tx = txs_for[-1]
            model.apply(tx.updates, version)
            if abandoned and version not in abandoned:
                surviving.apply(tx.updates, version)
        site_models[site] = model
        surviving_models[site] = surviving

    empty = SiteHistories()
    for read in trace.reads:
        # A site that committed nothing has empty state: nil reads only.
        model = site_models.get(read.site, empty)
        surviving = surviving_models.get(read.site, empty)
        actual = _normalize(read.value)
        expected = _model_value(model, read.oid, read.start_vts)
        if expected == actual:
            continue
        if abandoned and _model_value(surviving, read.oid, read.start_vts) == actual:
            continue  # consistent with the post-removal world (§4.4)
        violations.append(
            Violation(
                "site-snapshot-read",
                "%s at site %d read %s=%r but snapshot %r holds %r"
                % (read.tid, read.site, read.oid, actual, read.start_vts, expected),
            )
        )
    return violations


def _model_value(model: SiteHistories, oid: ObjectId, vts: VectorTimestamp):
    if oid.kind is ObjectKind.CSET:
        return model.read_cset(oid, vts).counts()
    return model.read_regular(oid, vts)


def _normalize(value):
    if isinstance(value, CSet):
        return value.counts()
    return value
