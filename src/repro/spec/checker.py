"""Trace checker for the three PSI properties (§3.2).

The distributed Walter implementation records an :class:`ExecutionTrace`
while it runs (when tracing is enabled).  This module re-derives, from the
trace alone, whether the execution satisfied:

* PSI Property 1 (Site Snapshot Read): every read returned the state of
  the object at the reader's site as of the reader's start snapshot;
* PSI Property 2 (No Write-Write Conflicts): committed somewhere-
  concurrent transactions have disjoint write sets -- operationally, any
  two committed transactions with intersecting write sets must be
  causally ordered (one's commit version visible in the other's snapshot);
* PSI Property 3 (Commit Causality Across Sites): if T1 committed at T2's
  site before T2 started, T1 commits before T2 at every site.

This is the core model-based-testing oracle: integration tests run the
real servers under randomized workloads (and fault injection), then call
:func:`check_trace` on what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..core.cset import CSet
from ..core.history import SiteHistories
from ..core.objects import ObjectId, ObjectKind
from ..core.updates import Update
from ..core.versions import VectorTimestamp, Version


@dataclass
class TracedTx:
    """A committed transaction as recorded by the implementation."""

    tid: str
    site: int
    start_vts: VectorTimestamp
    version: Version
    updates: List[Update]
    write_set: frozenset


@dataclass
class TracedRead:
    """One read observation: what some transaction saw."""

    tid: str
    site: int
    start_vts: VectorTimestamp
    oid: ObjectId
    value: Any  # data for regular objects, Dict[elem, count] for csets


@dataclass
class ExecutionTrace:
    """Everything the checker needs about one run."""

    n_sites: int
    transactions: Dict[str, TracedTx] = field(default_factory=dict)
    #: Per site, the order in which transaction versions committed there
    #: (the order CommittedVTS advanced).
    site_commit_order: Dict[int, List[Version]] = field(default_factory=dict)
    reads: List[TracedRead] = field(default_factory=list)

    def record_commit(self, tx: TracedTx) -> None:
        self.transactions[tx.tid] = tx

    def record_site_commit(self, site: int, version: Version) -> None:
        self.site_commit_order.setdefault(site, []).append(version)

    def record_read(self, read: TracedRead) -> None:
        self.reads.append(read)


@dataclass
class Violation:
    property_name: str
    detail: str

    def __str__(self) -> str:
        return "%s: %s" % (self.property_name, self.detail)


def check_trace(trace: ExecutionTrace) -> List[Violation]:
    """Return all PSI property violations found (empty list = clean)."""
    violations: List[Violation] = []
    violations.extend(check_site_snapshot_reads(trace))
    violations.extend(check_no_write_write_conflicts(trace))
    violations.extend(check_commit_causality(trace))
    return violations


# ----------------------------------------------------------------------
# Property 2: no write-write conflicts
# ----------------------------------------------------------------------
def check_no_write_write_conflicts(trace: ExecutionTrace) -> List[Violation]:
    """Committed transactions with intersecting write sets must be
    causally ordered: one's version is visible to the other's startVTS.
    Two somewhere-concurrent conflicting commits violate PSI Property 2."""
    violations = []
    txs = list(trace.transactions.values())
    for i, t1 in enumerate(txs):
        for t2 in txs[i + 1:]:
            overlap = t1.write_set & t2.write_set
            if not overlap:
                continue
            t1_before_t2 = t2.start_vts.visible(t1.version)
            t2_before_t1 = t1.start_vts.visible(t2.version)
            if not (t1_before_t2 or t2_before_t1):
                violations.append(
                    Violation(
                        "no-write-write-conflicts",
                        "%s and %s are somewhere-concurrent and both wrote %s"
                        % (t1.tid, t2.tid, sorted(str(o) for o in overlap)),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# Property 3: commit causality across sites
# ----------------------------------------------------------------------
def check_commit_causality(trace: ExecutionTrace) -> List[Violation]:
    """If T1 is in T2's snapshot, T1 commits before T2 at every site
    where both committed."""
    violations = []
    positions: Dict[int, Dict[Version, int]] = {
        site: {v: i for i, v in enumerate(order)}
        for site, order in trace.site_commit_order.items()
    }
    txs = list(trace.transactions.values())
    for t1 in txs:
        for t2 in txs:
            if t1 is t2:
                continue
            if not t2.start_vts.visible(t1.version):
                continue
            for site, pos in positions.items():
                p1 = pos.get(t1.version)
                p2 = pos.get(t2.version)
                if p1 is not None and p2 is not None and p1 > p2:
                    violations.append(
                        Violation(
                            "commit-causality",
                            "%s precedes %s causally but committed after it at site %d"
                            % (t1.tid, t2.tid, site),
                        )
                    )
    return violations


# ----------------------------------------------------------------------
# Property 1: site snapshot reads
# ----------------------------------------------------------------------
def check_site_snapshot_reads(trace: ExecutionTrace) -> List[Violation]:
    """Replay each site's commit order into a model history and verify
    every recorded read against the model's snapshot value."""
    violations = []
    by_version = {tx.version: tx for tx in trace.transactions.values()}
    site_models: Dict[int, SiteHistories] = {}
    for site, order in trace.site_commit_order.items():
        model = SiteHistories()
        for version in order:
            tx = by_version.get(version)
            if tx is None:
                violations.append(
                    Violation(
                        "site-snapshot-read",
                        "site %d committed unknown version %s" % (site, version),
                    )
                )
                continue
            model.apply(tx.updates, version)
        site_models[site] = model

    for read in trace.reads:
        model = site_models.get(read.site)
        if model is None:
            # A site that committed nothing has empty state: nil reads only.
            model = SiteHistories()
        expected = _model_value(model, read.oid, read.start_vts)
        actual = _normalize(read.value)
        if expected != actual:
            violations.append(
                Violation(
                    "site-snapshot-read",
                    "%s at site %d read %s=%r but snapshot %r holds %r"
                    % (read.tid, read.site, read.oid, actual, read.start_vts, expected),
                )
            )
    return violations


def _model_value(model: SiteHistories, oid: ObjectId, vts: VectorTimestamp):
    if oid.kind is ObjectKind.CSET:
        return model.read_cset(oid, vts).counts()
    return model.read_regular(oid, vts)


def _normalize(value):
    if isinstance(value, CSet):
        return value.counts()
    return value
