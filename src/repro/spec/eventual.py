"""Eventually-consistent replicated store (the Fig 8 comparison point).

A minimal model of systems like Dynamo/Bayou as the paper characterizes
them: writes apply immediately at the local replica, replicas exchange
state lazily, concurrent updates to the same object conflict and must be
resolved -- by default last-writer-wins on a Lamport stamp, optionally by
an application-supplied merge function (the "conflict-resolution logic"
the paper wants to spare developers from).

There are no transactions: a multi-object action is a sequence of
independent writes, which is exactly why eventual consistency exhibits
every anomaly in Fig 8.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.objects import ObjectId


@dataclass(frozen=True)
class Stamped:
    """A value with its Lamport stamp (counter, replica) for LWW."""

    value: Any
    counter: int
    replica: int

    @property
    def stamp(self) -> Tuple[int, int]:
        return (self.counter, self.replica)


MergeFn = Callable[[Any, Any], Any]


class EventualStore:
    """N replicas with lazy anti-entropy and pluggable conflict resolution."""

    def __init__(self, n_replicas: int, merge: Optional[MergeFn] = None):
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self._replicas: List[Dict[ObjectId, Stamped]] = [
            {} for _ in range(n_replicas)
        ]
        self._clock = itertools.count(1)
        self._merge = merge
        self.conflicts_resolved = 0

    def write(self, replica: int, oid: ObjectId, value: Any) -> None:
        """Apply immediately at the local replica (no isolation)."""
        self._replicas[replica][oid] = Stamped(value, next(self._clock), replica)

    def read(self, replica: int, oid: ObjectId) -> Any:
        stamped = self._replicas[replica].get(oid)
        return stamped.value if stamped is not None else None

    def sync(self, src: int, dst: int) -> None:
        """One-way anti-entropy: fold src's state into dst."""
        for oid, incoming in self._replicas[src].items():
            local = self._replicas[dst].get(oid)
            if local is None or local.stamp == incoming.stamp:
                self._replicas[dst][oid] = incoming
            elif self._is_concurrent_conflict(local, incoming):
                self._replicas[dst][oid] = self._resolve(local, incoming)
            elif incoming.stamp > local.stamp:
                self._replicas[dst][oid] = incoming

    def sync_all(self) -> None:
        """Anti-entropy between all pairs until convergence."""
        for _ in range(self.n_replicas):
            for src in range(self.n_replicas):
                for dst in range(self.n_replicas):
                    if src != dst:
                        self.sync(src, dst)

    def converged(self, oid: ObjectId) -> bool:
        values = [self.read(r, oid) for r in range(self.n_replicas)]
        return all(v == values[0] for v in values)

    @staticmethod
    def _is_concurrent_conflict(a: Stamped, b: Stamped) -> bool:
        # Different replicas wrote different values: a true conflict
        # requiring resolution (LWW or application logic).
        return a.replica != b.replica and a.value != b.value

    def _resolve(self, a: Stamped, b: Stamped) -> Stamped:
        self.conflicts_resolved += 1
        if self._merge is not None:
            merged = self._merge(a.value, b.value)
            return Stamped(merged, max(a.counter, b.counter), min(a.replica, b.replica))
        # Last-writer-wins: one concurrent update is silently lost.
        return a if a.stamp > b.stamp else b
