"""The six anomalies of Fig 8, demonstrated or refuted per isolation level.

For each (anomaly, isolation level) pair this module *executes* the
paper's example scenario against the matching reference model and reports
whether the anomalous observation was producible:

* serializability -- brute-force serial-order check over the observation,
* snapshot isolation -- the Fig 1/2 spec engine,
* PSI -- the Fig 4/5 spec engine (scenarios place transactions at sites),
* eventual consistency -- the lazy-replication store.

``anomaly_table()`` therefore regenerates Fig 8 from running code, and
``EXPECTED_TABLE`` is the figure as printed in the paper; the test suite
asserts they agree.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.objects import ObjectId, ObjectKind
from .eventual import EventualStore
from .psi_spec import COMMITTED, ParallelSnapshotIsolation
from .serializable import ObservedTx, is_serializable
from .si_spec import SnapshotIsolation

A = ObjectId("anomaly", "A", ObjectKind.REGULAR)
B = ObjectId("anomaly", "B", ObjectKind.REGULAR)

SERIALIZABILITY = "serializability"
SNAPSHOT_ISOLATION = "snapshot_isolation"
PSI = "psi"
EVENTUAL = "eventual"

ISOLATION_LEVELS = [SERIALIZABILITY, SNAPSHOT_ISOLATION, PSI, EVENTUAL]

ANOMALY_NAMES = [
    "dirty_read",
    "non_repeatable_read",
    "lost_update",
    "short_fork",
    "long_fork",
    "conflicting_fork",
]

#: Fig 8 as printed in the paper (True = the level allows the anomaly).
EXPECTED_TABLE: Dict[str, Dict[str, bool]] = {
    "dirty_read": {SERIALIZABILITY: False, SNAPSHOT_ISOLATION: False, PSI: False, EVENTUAL: True},
    "non_repeatable_read": {SERIALIZABILITY: False, SNAPSHOT_ISOLATION: False, PSI: False, EVENTUAL: True},
    "lost_update": {SERIALIZABILITY: False, SNAPSHOT_ISOLATION: False, PSI: False, EVENTUAL: True},
    "short_fork": {SERIALIZABILITY: False, SNAPSHOT_ISOLATION: True, PSI: True, EVENTUAL: True},
    "long_fork": {SERIALIZABILITY: False, SNAPSHOT_ISOLATION: False, PSI: True, EVENTUAL: True},
    "conflicting_fork": {SERIALIZABILITY: False, SNAPSHOT_ISOLATION: False, PSI: False, EVENTUAL: True},
}


# ----------------------------------------------------------------------
# Dirty read: T2 reads T1's uncommitted A=1; T1 goes on to write A=2.
# ----------------------------------------------------------------------
def _dirty_read(level: str) -> bool:
    if level == SERIALIZABILITY:
        t1 = ObservedTx("T1").write(A, 1).write(A, 2)
        t2 = ObservedTx("T2").read(A, 1)
        return is_serializable([t1, t2], {A: 0})
    if level == SNAPSHOT_ISOLATION:
        spec = SnapshotIsolation()
        t1 = spec.start_tx()
        spec.write(t1, A, 1)
        t2 = spec.start_tx()
        observed = spec.read(t2, A)  # T1 has not committed
        spec.write(t1, A, 2)
        spec.commit_tx(t1)
        return observed == 1
    if level == PSI:
        spec = ParallelSnapshotIsolation(n_sites=2)
        t1 = spec.start_tx(0)
        spec.write(t1, A, 1)
        t2 = spec.start_tx(0)
        observed = spec.read(t2, A)
        spec.write(t1, A, 2)
        spec.commit_tx(t1)
        return observed == 1
    store = EventualStore(1)
    # "Transaction" T1 is two bare writes; T2 reads between them.
    store.write(0, A, 1)
    observed = store.read(0, A)
    store.write(0, A, 2)
    return observed == 1


# ----------------------------------------------------------------------
# Non-repeatable read: T2 reads A twice straddling T1's commit of A=1.
# ----------------------------------------------------------------------
def _non_repeatable_read(level: str) -> bool:
    if level == SERIALIZABILITY:
        t1 = ObservedTx("T1").write(A, 1)
        t2 = ObservedTx("T2").read(A, 0).read(A, 1)
        return is_serializable([t1, t2], {A: 0})
    if level == SNAPSHOT_ISOLATION:
        spec = SnapshotIsolation()
        t2 = spec.start_tx()
        first = spec.read(t2, A)
        t1 = spec.start_tx()
        spec.write(t1, A, 1)
        spec.commit_tx(t1)
        second = spec.read(t2, A)
        return first != second
    if level == PSI:
        spec = ParallelSnapshotIsolation(n_sites=2)
        t2 = spec.start_tx(0)
        first = spec.read(t2, A)
        t1 = spec.start_tx(0)
        spec.write(t1, A, 1)
        spec.commit_tx(t1)
        second = spec.read(t2, A)
        return first != second
    store = EventualStore(1)
    first = store.read(0, A)
    store.write(0, A, 1)
    second = store.read(0, A)
    return first != second


# ----------------------------------------------------------------------
# Lost update: T1 and T2 both read A=0 and write A; both commit.
# ----------------------------------------------------------------------
def _lost_update(level: str) -> bool:
    if level == SERIALIZABILITY:
        t1 = ObservedTx("T1").read(A, 0).write(A, 1)
        t2 = ObservedTx("T2").read(A, 0).write(A, 2)
        return is_serializable([t1, t2], {A: 0})
    if level == SNAPSHOT_ISOLATION:
        spec = SnapshotIsolation()
        t1 = spec.start_tx()
        t2 = spec.start_tx()
        assert spec.read(t1, A) is None and spec.read(t2, A) is None
        spec.write(t1, A, 1)
        spec.write(t2, A, 2)
        s1 = spec.commit_tx(t1)
        s2 = spec.commit_tx(t2)
        return s1 == COMMITTED and s2 == COMMITTED
    if level == PSI:
        # Concurrent writers at *different* sites: the second committer
        # sees the first "currently propagating" and aborts (Fig 5).
        spec = ParallelSnapshotIsolation(n_sites=2)
        t1 = spec.start_tx(0)
        t2 = spec.start_tx(1)
        spec.write(t1, A, 1)
        spec.write(t2, A, 2)
        s1 = spec.commit_tx(t1)
        s2 = spec.commit_tx(t2)
        return s1 == COMMITTED and s2 == COMMITTED
    store = EventualStore(2)
    # Both replicas read A=0 and write; LWW resolution loses one update.
    assert store.read(0, A) is None and store.read(1, A) is None
    store.write(0, A, 1)
    store.write(1, A, 2)
    store.sync_all()
    return store.converged(A) and store.read(0, A) in (1, 2)


# ----------------------------------------------------------------------
# Short fork (write skew): disjoint writes from the same snapshot; the
# state forks and merges at commit.  T3 then reads A=B=1.
# ----------------------------------------------------------------------
def _short_fork(level: str) -> bool:
    if level == SERIALIZABILITY:
        t1 = ObservedTx("T1").read(A, 0).read(B, 0).write(A, 1)
        t2 = ObservedTx("T2").read(A, 0).read(B, 0).write(B, 1)
        t3 = ObservedTx("T3").read(A, 1).read(B, 1)
        return is_serializable([t1, t2, t3], {A: 0, B: 0})
    if level == SNAPSHOT_ISOLATION:
        spec = SnapshotIsolation()
        t1 = spec.start_tx()
        t2 = spec.start_tx()
        forked = (
            spec.read(t1, A) is None
            and spec.read(t1, B) is None
            and spec.read(t2, A) is None
            and spec.read(t2, B) is None
        )
        spec.write(t1, A, 1)
        spec.write(t2, B, 1)
        both = spec.commit_tx(t1) == COMMITTED and spec.commit_tx(t2) == COMMITTED
        t3 = spec.start_tx()
        merged = spec.read(t3, A) == 1 and spec.read(t3, B) == 1
        return forked and both and merged
    if level == PSI:
        spec = ParallelSnapshotIsolation(n_sites=1)
        t1 = spec.start_tx(0)
        t2 = spec.start_tx(0)
        spec.write(t1, A, 1)
        spec.write(t2, B, 1)
        both = spec.commit_tx(t1) == COMMITTED and spec.commit_tx(t2) == COMMITTED
        t3 = spec.start_tx(0)
        return both and spec.read(t3, A) == 1 and spec.read(t3, B) == 1
    store = EventualStore(2)
    store.write(0, A, 1)
    store.write(1, B, 1)
    store.sync_all()
    return store.read(0, A) == 1 and store.read(0, B) == 1


# ----------------------------------------------------------------------
# Long fork: after T1 and T3 commit at different sites, T2 sees only
# T1's write and T4 sees only T3's; the fork persists past commit and
# merges later (T5 sees both).
# ----------------------------------------------------------------------
def _long_fork(level: str) -> bool:
    if level == SERIALIZABILITY:
        t1 = ObservedTx("T1").read(A, 0).read(B, 0).write(A, 1)
        t2 = ObservedTx("T2").read(A, 1).read(B, 0)
        t3 = ObservedTx("T3").read(A, 0).read(B, 0).write(B, 1)
        t4 = ObservedTx("T4").read(A, 0).read(B, 1)
        t5 = ObservedTx("T5").read(A, 1).read(B, 1)
        return is_serializable([t1, t2, t3, t4, t5], {A: 0, B: 0})
    if level == SNAPSHOT_ISOLATION:
        # Exhaustively try every interleaving of the commit/start events;
        # the single commit order of SI makes the four reads unsatisfiable.
        return _long_fork_si_search()
    if level == PSI:
        spec = ParallelSnapshotIsolation(n_sites=2)
        t1 = spec.start_tx(0)
        spec.write(t1, A, 1)
        spec.commit_tx(t1)
        t3 = spec.start_tx(1)
        spec.write(t3, B, 1)
        spec.commit_tx(t3)
        # After both commits, the state remains forked per site.
        t2 = spec.start_tx(0)
        fork_a = spec.read(t2, A) == 1 and spec.read(t2, B) is None
        t4 = spec.start_tx(1)
        fork_b = spec.read(t4, A) is None and spec.read(t4, B) == 1
        spec.propagate_all()
        t5 = spec.start_tx(0)
        merged = spec.read(t5, A) == 1 and spec.read(t5, B) == 1
        return fork_a and fork_b and merged
    store = EventualStore(2)
    store.write(0, A, 1)
    fork_a = store.read(0, A) == 1 and store.read(0, B) is None
    store.write(1, B, 1)
    fork_b = store.read(1, A) is None and store.read(1, B) == 1
    store.sync_all()
    merged = store.read(0, A) == 1 and store.read(0, B) == 1
    return fork_a and fork_b and merged


def _long_fork_si_search() -> bool:
    """Try every schedule of the long-fork scenario under the SI spec.

    The schedule decision points are when T2 and T4 take their snapshots
    relative to T1's and T3's commits; enumerate all four combinations
    (each reader starts either before or after each writer commits) and
    check whether any produces the forked reads.
    """
    for t2_after_t1 in (True, False):
        for t2_after_t3 in (True, False):
            for t4_after_t1 in (True, False):
                for t4_after_t3 in (True, False):
                    if _try_long_fork_si(
                        t2_after_t1, t2_after_t3, t4_after_t1, t4_after_t3
                    ):
                        return True
    return False


def _try_long_fork_si(t2_after_t1, t2_after_t3, t4_after_t1, t4_after_t3) -> bool:
    spec = SnapshotIsolation()
    t1 = spec.start_tx()
    spec.write(t1, A, 1)
    t3 = spec.start_tx()
    spec.write(t3, B, 1)
    events = []
    events.append((1 if t2_after_t1 else -1, 1 if t2_after_t3 else -1, "t2"))
    events.append((1 if t4_after_t1 else -1, 1 if t4_after_t3 else -1, "t4"))
    readers = {}
    # Order: readers that start before both commits, then commit t1, then
    # readers after t1 only, then commit t3, then readers after both.
    for after1, after3, name in events:
        if after1 < 0 and after3 < 0:
            readers[name] = spec.start_tx()
    spec.commit_tx(t1)
    for after1, after3, name in events:
        if after1 > 0 and after3 < 0:
            readers[name] = spec.start_tx()
    spec.commit_tx(t3)
    for after1, after3, name in events:
        if after3 > 0:
            readers[name] = spec.start_tx()
    t2, t4 = readers["t2"], readers["t4"]
    return (
        spec.read(t2, A) == 1
        and spec.read(t2, B) is None
        and spec.read(t4, A) is None
        and spec.read(t4, B) == 1
    )


# ----------------------------------------------------------------------
# Conflicting fork: concurrent conflicting writes both commit; external
# logic merges (A becomes 3) and a later read observes the merge.
# ----------------------------------------------------------------------
def _conflicting_fork(level: str) -> bool:
    if level == SERIALIZABILITY:
        t1 = ObservedTx("T1").write(A, 1)
        t2 = ObservedTx("T2").write(A, 2)
        t3 = ObservedTx("T3").read(A, 3)
        return is_serializable([t1, t2, t3], {A: 0})
    if level == SNAPSHOT_ISOLATION:
        spec = SnapshotIsolation()
        t1 = spec.start_tx()
        t2 = spec.start_tx()
        spec.write(t1, A, 1)
        spec.write(t2, A, 2)
        return spec.commit_tx(t1) == COMMITTED and spec.commit_tx(t2) == COMMITTED
    if level == PSI:
        spec = ParallelSnapshotIsolation(n_sites=2)
        t1 = spec.start_tx(0)
        t2 = spec.start_tx(1)
        spec.write(t1, A, 1)
        spec.write(t2, A, 2)
        return spec.commit_tx(t1) == COMMITTED and spec.commit_tx(t2) == COMMITTED
    store = EventualStore(2, merge=lambda x, y: x + y)
    store.write(0, A, 1)
    store.write(1, A, 2)
    store.sync_all()
    return store.read(0, A) == 3 and store.read(1, A) == 3


_CHECKS: Dict[str, Callable[[str], bool]] = {
    "dirty_read": _dirty_read,
    "non_repeatable_read": _non_repeatable_read,
    "lost_update": _lost_update,
    "short_fork": _short_fork,
    "long_fork": _long_fork,
    "conflicting_fork": _conflicting_fork,
}


def check_anomaly(anomaly: str, level: str) -> bool:
    """Is ``anomaly`` producible under ``level``?  Executes the scenario."""
    if anomaly not in _CHECKS:
        raise ValueError("unknown anomaly %r" % (anomaly,))
    if level not in ISOLATION_LEVELS:
        raise ValueError("unknown isolation level %r" % (level,))
    return _CHECKS[anomaly](level)


def anomaly_table() -> Dict[str, Dict[str, bool]]:
    """Regenerate Fig 8 by executing every scenario against every model."""
    return {
        anomaly: {level: check_anomaly(anomaly, level) for level in ISOLATION_LEVELS}
        for anomaly in ANOMALY_NAMES
    }
