"""Executable specification of Snapshot Isolation (paper Figs 1 and 2).

This is the paper's *centralized* abstract specification: a single log, a
single monotonic timestamp source, operations executed one at a time.  It
exists to be compared against -- the distributed implementation must
emulate the return values of these operations -- and to demonstrate the
anomaly table of Fig 8.

The ``chooseOutcome`` function of Fig 2 contains one non-deterministic
choice (when a write-conflicting transaction aborted after x started, or
is still executing, the outcome may be either COMMITTED or ABORTED).
Callers control it through the ``pessimistic`` flag: optimistic (default)
commits when allowed, pessimistic aborts when allowed -- both are legal
behaviours of the spec.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional

from ..errors import TransactionStateError
from ..core.cset import CSet
from ..core.objects import ObjectId
from ..core.updates import CSetAdd, CSetDel, DataUpdate, Update, last_data, write_set

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"


@dataclass
class LogEntry:
    """A committed transaction's writes with its commit timestamp."""

    timestamp: int
    tid: str
    updates: List[Update]


@dataclass
class SpecTx:
    """Spec-level transaction attributes (Fig 1)."""

    tid: str
    start_ts: int
    updates: List[Update] = field(default_factory=list)
    status: str = "ACTIVE"
    commit_ts: Optional[int] = None
    abort_ts: Optional[int] = None

    @property
    def write_set(self):
        return write_set(self.updates)


class SnapshotIsolation:
    """The Fig 1/2 specification, executed literally."""

    def __init__(self, pessimistic: bool = False):
        self._clock = itertools.count(1)
        self.log: List[LogEntry] = []
        self.transactions: List[SpecTx] = []
        self.pessimistic = pessimistic
        self._tids = itertools.count(1)

    # ------------------------------------------------------------------
    # Operations (Fig 1)
    # ------------------------------------------------------------------
    def start_tx(self) -> SpecTx:
        tx = SpecTx(tid="si-%d" % next(self._tids), start_ts=next(self._clock))
        self.transactions.append(tx)
        return tx

    def write(self, tx: SpecTx, oid: ObjectId, data: Any) -> None:
        self._require_active(tx)
        tx.updates.append(DataUpdate(oid, data))

    def read(self, tx: SpecTx, oid: ObjectId) -> Any:
        """State of oid from x.updates and Log up to x.startTs."""
        self._require_active(tx)
        found, data = last_data(tx.updates, oid)
        if found:
            return data
        value = None
        for entry in self.log:
            if entry.timestamp > tx.start_ts:
                break
            for update in entry.updates:
                if isinstance(update, DataUpdate) and update.oid == oid:
                    value = update.data
        return value

    def set_add(self, tx: SpecTx, oid: ObjectId, elem: Hashable) -> None:
        self._require_active(tx)
        tx.updates.append(CSetAdd(oid, elem))

    def set_del(self, tx: SpecTx, oid: ObjectId, elem: Hashable) -> None:
        self._require_active(tx)
        tx.updates.append(CSetDel(oid, elem))

    def set_read(self, tx: SpecTx, oid: ObjectId) -> CSet:
        self._require_active(tx)
        cset = CSet()
        for entry in self.log:
            if entry.timestamp > tx.start_ts:
                break
            self._fold_cset(cset, entry.updates, oid)
        self._fold_cset(cset, tx.updates, oid)
        return cset

    def commit_tx(self, tx: SpecTx) -> str:
        self._require_active(tx)
        tx.commit_ts = next(self._clock)
        tx.status = self._choose_outcome(tx)
        if tx.status == COMMITTED:
            self.log.append(LogEntry(tx.commit_ts, tx.tid, list(tx.updates)))
        else:
            tx.abort_ts = tx.commit_ts
            tx.commit_ts = None
        return tx.status

    def abort_tx(self, tx: SpecTx) -> str:
        self._require_active(tx)
        tx.status = ABORTED
        tx.abort_ts = next(self._clock)
        return tx.status

    # ------------------------------------------------------------------
    # chooseOutcome (Fig 2)
    # ------------------------------------------------------------------
    def _choose_outcome(self, tx: SpecTx) -> str:
        conflicting_committed = any(
            other.status == COMMITTED
            and other.commit_ts is not None
            and other.commit_ts > tx.start_ts
            and self._write_conflict(tx, other)
            for other in self.transactions
            if other is not tx
        )
        if conflicting_committed:
            return ABORTED
        conflicting_pending = any(
            (
                (other.status == ABORTED and (other.abort_ts or 0) > tx.start_ts)
                or other.status == "ACTIVE"
            )
            and self._write_conflict(tx, other)
            for other in self.transactions
            if other is not tx
        )
        if conflicting_pending:
            return ABORTED if self.pessimistic else COMMITTED
        return COMMITTED

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _write_conflict(a: SpecTx, b: SpecTx) -> bool:
        return bool(a.write_set & b.write_set)

    @staticmethod
    def _fold_cset(cset: CSet, updates: List[Update], oid: ObjectId) -> None:
        for update in updates:
            if isinstance(update, CSetAdd) and update.oid == oid:
                cset.add(update.elem)
            elif isinstance(update, CSetDel) and update.oid == oid:
                cset.rem(update.elem)

    @staticmethod
    def _require_active(tx: SpecTx) -> None:
        if tx.status != "ACTIVE":
            raise TransactionStateError("spec transaction %s is %s" % (tx.tid, tx.status))

    def committed_value(self, oid: ObjectId) -> Any:
        """Latest committed value (reads from the log's end)."""
        value = None
        for entry in self.log:
            for update in entry.updates:
                if isinstance(update, DataUpdate) and update.oid == oid:
                    value = update.data
        return value
