"""Bounded-search *acceptance* checkers for tiny histories.

Where the witness oracles in :mod:`repro.protocols.oracles` verify a run
against the witness its protocol recorded, these checkers answer the
pure acceptance question -- "does ANY witness exist?" -- by exhaustive
search.  They are exponential and only meant for the property-based
lattice tests (histories of <= ~5 transactions), where they make the
inclusion lattice executable:

    accepts_strict_serializable => accepts_snapshot_isolation
        => accepts_psi => accepts_nmsi => accepts_eventual

All four snapshot-family levels share one semantic skeleton: choose a
global chain order (per-key version order) and, per committed
transaction, a dependency-closed snapshot set that explains its reads
and orders write-conflicting transactions.  The levels differ only in
which extra constraints the snapshot assignment must satisfy:

* strict serializability -- snapshot = everything before me in a total
  order that respects real time;
* (strong) snapshot isolation -- snapshots are prefixes of the chain
  order and contain every transaction that finished before I began;
* PSI -- snapshots are per-site monotone (a transaction sees everything
  a same-site predecessor saw, and the predecessor itself);
* NMSI -- any dependency-closed, conflict-ordering snapshot;
* eventual -- reads may observe any written value (or the initial
  state), but never a fabricated one.

Timing is part of the model: each :class:`LiteTx` carries a real-time
interval ``[begin, end]``.  This is what makes the chain a chain -- the
operational SI/PSI specifications bind snapshots to session/real time,
which is why plain (timing-blind) serializability sits on a side branch
of the lattice rather than between strict serializability and SI (see
:mod:`repro.protocols.levels`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Sequence, Tuple

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"

#: ("read", key, observed_value) or ("write", key, value)
LiteOp = Tuple[str, str, Any]


@dataclass(frozen=True)
class LiteTx:
    """One transaction of a tiny acceptance-test history."""

    tid: str
    site: int
    begin: float
    end: float
    status: str
    ops: Tuple[LiteOp, ...]

    def writes(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for kind, key, value in self.ops:
            if kind == "write":
                out[key] = value
        return out

    def write_set(self) -> FrozenSet[str]:
        return frozenset(self.writes())


def _committed(history: Sequence[LiteTx]) -> List[LiteTx]:
    return [t for t in history if t.status == COMMITTED]


def _reads_explained(tx: LiteTx, snapshot: Sequence[LiteTx]) -> bool:
    """Do ``tx``'s reads match the last writer per key in ``snapshot``
    (own buffered writes win)?  ``snapshot`` is in chain order."""
    state: Dict[str, Any] = {}
    for u in snapshot:
        state.update(u.writes())
    buffered: Dict[str, Any] = {}
    for kind, key, value in tx.ops:
        if kind == "write":
            buffered[key] = value
        else:
            expected = buffered.get(key, state.get(key))
            if value != expected:
                return False
    return True


def _respects_real_time(order: Sequence[LiteTx]) -> bool:
    position = {t.tid: i for i, t in enumerate(order)}
    for a in order:
        for b in order:
            if a.end < b.begin and position[a.tid] > position[b.tid]:
                return False
    return True


def accepts_eventual(history: Sequence[LiteTx]) -> bool:
    """Reads never fabricate: every observed value was written by
    someone (any status; replicas may expose uncommitted state) or is
    the initial ``None``."""
    written: Dict[str, set] = {}
    for t in history:
        for key, value in t.writes().items():
            written.setdefault(key, set()).add(value)
    for t in _committed(history):
        buffered: Dict[str, Any] = {}
        for kind, key, value in t.ops:
            if kind == "write":
                buffered[key] = value
            elif key not in buffered:
                if value is not None and value not in written.get(key, set()):
                    return False
    return True


def accepts_serializable(history: Sequence[LiteTx]) -> bool:
    """Timing-blind: some serial order explains every committed read."""
    txs = _committed(history)
    return any(
        all(_reads_explained(t, order[:i]) for i, t in enumerate(order))
        for order in itertools.permutations(txs)
    )


def accepts_strict_serializable(history: Sequence[LiteTx]) -> bool:
    """Some serial order that respects real time explains every read."""
    txs = _committed(history)
    for order in itertools.permutations(txs):
        if not _respects_real_time(order):
            continue
        if all(_reads_explained(t, order[:i]) for i, t in enumerate(order)):
            return True
    return False


def _conflicts_ordered(
    txs: Sequence[LiteTx], snapshots: Dict[str, FrozenSet[str]]
) -> bool:
    """Write-conflicting committed transactions must be snapshot-ordered
    (one observed the other) -- the no-lost-update rule."""
    for i, a in enumerate(txs):
        for b in txs[i + 1:]:
            if not (a.write_set() & b.write_set()):
                continue
            if a.tid not in snapshots[b.tid] and b.tid not in snapshots[a.tid]:
                return False
    return True


def accepts_snapshot_isolation(history: Sequence[LiteTx]) -> bool:
    """Strong SI: a single commit order; snapshots are prefixes of it,
    within real time (everything that finished before I began is in my
    snapshot, and I commit after my snapshot point)."""
    txs = _committed(history)
    for order in itertools.permutations(txs):
        if not _respects_real_time(order):
            continue
        position = {t.tid: i for i, t in enumerate(order)}
        choices: List[List[int]] = []
        for t in order:
            lower = 0
            for u in txs:
                if u.end < t.begin:
                    lower = max(lower, position[u.tid] + 1)
            choices.append(list(range(lower, position[t.tid] + 1)))
        for snaps in itertools.product(*choices):
            snapshots = {
                t.tid: frozenset(u.tid for u in order[: snaps[i]])
                for i, t in enumerate(order)
            }
            if not _conflicts_ordered(txs, snapshots):
                continue
            if all(
                _reads_explained(t, order[: snaps[i]]) for i, t in enumerate(order)
            ):
                return True
    return False


def _snapshot_search(history: Sequence[LiteTx], monotonic_sites: bool) -> bool:
    """Shared PSI/NMSI search: a chain order plus per-transaction
    dependency-closed snapshot sets drawn from each transaction's chain
    past."""
    txs = _committed(history)
    for order in itertools.permutations(txs):
        position = {t.tid: i for i, t in enumerate(order)}
        by_tid = {t.tid: t for t in txs}
        past = {t.tid: [u.tid for u in order[: position[t.tid]]] for t in txs}
        choices = [
            [frozenset(c) for r in range(len(past[t.tid]) + 1)
             for c in itertools.combinations(past[t.tid], r)]
            for t in order
        ]
        for assignment in itertools.product(*choices):
            snapshots = {t.tid: assignment[i] for i, t in enumerate(order)}
            ok = True
            for t in order:
                snap = snapshots[t.tid]
                # Dependency closure.
                if any(not snapshots[u] <= snap for u in snap):
                    ok = False
                    break
                if monotonic_sites:
                    # Session/site monotonicity: a same-site predecessor
                    # (in real time) and its snapshot are included.
                    for u in txs:
                        if u.tid != t.tid and u.site == t.site and u.end < t.begin:
                            if u.tid not in snap or not snapshots[u.tid] <= snap:
                                ok = False
                                break
                    if not ok:
                        break
            if not ok:
                continue
            if not _conflicts_ordered(txs, snapshots):
                continue
            if all(
                _reads_explained(
                    t,
                    [u for u in order if u.tid in snapshots[t.tid]],
                )
                for t in order
            ):
                return True
    return False


def accepts_psi(history: Sequence[LiteTx]) -> bool:
    """PSI: dependency-closed snapshots, conflict ordering, and per-site
    monotone sessions."""
    return _snapshot_search(history, monotonic_sites=True)


def accepts_nmsi(history: Sequence[LiteTx]) -> bool:
    """NMSI: dependency-closed snapshots and conflict ordering only --
    snapshots may go backwards between a session's transactions."""
    return _snapshot_search(history, monotonic_sites=False)


#: The operational chain, strongest first, as (level name, checker).
ACCEPTANCE_CHAIN = [
    ("strict_serializability", accepts_strict_serializable),
    ("snapshot_isolation", accepts_snapshot_isolation),
    ("psi", accepts_psi),
    ("nmsi", accepts_nmsi),
    ("eventual", accepts_eventual),
]
