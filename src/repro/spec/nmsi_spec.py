"""Executable specification of Non-Monotonic Snapshot Isolation.

NMSI (Ardekani, Sutra, Shapiro: "Non-Monotonic Snapshot Isolation")
keeps two of PSI's guarantees -- write-conflict freedom (no lost
updates) and consistent snapshots -- but drops snapshot *monotonicity*:
a transaction's snapshot is any dependency-closed, per-key-consistent
set of committed transactions, not a prefix of some site's commit order.
Two transactions, even consecutive ones of the same client, may observe
incomparable snapshots.

This centralized engine mirrors :mod:`repro.spec.si_spec` /
:mod:`repro.spec.psi_spec` in style: operations execute one at a time
against a single committed-transaction log.  Where SI's read is
deterministic (snapshot = timestamp prefix), NMSI's read carries the
spec's essential non-determinism explicitly: ``read(tx, oid, at=...)``
lets the caller pick *which* committed version to observe (default: the
newest consistent one), and the engine validates the choice:

* dependency floor: if the transaction's dependency closure already
  contains a writer of ``oid``, it cannot observe anything older;
* snapshot consistency: the chosen version's dependency closure must not
  contain a writer of an already-read object newer than the version the
  transaction observed.

Commit enforces write-conflict freedom against the committed state: a
read-modify-write must have observed the newest committed version of
every object it writes (else: lost update, abort); a blind write adopts
the overwritten version into its dependencies, keeping each object's
committed versions totally ordered by dependency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set

from ..core.objects import ObjectId
from ..core.updates import DataUpdate, Update, last_data, write_set
from ..errors import TransactionStateError

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"


class _At:
    """Sentinel for the ``at=`` argument of :meth:`read`."""

    __slots__ = ("_label",)

    def __init__(self, label):
        self._label = label

    def __repr__(self):
        return "<%s>" % self._label


#: Default for ``read(..., at=NEWEST)``: the newest consistent version.
NEWEST = _At("newest")

#: Pass ``at=INITIAL`` to read the initial (pre-history) state.
INITIAL = _At("initial")


@dataclass
class NMSICommit:
    """A committed transaction: its writes plus dependency closure."""

    tid: str
    updates: List[Update]
    #: Transitive dependency closure (committed tids), not including self.
    deps: FrozenSet[str]

    @property
    def write_set(self):
        return write_set(self.updates)


@dataclass
class NMSISpecTx:
    tid: str
    updates: List[Update] = field(default_factory=list)
    status: str = "ACTIVE"
    #: Dependency closure accumulated from reads (committed tids).
    deps: Set[str] = field(default_factory=set)
    #: oid -> tid of the version observed (None = initial state).
    read_vers: Dict[ObjectId, Optional[str]] = field(default_factory=dict)

    @property
    def write_set(self):
        return write_set(self.updates)


class NonMonotonicSnapshotIsolation:
    """The NMSI specification, executed literally."""

    def __init__(self):
        self.commits: List[NMSICommit] = []
        self.by_tid: Dict[str, NMSICommit] = {}
        self.transactions: List[NMSISpecTx] = []
        self._tids = itertools.count(1)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def start_tx(self) -> NMSISpecTx:
        tx = NMSISpecTx(tid="nmsi-%d" % next(self._tids))
        self.transactions.append(tx)
        return tx

    def write(self, tx: NMSISpecTx, oid: ObjectId, data: Any) -> None:
        self._require_active(tx)
        tx.updates.append(DataUpdate(oid, data))

    def read(self, tx: NMSISpecTx, oid: ObjectId, at=NEWEST) -> Any:
        """Observe ``oid``.  ``at`` picks the version: ``NEWEST``
        (default) takes the newest consistent committed version,
        ``INITIAL`` the pre-history state, a committed tid that exact
        version.  Raises :class:`TransactionStateError` if the choice
        would not extend ``tx``'s snapshot consistently."""
        self._require_active(tx)
        found, data = last_data(tx.updates, oid)
        if found:
            return data
        if oid in tx.read_vers:
            chosen = tx.read_vers[oid]
            return None if chosen is None else self._value_of(chosen, oid)
        chain = self._writers_of(oid)
        floor = self._floor(tx, chain)
        if at is NEWEST:
            for rec in reversed(chain if floor is None else chain[chain.index(floor):]):
                if self._consistent(tx, rec):
                    return self._observe(tx, oid, rec)
            if floor is not None:
                raise TransactionStateError(
                    "%s has no consistent snapshot extension for %s" % (tx.tid, oid)
                )
            return self._observe(tx, oid, None)
        if at is INITIAL:
            if floor is not None:
                raise TransactionStateError(
                    "%s already depends on %s's write of %s; cannot read the "
                    "initial state" % (tx.tid, floor.tid, oid)
                )
            return self._observe(tx, oid, None)
        rec = self.by_tid.get(at)
        if rec is None or oid not in rec.write_set:
            raise TransactionStateError("%r is not a committed writer of %s" % (at, oid))
        if floor is not None and chain.index(rec) < chain.index(floor):
            raise TransactionStateError(
                "%s already depends on the newer version %s of %s"
                % (tx.tid, floor.tid, oid)
            )
        if not self._consistent(tx, rec):
            raise TransactionStateError(
                "reading %s of %s would make %s's snapshot inconsistent"
                % (rec.tid, oid, tx.tid)
            )
        return self._observe(tx, oid, rec)

    def commit_tx(self, tx: NMSISpecTx) -> str:
        self._require_active(tx)
        for oid in tx.write_set:
            chain = self._writers_of(oid)
            latest = chain[-1] if chain else None
            if oid in tx.read_vers:
                # Read-modify-write: must have observed the newest version.
                if (latest.tid if latest else None) != tx.read_vers[oid]:
                    tx.status = ABORTED
                    return tx.status
            elif latest is not None:
                # Blind write: depend on the overwritten version, keeping
                # the object's versions dependency-ordered.
                tx.deps |= latest.deps | {latest.tid}
        tx.status = COMMITTED
        rec = NMSICommit(tid=tx.tid, updates=list(tx.updates), deps=frozenset(tx.deps))
        self.commits.append(rec)
        self.by_tid[tx.tid] = rec
        return tx.status

    def abort_tx(self, tx: NMSISpecTx) -> str:
        self._require_active(tx)
        tx.status = ABORTED
        return tx.status

    # ------------------------------------------------------------------
    # Snapshot machinery
    # ------------------------------------------------------------------
    def _writers_of(self, oid: ObjectId) -> List[NMSICommit]:
        """Committed writers of ``oid`` in commit order (== dependency
        order, by write-conflict freedom)."""
        return [rec for rec in self.commits if oid in rec.write_set]

    def _floor(self, tx: NMSISpecTx, chain: List[NMSICommit]) -> Optional[NMSICommit]:
        """The newest writer already inside ``tx``'s dependency closure."""
        for rec in reversed(chain):
            if rec.tid in tx.deps:
                return rec
        return None

    def _consistent(self, tx: NMSISpecTx, candidate: NMSICommit) -> bool:
        closure = candidate.deps | {candidate.tid}
        for prev_oid, read_tid in tx.read_vers.items():
            chain = self._writers_of(prev_oid)
            newer = chain if read_tid is None else chain[
                [r.tid for r in chain].index(read_tid) + 1:
            ]
            if any(rec.tid in closure for rec in newer):
                return False
        return True

    def _observe(self, tx: NMSISpecTx, oid: ObjectId, rec: Optional[NMSICommit]) -> Any:
        if rec is None:
            tx.read_vers[oid] = None
            return None
        tx.deps |= rec.deps | {rec.tid}
        tx.read_vers[oid] = rec.tid
        return self._value_of(rec.tid, oid)

    def _value_of(self, tid: str, oid: ObjectId) -> Any:
        found, data = last_data(self.by_tid[tid].updates, oid)
        if not found:
            raise KeyError((tid, oid))
        return data

    @staticmethod
    def _require_active(tx: NMSISpecTx) -> None:
        if tx.status != "ACTIVE":
            raise TransactionStateError("spec transaction %s is %s" % (tx.tid, tx.status))

    # ------------------------------------------------------------------
    # Observer helpers
    # ------------------------------------------------------------------
    def committed_value(self, oid: ObjectId) -> Any:
        chain = self._writers_of(oid)
        if not chain:
            return None
        found, data = last_data(chain[-1].updates, oid)
        return data if found else None
