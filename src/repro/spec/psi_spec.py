"""Executable specification of Parallel Snapshot Isolation (Figs 4, 5, 7).

Centralized, like the SI spec, but with one log per site and a per-site
commit timestamp vector for each transaction.  The asynchronous
propagation of the paper's ``upon`` statement is exposed as an explicit
:meth:`propagate` step so tests can drive any legal propagation schedule;
:meth:`propagate_all` runs it to fixpoint.

The ``upon`` guard (second line in Fig 4) is what enforces causality: a
transaction x may propagate to site s only after every transaction in x's
snapshot (committed at site(x) before x started) has propagated to s.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional

from ..errors import TransactionStateError
from ..core.cset import CSet
from ..core.objects import ObjectId
from ..core.updates import CSetAdd, CSetDel, DataUpdate, Update, last_data, write_set

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"


@dataclass
class PSILogEntry:
    timestamp: int
    tid: str
    updates: List[Update]


@dataclass
class PSITx:
    """Spec transaction with a per-site commit timestamp vector (Fig 4)."""

    tid: str
    site: int
    start_ts: int
    n_sites: int
    updates: List[Update] = field(default_factory=list)
    status: str = "ACTIVE"
    commit_ts: List[Optional[int]] = field(default_factory=list)
    abort_ts: Optional[int] = None

    def __post_init__(self):
        if not self.commit_ts:
            self.commit_ts = [None] * self.n_sites

    @property
    def write_set(self):
        return write_set(self.updates)

    def committed_everywhere(self) -> bool:
        return self.status == COMMITTED and all(ts is not None for ts in self.commit_ts)


class ParallelSnapshotIsolation:
    """The Fig 4/5/7 specification, executed literally."""

    def __init__(self, n_sites: int, pessimistic: bool = False):
        if n_sites < 1:
            raise ValueError("need at least one site")
        self.n_sites = n_sites
        self._clock = itertools.count(1)
        self.logs: List[List[PSILogEntry]] = [[] for _ in range(n_sites)]
        self.transactions: List[PSITx] = []
        self.pessimistic = pessimistic
        self._tids = itertools.count(1)

    # ------------------------------------------------------------------
    # Operations (Figs 4 and 7)
    # ------------------------------------------------------------------
    def start_tx(self, site: int) -> PSITx:
        self._check_site(site)
        tx = PSITx(
            tid="psi-%d" % next(self._tids),
            site=site,
            start_ts=next(self._clock),
            n_sites=self.n_sites,
        )
        self.transactions.append(tx)
        return tx

    def write(self, tx: PSITx, oid: ObjectId, data: Any) -> None:
        self._require_active(tx)
        tx.updates.append(DataUpdate(oid, data))

    def read(self, tx: PSITx, oid: ObjectId) -> Any:
        """State of oid from x.updates and Log[site(x)] up to x.startTs."""
        self._require_active(tx)
        found, data = last_data(tx.updates, oid)
        if found:
            return data
        value = None
        for entry in self.logs[tx.site]:
            if entry.timestamp > tx.start_ts:
                continue
            for update in entry.updates:
                if isinstance(update, DataUpdate) and update.oid == oid:
                    value = update.data
        return value

    def set_add(self, tx: PSITx, oid: ObjectId, elem: Hashable) -> None:
        self._require_active(tx)
        tx.updates.append(CSetAdd(oid, elem))

    def set_del(self, tx: PSITx, oid: ObjectId, elem: Hashable) -> None:
        self._require_active(tx)
        tx.updates.append(CSetDel(oid, elem))

    def set_read(self, tx: PSITx, oid: ObjectId) -> CSet:
        """Fig 7: fold ADD/DEL from Log[site(x)] up to startTs plus buffer."""
        self._require_active(tx)
        cset = CSet()
        for entry in self.logs[tx.site]:
            if entry.timestamp > tx.start_ts:
                continue
            self._fold_cset(cset, entry.updates, oid)
        self._fold_cset(cset, tx.updates, oid)
        return cset

    def set_read_id(self, tx: PSITx, oid: ObjectId, elem: Hashable) -> int:
        """§3.3 extension: count of a single element."""
        return self.set_read(tx, oid).count(elem)

    def commit_tx(self, tx: PSITx) -> str:
        self._require_active(tx)
        ts = next(self._clock)
        tx.status = self._choose_outcome(tx)
        if tx.status == COMMITTED:
            tx.commit_ts[tx.site] = ts
            self.logs[tx.site].append(PSILogEntry(ts, tx.tid, list(tx.updates)))
        else:
            tx.abort_ts = ts
        return tx.status

    def abort_tx(self, tx: PSITx) -> str:
        self._require_active(tx)
        tx.status = ABORTED
        tx.abort_ts = next(self._clock)
        return tx.status

    # ------------------------------------------------------------------
    # Propagation (the upon statement of Fig 4)
    # ------------------------------------------------------------------
    def can_propagate(self, tx: PSITx, site: int) -> bool:
        """The upon-statement guard for propagating ``tx`` to ``site``."""
        self._check_site(site)
        if tx.status != COMMITTED or tx.commit_ts[site] is not None:
            return False
        # ∀y: y.commitTs[site(x)] < x.startTs ⇒ y.commitTs[s] ≠ ⊥
        for other in self.transactions:
            if other is tx or other.status != COMMITTED:
                continue
            committed_at_home = other.commit_ts[tx.site]
            if committed_at_home is not None and committed_at_home < tx.start_ts:
                if other.commit_ts[site] is None:
                    return False
        return True

    def propagate(self, tx: PSITx, site: int) -> None:
        """Commit ``tx`` at remote ``site`` (one firing of the upon stmt)."""
        if not self.can_propagate(tx, site):
            raise TransactionStateError(
                "cannot propagate %s to site %d yet" % (tx.tid, site)
            )
        ts = next(self._clock)
        tx.commit_ts[site] = ts
        self.logs[site].append(PSILogEntry(ts, tx.tid, list(tx.updates)))

    def propagate_all(self) -> int:
        """Fire the upon statement until no transaction can propagate."""
        fired = 0
        progress = True
        while progress:
            progress = False
            for tx in self.transactions:
                for site in range(self.n_sites):
                    if self.can_propagate(tx, site):
                        self.propagate(tx, site)
                        fired += 1
                        progress = True
        return fired

    # ------------------------------------------------------------------
    # chooseOutcome (Fig 5)
    # ------------------------------------------------------------------
    def _choose_outcome(self, tx: PSITx) -> str:
        for other in self.transactions:
            if other is tx or not self._write_conflict(tx, other):
                continue
            committed_here = other.commit_ts[tx.site]
            committed_after_start = (
                other.status == COMMITTED
                and committed_here is not None
                and committed_here > tx.start_ts
            )
            # "propagating to site(x)": committed but not yet at site(x).
            propagating_here = other.status == COMMITTED and committed_here is None
            if committed_after_start or propagating_here:
                return ABORTED
        for other in self.transactions:
            if other is tx or not self._write_conflict(tx, other):
                continue
            aborted_after_start = (
                other.status == ABORTED and (other.abort_ts or 0) > tx.start_ts
            )
            if aborted_after_start or other.status == "ACTIVE":
                return ABORTED if self.pessimistic else COMMITTED
        return COMMITTED

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _write_conflict(a: PSITx, b: PSITx) -> bool:
        return bool(a.write_set & b.write_set)

    @staticmethod
    def _fold_cset(cset: CSet, updates: List[Update], oid: ObjectId) -> None:
        for update in updates:
            if isinstance(update, CSetAdd) and update.oid == oid:
                cset.add(update.elem)
            elif isinstance(update, CSetDel) and update.oid == oid:
                cset.rem(update.elem)

    @staticmethod
    def _require_active(tx: PSITx) -> None:
        if tx.status != "ACTIVE":
            raise TransactionStateError("spec transaction %s is %s" % (tx.tid, tx.status))

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.n_sites:
            raise ValueError("site %d out of range [0, %d)" % (site, self.n_sites))

    def site_value(self, site: int, oid: ObjectId) -> Any:
        """Latest committed regular value at a site (observer helper)."""
        value = None
        for entry in self.logs[site]:
            for update in entry.updates:
                if isinstance(update, DataUpdate) and update.oid == oid:
                    value = update.data
        return value

    def site_cset(self, site: int, oid: ObjectId) -> CSet:
        """Current cset state at a site (observer helper)."""
        cset = CSet()
        for entry in self.logs[site]:
            self._fold_cset(cset, entry.updates, oid)
        return cset
