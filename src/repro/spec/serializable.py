"""Serializability reference model.

For the Fig 8 anomaly table we need to decide whether an *observed*
execution (a set of transactions with the reads they saw and the writes
they made) is serializable.  The observation sets are tiny (2-5
transactions), so a brute-force check over all serial orders is exact and
fast: replay each permutation sequentially from the initial state and
accept if every read matches what the transaction observed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..core.objects import ObjectId


@dataclass
class ObservedTx:
    """A transaction's externally observed behaviour.

    ``ops`` is the program-order list of operations:
    ``("read", oid, observed_value)`` or ``("write", oid, value)``.
    """

    tid: str
    ops: List[Tuple] = field(default_factory=list)

    def read(self, oid: ObjectId, value: Any) -> "ObservedTx":
        self.ops.append(("read", oid, value))
        return self

    def write(self, oid: ObjectId, value: Any) -> "ObservedTx":
        self.ops.append(("write", oid, value))
        return self


def replay_serial(
    order: List[ObservedTx], initial: Dict[ObjectId, Any]
) -> bool:
    """Replay transactions in ``order``; True iff every read matches."""
    state = dict(initial)
    for tx in order:
        for op in tx.ops:
            if op[0] == "read":
                _kind, oid, expected = op
                if state.get(oid) != expected:
                    return False
            else:
                _kind, oid, value = op
                state[oid] = value
    return True


def is_serializable(
    observed: List[ObservedTx], initial: Dict[ObjectId, Any]
) -> bool:
    """True iff some serial order of ``observed`` explains every read."""
    return any(
        replay_serial(list(order), initial)
        for order in itertools.permutations(observed)
    )


def is_strictly_serializable(
    observed: List[ObservedTx],
    initial: Dict[ObjectId, Any],
    precedes: List[Tuple[str, str]],
) -> bool:
    """True iff some serial order that *respects real-time order*
    explains every read.

    ``precedes`` lists the real-time edges ``(a, b)``: transaction ``a``
    finished (its commit returned) before ``b`` started, so any
    admissible serial order must place ``a`` before ``b``.  With an
    empty ``precedes`` this degenerates to plain serializability; with
    the full real-time order it is the linearizability-style strict
    variant the Consus-flavored protocol must satisfy.
    """
    edges = [(a, b) for a, b in precedes]
    for order in itertools.permutations(observed):
        position = {tx.tid: i for i, tx in enumerate(order)}
        if any(position[a] > position[b] for a, b in edges if a in position and b in position):
            continue
        if replay_serial(list(order), initial):
            return True
    return False
