"""Deployment assembly: sites, servers, storage, clients, recovery.

A :class:`Deployment` wires a full Walter installation over the simulated
substrate: one :class:`~repro.server.WalterServer` per site on the EC2
topology (§8.1), a shared configuration view, per-site replicated cluster
storage, and client factories.  It also exposes the failure-handling
workflows of §5.7 (server replacement, site removal, re-integration) as
one-call operations used by tests and examples.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Set

from .client import WalterClient
from .core.objects import Container
from .core.versions import Version
from .net import Host, Network, Topology
from .obs import Observability
from .server import LeaseConfig, LocalConfig, ServerCosts, SiteRecoveryCoordinator, WalterServer
from .sim import Kernel, RandomStreams
from .spec.checker import ExecutionTrace
from .storage import FLUSH_EC2, SiteStorage

_deploy_seq = itertools.count(1)


class Deployment:
    """A complete multi-site Walter installation in one simulation."""

    #: Fault-injection hook (see :class:`~repro.server.recovery.RecoveryMixin`):
    #: propagated to every server the deployment creates, including
    #: replacements.  Only the chaos harness's self-test sets this.
    _chaos_bug: Optional[str] = None

    @property
    def chaos_bug(self) -> Optional[str]:
        return self._chaos_bug

    @chaos_bug.setter
    def chaos_bug(self, value: Optional[str]) -> None:
        # The harness assigns this *after* construction, so propagate to
        # the already-running servers, not just future replacements.
        self._chaos_bug = value
        for server in getattr(self, "servers", ()):
            server.chaos_bug = value

    def __init__(
        self,
        n_sites: int = 4,
        topology: Optional[Topology] = None,
        seed: int = 0,
        costs: Optional[ServerCosts] = None,
        flush_latency: float = FLUSH_EC2,
        f: int = 1,
        ds_mode: str = "all_sites",
        trace: bool = False,
        jitter_frac: float = 0.05,
        anti_starvation: bool = False,
        tracing=False,
        trace_capacity: int = 8192,
        lease_sweeper: bool = False,
        leases: Optional[LeaseConfig] = None,
    ):
        self.kernel = Kernel()
        self.streams = RandomStreams(seed)
        self.topology = topology or Topology.ec2(n_sites)
        self.n_sites = len(self.topology)
        #: Shared observability: the metrics registry is always on;
        #: per-transaction span tracing is enabled with ``tracing=True``,
        #: and ``tracing="deep"`` additionally records commit-path
        #: milestones and causal parent edges (critical-path input).
        self.obs = Observability(tracing=tracing, trace_capacity=trace_capacity)
        self.network = Network(
            self.kernel, self.topology, streams=self.streams, jitter_frac=jitter_frac
        )
        self.network.bind_metrics(self.obs.registry)
        self.config = LocalConfig(self.n_sites)
        self.trace = ExecutionTrace(n_sites=self.n_sites) if trace else None
        self.costs = costs or ServerCosts()
        self.f = f
        self.ds_mode = ds_mode
        self.anti_starvation = anti_starvation
        #: Lease-based commit-path reaping (DESIGN.md §9).  Off by
        #: default -- unit tests may legitimately hold transactions open
        #: across long stretches of sim time; the chaos harness (and any
        #: long-lived deployment) turns it on, including for replacement
        #: and re-integrated servers.
        self.lease_sweeper = lease_sweeper
        self.leases = leases or LeaseConfig()
        self._deploy_id = next(_deploy_seq)
        #: Versions legitimately sacrificed by aggressive site removal
        #: (§5.7): committed at the failed site but never propagated.
        #: The chaos durability oracle excludes these from "lost".
        self.abandoned_versions: Set[Version] = set()

        self.storages: List[SiteStorage] = [
            SiteStorage(self.kernel, site, flush_latency, name="disk-%d-%d" % (self._deploy_id, site))
            for site in range(self.n_sites)
        ]
        for storage in self.storages:
            storage.bind_metrics(self.obs.registry)
            if self.obs.tracer is not None:
                storage.bind_tracer(self.obs.tracer)
        self.addresses: Dict[int, str] = {
            site: "walter-%d-%d" % (self._deploy_id, site) for site in range(self.n_sites)
        }
        self.servers: List[WalterServer] = [
            self._make_server(site) for site in range(self.n_sites)
        ]
        for server in self.servers:
            self._boot(server)
        self._client_seq = itertools.count(1)
        self._container_seq = itertools.count(1)

    def _make_server(self, site: int, takeover: bool = False) -> WalterServer:
        server = WalterServer(
            self.kernel,
            self.network,
            site_id=site,
            name=self.addresses[site],
            config=self.config,
            storage=self.storages[site],
            peers=self.addresses,
            costs=self.costs,
            f=self.f,
            ds_mode=self.ds_mode,
            trace=self.trace,
            anti_starvation=self.anti_starvation,
            takeover=takeover,
            obs=self.obs,
            leases=self.leases,
        )
        server.chaos_bug = self.chaos_bug
        return server

    def _boot(self, server: WalterServer) -> WalterServer:
        server.start()
        if self.lease_sweeper:
            server.start_sweeper()
        return server

    # ------------------------------------------------------------------
    # Topology/objects
    # ------------------------------------------------------------------
    def server(self, site: int) -> WalterServer:
        return self.servers[site]

    def create_container(
        self,
        cid: Optional[str] = None,
        preferred_site: int = 0,
        replica_sites=None,
    ) -> Container:
        """Register a container; default replication is all sites (the
        WaltSocial configuration: 'replicated at all sites to optimize for
        reads', §7)."""
        if cid is None:
            cid = "container-%d" % next(self._container_seq)
        if replica_sites is None:
            replica_sites = range(self.n_sites)
        container = Container(cid, preferred_site, frozenset(replica_sites))
        return self.config.register(container)

    def new_client(self, site: int, name: Optional[str] = None, retry=None) -> WalterClient:
        # No deploy id in the default name: client names feed into tids,
        # and traces must be byte-identical across same-seed runs.
        name = name or "client-%d-%d" % (site, next(self._client_seq))
        client = WalterClient(
            self.kernel,
            self.network,
            site,
            name,
            server_address=self.addresses[site],
            config=self.config,
            retry=retry,
            obs=self.obs,
        )
        client.start()
        return client

    def preload(self, values) -> None:
        """Seed objects as already-committed, fully-propagated site-0
        transactions (used by benchmarks to populate the store without
        simulating millions of warm-up writes).

        ``values`` maps ObjectId -> bytes (regular) or, for csets, an
        iterable of elements, a ``{elem: count}`` dict, or a CSet.
        """
        from .core.cset import CSet
        from .core.transaction import CommitRecord
        from .core.updates import CSetAdd, CSetDel, DataUpdate
        from .core.versions import Version

        seq = self.servers[0].curr_seqno
        start_vts = self.servers[0].committed_vts
        for oid, value in values.items():
            seq += 1
            version = Version(0, seq)
            if oid.is_cset:
                counts = value.counts() if isinstance(value, CSet) else value
                if isinstance(counts, dict):
                    updates = []
                    for elem, count in counts.items():
                        op = CSetAdd if count > 0 else CSetDel
                        updates.extend(op(oid, elem) for _ in range(abs(count)))
                else:
                    updates = [CSetAdd(oid, elem) for elem in counts]
            else:
                updates = [DataUpdate(oid, value)]
            record = CommitRecord(
                tid="preload-%d" % seq,
                site=0,
                seqno=seq,
                start_vts=start_vts,
                updates=updates,
            )
            for server in self.servers:
                server.histories.apply(updates, version)
                server._records_by_version[version] = record
            if self.trace is not None:
                from .spec.checker import TracedTx

                self.trace.record_commit(
                    TracedTx(record.tid, 0, start_vts, version, updates, frozenset(
                        u.oid for u in updates if isinstance(u, DataUpdate)
                    ))
                )
                for site in range(self.n_sites):
                    self.trace.record_site_commit(site, version)
        for server in self.servers:
            server.got_vts = server.got_vts.with_entry(0, seq)
            server.committed_vts = server.committed_vts.with_entry(0, seq)
        self.servers[0].curr_seqno = seq

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        return self.kernel.run(until=until)

    def run_process(self, gen: Generator, within: float = 60.0):
        """Spawn a process and run the world until it finishes."""
        return self.kernel.run_process(gen, until=self.kernel.now + within)

    def settle(self, duration: float = 2.0) -> None:
        """Let in-flight propagation finish."""
        self.kernel.run(until=self.kernel.now + duration)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_snapshot(self):
        """Deterministic dump of every counter/gauge/histogram.  GC
        gauges (watermark, history entries, commit records) are refreshed
        first so they are current even if a server's GC loop is off."""
        for server in self.servers:
            server._refresh_gc_gauges()
        snap = self.obs.snapshot()
        snap["access_profile"] = {
            site: server.profiler.as_dict()
            for site, server in enumerate(self.servers)
        }
        return snap

    def gc_watermarks(self) -> Dict[int, "VectorTimestamp"]:
        """Per-site GC watermarks (meet of CommittedVTS with every active
        transaction's startVTS) -- what a GC pass at each site would use."""
        return {site: server.gc_watermark() for site, server in enumerate(self.servers)}

    def lag_report(self):
        """Per-site replication/ds/visibility lag from retained traces
        (requires ``tracing=True``); refreshes the ``lag.*`` gauges."""
        return self.obs.lag_report(self.n_sites, at=self.kernel.now)

    # ------------------------------------------------------------------
    # Failure handling (§5.7)
    # ------------------------------------------------------------------
    def crash_server(self, site: int) -> None:
        """Crash the Walter server process at a site (storage survives)."""
        self.servers[site].crash()

    def replace_server(self, site: int) -> WalterServer:
        """Start a replacement server over the site's cluster storage; it
        recovers its state and resumes propagation (§5.7)."""
        doomed = self._fence_storage(site)
        replacement = self._make_server(site, takeover=True)
        replacement.restore_from_storage()
        for version in doomed:
            # Never reuse a seqno the old server handed out, even though
            # its commit record was fenced before becoming durable.
            replacement.curr_seqno = max(replacement.curr_seqno, version.seqno)
        # Seqnos skipped that way must still reach every receiver (the
        # propagation guard needs a contiguous stream): plug with no-ops.
        replacement.seal_seqno_holes()
        self._boot(replacement)
        self.servers[site] = replacement
        checkpointer = self.storages[site].checkpointer
        if checkpointer is not None:
            # The old server's checkpointer died with it; the replacement
            # resumes checkpointing at the same cadence.
            self.storages[site].attach_checkpointer(
                replacement.state_snapshot, interval=checkpointer.interval
            )
        return replacement

    def _fence_storage(self, site: int) -> List[Version]:
        """Fence a site's storage before a takeover (§5.7): the old
        server's in-flight WAL writes are discarded.  The corresponding
        local commits were never durable -- hence never propagated -- so
        they are recorded as abandoned (the durability oracle must not
        count them as lost) and returned so the replacement can avoid
        reusing their seqnos."""
        doomed: List[Version] = []
        for payload in self.storages[site].fence():
            if isinstance(payload, dict) and payload.get("kind") == "local_commit":
                doomed.append(payload["record"].version)
        self.abandoned_versions.update(doomed)
        return doomed

    def fail_site(self, site: int) -> None:
        """An entire site fails: server down, links severed."""
        self.servers[site].crash()
        for other in range(self.n_sites):
            if other != site:
                self.network.partition(site, other)

    def remove_site(self, failed_site: int, reassign_to: int, within: float = 60.0) -> int:
        """Aggressive recovery (§4.4/§5.7): drop the failed site, keep its
        surviving transactions, reassign its containers.  Returns the
        surviving seqno bound."""
        return self.run_process(
            self.remove_site_gen(failed_site, reassign_to), within=within
        )

    def remove_site_gen(self, failed_site: int, reassign_to: int) -> Generator:
        """Generator form of :meth:`remove_site`, for callers already
        inside the simulation (e.g. the chaos fault injector).  Records
        the transactions the aggressive option sacrificed in
        :attr:`abandoned_versions`."""
        coordinator = self._coordinator(at_site=reassign_to)
        max_seqno = self.servers[failed_site].curr_seqno
        upto = yield from coordinator.remove_site(
            self.config, failed_site, reassign_to
        )
        for seqno in range(upto + 1, max_seqno + 1):
            self.abandoned_versions.add(Version(failed_site, seqno))
        return upto

    def reintegrate_site(self, site: int, within: float = 60.0) -> WalterServer:
        """Bring a removed site back: heal links, start a recovered server,
        synchronize it, then return its containers (§5.7)."""
        return self.run_process(self.reintegrate_site_gen(site), within=within)

    def reintegrate_site_gen(self, site: int) -> Generator:
        """Generator form of :meth:`reintegrate_site` (see
        :meth:`remove_site_gen`); returns the replacement server."""
        for other in range(self.n_sites):
            if other != site:
                self.network.heal(site, other)
        doomed = self._fence_storage(site)
        replacement = self._make_server(site, takeover=True)
        # No resume: this server's own logged suffix may be abandoned
        # under the new configuration; re-propagating it would resurrect
        # §4.4-sacrificed transactions at the survivors.  The recovery
        # coordinator truncates it and seals the seqno gap instead.
        replacement.restore_from_storage(resume_propagation=False)
        for version in doomed:
            replacement.curr_seqno = max(replacement.curr_seqno, version.seqno)
        self._boot(replacement)
        self.servers[site] = replacement
        survivor = next(s for s in self.config.active_sites() if s != site)
        coordinator = self._coordinator(at_site=survivor)
        yield from coordinator.reintegrate_site(
            self.config, site, replacement.address
        )
        return replacement

    def handover_container_gen(
        self, cid: str, to_site: int, within: float = 30.0
    ) -> Generator:
        """Planned preferred-site handover of one container, using the
        same lease mechanism §5.7 uses for reassignment after a site
        failure.  The fast-commit conflict check is only sound at a site
        whose history is complete for the container, so the handover
        must not take effect before the target caught up with
        everything the old preferred site admitted:

        1. revoke the lease -- new writes to the container abort until
           the handover lands (or is rolled back);
        2. wait for both endpoints to be up: a crashed target cannot
           catch up, and a crashed old server only re-establishes its
           admitted frontier once replaced and recovered;
        3. wait until the target's GotVTS dominates the old preferred
           site's CommittedVTS;
        4. reassign, which also grants the lease to the target.

        If the endpoints do not come up within ``within`` sim-seconds
        the handover is rolled back (lease returned to the old holder)
        and a TimeoutError is raised.
        """
        old = self.config.container(cid).preferred_site
        if old == to_site:
            self.config.reassign_preferred_site(cid, to_site)  # re-grant lease
            return
        self.config.suspend_lease(cid)
        deadline = self.kernel.now + within
        try:
            while self.network.is_crashed(
                self.addresses[old]
            ) or self.network.is_crashed(self.addresses[to_site]):
                if self.kernel.now >= deadline:
                    raise TimeoutError(
                        "handover of %r to site %d: endpoint down past deadline"
                        % (cid, to_site)
                    )
                yield self.kernel.timeout(0.05)
            needed = self.servers[old].committed_vts
            while not self.servers[to_site].got_vts.dominates(needed):
                if self.kernel.now >= deadline:
                    raise TimeoutError(
                        "handover of %r to site %d: target never caught up"
                        % (cid, to_site)
                    )
                yield self.kernel.timeout(0.01)
        except TimeoutError:
            self.config.reassign_preferred_site(cid, old)  # roll back
            raise
        self.config.reassign_preferred_site(cid, to_site)

    def _coordinator(self, at_site: int = 0) -> SiteRecoveryCoordinator:
        host = Host(
            self.kernel,
            self.network,
            at_site,
            "recovery-coord-%d-%d" % (self._deploy_id, next(self._client_seq)),
        )
        host.start()
        return SiteRecoveryCoordinator(self.kernel, host, self.addresses)
