"""Deployment assembly: sites, servers, storage, clients, recovery.

A :class:`Deployment` wires a full Walter installation over the simulated
substrate: one :class:`~repro.server.WalterServer` per site on the EC2
topology (§8.1), a shared configuration view, per-site replicated cluster
storage, and client factories.  It also exposes the failure-handling
workflows of §5.7 (server replacement, site removal, re-integration) as
one-call operations used by tests and examples.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional

from .client import WalterClient
from .core.objects import Container
from .net import Host, Network, Topology
from .obs import Observability
from .server import LocalConfig, ServerCosts, SiteRecoveryCoordinator, WalterServer
from .sim import Kernel, RandomStreams
from .spec.checker import ExecutionTrace
from .storage import FLUSH_EC2, SiteStorage

_deploy_seq = itertools.count(1)


class Deployment:
    """A complete multi-site Walter installation in one simulation."""

    def __init__(
        self,
        n_sites: int = 4,
        topology: Optional[Topology] = None,
        seed: int = 0,
        costs: Optional[ServerCosts] = None,
        flush_latency: float = FLUSH_EC2,
        f: int = 1,
        ds_mode: str = "all_sites",
        trace: bool = False,
        jitter_frac: float = 0.05,
        anti_starvation: bool = False,
        tracing: bool = False,
        trace_capacity: int = 8192,
    ):
        self.kernel = Kernel()
        self.streams = RandomStreams(seed)
        self.topology = topology or Topology.ec2(n_sites)
        self.n_sites = len(self.topology)
        #: Shared observability: the metrics registry is always on;
        #: per-transaction span tracing is enabled with ``tracing=True``.
        self.obs = Observability(tracing=tracing, trace_capacity=trace_capacity)
        self.network = Network(
            self.kernel, self.topology, streams=self.streams, jitter_frac=jitter_frac
        )
        self.network.bind_metrics(self.obs.registry)
        self.config = LocalConfig(self.n_sites)
        self.trace = ExecutionTrace(n_sites=self.n_sites) if trace else None
        self.costs = costs or ServerCosts()
        self.f = f
        self.ds_mode = ds_mode
        self.anti_starvation = anti_starvation
        self._deploy_id = next(_deploy_seq)

        self.storages: List[SiteStorage] = [
            SiteStorage(self.kernel, site, flush_latency, name="disk-%d-%d" % (self._deploy_id, site))
            for site in range(self.n_sites)
        ]
        for storage in self.storages:
            storage.bind_metrics(self.obs.registry)
        self.addresses: Dict[int, str] = {
            site: "walter-%d-%d" % (self._deploy_id, site) for site in range(self.n_sites)
        }
        self.servers: List[WalterServer] = [
            self._make_server(site) for site in range(self.n_sites)
        ]
        for server in self.servers:
            server.start()
        self._client_seq = itertools.count(1)
        self._container_seq = itertools.count(1)

    def _make_server(self, site: int, takeover: bool = False) -> WalterServer:
        return WalterServer(
            self.kernel,
            self.network,
            site_id=site,
            name=self.addresses[site],
            config=self.config,
            storage=self.storages[site],
            peers=self.addresses,
            costs=self.costs,
            f=self.f,
            ds_mode=self.ds_mode,
            trace=self.trace,
            anti_starvation=self.anti_starvation,
            takeover=takeover,
            obs=self.obs,
        )

    # ------------------------------------------------------------------
    # Topology/objects
    # ------------------------------------------------------------------
    def server(self, site: int) -> WalterServer:
        return self.servers[site]

    def create_container(
        self,
        cid: Optional[str] = None,
        preferred_site: int = 0,
        replica_sites=None,
    ) -> Container:
        """Register a container; default replication is all sites (the
        WaltSocial configuration: 'replicated at all sites to optimize for
        reads', §7)."""
        if cid is None:
            cid = "container-%d" % next(self._container_seq)
        if replica_sites is None:
            replica_sites = range(self.n_sites)
        container = Container(cid, preferred_site, frozenset(replica_sites))
        return self.config.register(container)

    def new_client(self, site: int, name: Optional[str] = None) -> WalterClient:
        # No deploy id in the default name: client names feed into tids,
        # and traces must be byte-identical across same-seed runs.
        name = name or "client-%d-%d" % (site, next(self._client_seq))
        client = WalterClient(
            self.kernel,
            self.network,
            site,
            name,
            server_address=self.addresses[site],
            config=self.config,
        )
        client.start()
        return client

    def preload(self, values) -> None:
        """Seed objects as already-committed, fully-propagated site-0
        transactions (used by benchmarks to populate the store without
        simulating millions of warm-up writes).

        ``values`` maps ObjectId -> bytes (regular) or, for csets, an
        iterable of elements, a ``{elem: count}`` dict, or a CSet.
        """
        from .core.cset import CSet
        from .core.transaction import CommitRecord
        from .core.updates import CSetAdd, CSetDel, DataUpdate
        from .core.versions import Version

        seq = self.servers[0].curr_seqno
        start_vts = self.servers[0].committed_vts
        for oid, value in values.items():
            seq += 1
            version = Version(0, seq)
            if oid.is_cset:
                counts = value.counts() if isinstance(value, CSet) else value
                if isinstance(counts, dict):
                    updates = []
                    for elem, count in counts.items():
                        op = CSetAdd if count > 0 else CSetDel
                        updates.extend(op(oid, elem) for _ in range(abs(count)))
                else:
                    updates = [CSetAdd(oid, elem) for elem in counts]
            else:
                updates = [DataUpdate(oid, value)]
            record = CommitRecord(
                tid="preload-%d" % seq,
                site=0,
                seqno=seq,
                start_vts=start_vts,
                updates=updates,
            )
            for server in self.servers:
                server.histories.apply(updates, version)
                server._records_by_version[version] = record
            if self.trace is not None:
                from .spec.checker import TracedTx

                self.trace.record_commit(
                    TracedTx(record.tid, 0, start_vts, version, updates, frozenset(
                        u.oid for u in updates if isinstance(u, DataUpdate)
                    ))
                )
                for site in range(self.n_sites):
                    self.trace.record_site_commit(site, version)
        for server in self.servers:
            server.got_vts = server.got_vts.with_entry(0, seq)
            server.committed_vts = server.committed_vts.with_entry(0, seq)
        self.servers[0].curr_seqno = seq

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        return self.kernel.run(until=until)

    def run_process(self, gen: Generator, within: float = 60.0):
        """Spawn a process and run the world until it finishes."""
        return self.kernel.run_process(gen, until=self.kernel.now + within)

    def settle(self, duration: float = 2.0) -> None:
        """Let in-flight propagation finish."""
        self.kernel.run(until=self.kernel.now + duration)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_snapshot(self):
        """Deterministic dump of every counter/gauge/histogram."""
        return self.obs.snapshot()

    def lag_report(self):
        """Per-site replication/ds/visibility lag from retained traces
        (requires ``tracing=True``); refreshes the ``lag.*`` gauges."""
        return self.obs.lag_report(self.n_sites, at=self.kernel.now)

    # ------------------------------------------------------------------
    # Failure handling (§5.7)
    # ------------------------------------------------------------------
    def crash_server(self, site: int) -> None:
        """Crash the Walter server process at a site (storage survives)."""
        self.servers[site].crash()

    def replace_server(self, site: int) -> WalterServer:
        """Start a replacement server over the site's cluster storage; it
        recovers its state and resumes propagation (§5.7)."""
        replacement = self._make_server(site, takeover=True)
        replacement.restore_from_storage()
        replacement.start()
        self.servers[site] = replacement
        return replacement

    def fail_site(self, site: int) -> None:
        """An entire site fails: server down, links severed."""
        self.servers[site].crash()
        for other in range(self.n_sites):
            if other != site:
                self.network.partition(site, other)

    def remove_site(self, failed_site: int, reassign_to: int, within: float = 60.0) -> int:
        """Aggressive recovery (§4.4/§5.7): drop the failed site, keep its
        surviving transactions, reassign its containers.  Returns the
        surviving seqno bound."""
        coordinator = self._coordinator(at_site=reassign_to)
        return self.run_process(
            coordinator.remove_site(self.config, failed_site, reassign_to),
            within=within,
        )

    def reintegrate_site(self, site: int, within: float = 60.0) -> WalterServer:
        """Bring a removed site back: heal links, start a recovered server,
        synchronize it, then return its containers (§5.7)."""
        for other in range(self.n_sites):
            if other != site:
                self.network.heal(site, other)
        replacement = self._make_server(site, takeover=True)
        replacement.restore_from_storage()
        replacement.start()
        self.servers[site] = replacement
        survivor = next(s for s in self.config.active_sites() if s != site)
        coordinator = self._coordinator(at_site=survivor)
        self.run_process(
            coordinator.reintegrate_site(self.config, site, replacement.address),
            within=within,
        )
        return replacement

    def _coordinator(self, at_site: int = 0) -> SiteRecoveryCoordinator:
        host = Host(
            self.kernel,
            self.network,
            at_site,
            "recovery-coord-%d-%d" % (self._deploy_id, next(self._client_seq)),
        )
        host.start()
        return SiteRecoveryCoordinator(self.kernel, host, self.addresses)
