"""Deployment assembly: sites, servers, storage, clients, recovery.

A :class:`Deployment` wires a full Walter installation over the simulated
substrate: one :class:`~repro.server.WalterServer` per site on the EC2
topology (§8.1), a shared configuration view, per-site replicated cluster
storage, and client factories.  It also exposes the failure-handling
workflows of §5.7 (server replacement, site removal, re-integration) as
one-call operations used by tests and examples.
"""

from __future__ import annotations

import itertools
import operator
import zlib
from typing import Dict, Generator, List, Optional, Set

from .client import WalterClient
from .core.objects import Container
from .core.versions import Version
from .net import ClusterGateway, Envelope, Host, Network, Topology
from .obs import Observability
from .server import (
    BatchingConfig,
    LeaseConfig,
    LocalConfig,
    ServerCosts,
    SiteRecoveryCoordinator,
    WalterServer,
)
from .sim import Kernel, RandomStreams
from .spec.checker import ExecutionTrace
from .storage import FLUSH_EC2, SiteStorage

_deploy_seq = itertools.count(1)


class Deployment:
    """A complete multi-site Walter installation in one simulation."""

    #: Fault-injection hook (see :class:`~repro.server.recovery.RecoveryMixin`):
    #: propagated to every server the deployment creates, including
    #: replacements.  Only the chaos harness's self-test sets this.
    _chaos_bug: Optional[str] = None

    @property
    def chaos_bug(self) -> Optional[str]:
        return self._chaos_bug

    @chaos_bug.setter
    def chaos_bug(self, value: Optional[str]) -> None:
        # The harness assigns this *after* construction, so propagate to
        # the already-running servers, not just future replacements.
        self._chaos_bug = value
        for server in getattr(self, "servers", ()):
            if server is not None:
                server.chaos_bug = value

    def __init__(
        self,
        n_sites: int = 4,
        topology: Optional[Topology] = None,
        seed: int = 0,
        costs: Optional[ServerCosts] = None,
        flush_latency: float = FLUSH_EC2,
        f: int = 1,
        ds_mode: str = "all_sites",
        trace: bool = False,
        jitter_frac: float = 0.05,
        anti_starvation: bool = False,
        tracing=False,
        trace_capacity: int = 8192,
        lease_sweeper: bool = False,
        leases: Optional[LeaseConfig] = None,
        cluster=None,
        executor: str = "serial",
        workers: int = 0,
        shards: int = 1,
        replication: Optional[int] = None,
        batching=None,
    ):
        if executor not in ("serial", "parallel"):
            raise ValueError("executor must be 'serial' or 'parallel', got %r" % (executor,))
        if shards < 1:
            raise ValueError("shards must be >= 1, got %d" % shards)
        if executor == "parallel":
            # Driver-handle mode (DESIGN.md §12): no world is built here.
            # Each parallel worker constructs its own cluster-restricted
            # Deployment from these kwargs; drive it with run_scenario().
            if cluster is not None:
                raise ValueError("executor='parallel' builds its own cluster workers")
            self.executor = "parallel"
            self.workers = workers or 2
            self._parallel_kwargs = dict(
                n_sites=n_sites,
                topology=topology,
                seed=seed,
                costs=costs,
                flush_latency=flush_latency,
                f=f,
                ds_mode=ds_mode,
                trace=trace,
                jitter_frac=jitter_frac,
                anti_starvation=anti_starvation,
                tracing=tracing,
                trace_capacity=trace_capacity,
                lease_sweeper=lease_sweeper,
                leases=leases,
                shards=shards,
                replication=replication,
                batching=batching,
            )
            return
        self.executor = "serial"
        self.workers = 0
        #: Cluster mode (set by the parallel executor's workers): this
        #: deployment simulates only ``cluster.spec.owned_sites``; the
        #: rest of the topology lives in sibling workers, reached through
        #: the network gateway at synchronization barriers.
        self.cluster = cluster
        self._owned = (
            frozenset(cluster.spec.owned_sites) if cluster is not None else None
        )
        self.kernel = Kernel()
        self.streams = RandomStreams(seed)
        base_topology = topology or Topology.ec2(n_sites)
        #: Intra-site keyspace sharding (DESIGN.md §13): every base site
        #: runs ``shards`` co-located shard servers, each a full logical
        #: site (own seqno stream, WAL, cache, propagation).  ``shards=1``
        #: takes exactly the unsharded path -- same topology object, same
        #: names -- so single-shard runs are bit-identical to the
        #: pre-sharding kernel.
        self.shards = shards
        if shards > 1 and getattr(base_topology, "shards", 1) == shards:
            # Already expanded: the parallel executor shards the topology
            # eagerly so its cluster partitions align with logical sites.
            self.topology = base_topology
            self.n_base_sites = len(base_topology) // shards
        elif shards > 1:
            self.n_base_sites = len(base_topology)
            self.topology = Topology.sharded(base_topology, shards)
        else:
            self.n_base_sites = len(base_topology)
            self.topology = base_topology
        self.n_sites = len(self.topology)
        if replication is not None and not 1 <= replication <= self.n_base_sites:
            raise ValueError(
                "replication must be in [1, %d], got %r"
                % (self.n_base_sites, replication)
            )
        #: Per-shard replication factor: how many base sites store each
        #: container's shard group (None = every site, the classic
        #: full-replication configuration).
        self.replication = replication
        self._partial_replication = (
            replication is not None and replication < self.n_base_sites
        )
        #: Hot-path batching (DESIGN.md §14): WAL group-commit window,
        #: propagation record batching with delta-encoded VTS, and read
        #: coalescing.  ``None`` (the default) keeps every path
        #: byte-identical to the unbatched kernel; ``True`` enables the
        #: default :class:`~repro.server.BatchingConfig`.
        self.batching = BatchingConfig.coerce(batching)
        #: Shared observability: the metrics registry is always on;
        #: per-transaction span tracing is enabled with ``tracing=True``,
        #: and ``tracing="deep"`` additionally records commit-path
        #: milestones and causal parent edges (critical-path input).
        self.obs = Observability(tracing=tracing, trace_capacity=trace_capacity)
        self.network = Network(
            self.kernel, self.topology, streams=self.streams, jitter_frac=jitter_frac
        )
        self.network.bind_metrics(self.obs.registry)
        if cluster is not None:
            gateway = ClusterGateway(cluster.spec.cluster_id, cluster.spec.cluster_of)
            self.network.attach_gateway(gateway)
            cluster.gateway = gateway
        self.config = LocalConfig(self.n_sites)
        self.trace = ExecutionTrace(n_sites=self.n_sites) if trace else None
        self.costs = costs or ServerCosts()
        self.f = f
        self.ds_mode = ds_mode
        self.anti_starvation = anti_starvation
        #: Lease-based commit-path reaping (DESIGN.md §9).  Off by
        #: default -- unit tests may legitimately hold transactions open
        #: across long stretches of sim time; the chaos harness (and any
        #: long-lived deployment) turns it on, including for replacement
        #: and re-integrated servers.
        self.lease_sweeper = lease_sweeper
        self.leases = leases or LeaseConfig()
        self._deploy_id = next(_deploy_seq)
        #: Versions legitimately sacrificed by aggressive site removal
        #: (§5.7): committed at the failed site but never propagated.
        #: The chaos durability oracle excludes these from "lost".
        self.abandoned_versions: Set[Version] = set()

        self.storages: List[Optional[SiteStorage]] = [
            SiteStorage(
                self.kernel,
                site,
                flush_latency,
                # Cluster workers cannot share the process-global deploy
                # counter, so cluster-mode names are deploy-independent.
                name=(
                    "disk-p-%d" % site
                    if cluster is not None
                    else "disk-%d-%d" % (self._deploy_id, site)
                ),
                flush_window=(
                    self.batching.wal_window if self.batching is not None else 0.0
                ),
            )
            if self.owns(site)
            else None
            for site in range(self.n_sites)
        ]
        for storage in self.storages:
            if storage is None:
                continue
            storage.bind_metrics(self.obs.registry)
            if self.obs.tracer is not None:
                storage.bind_tracer(self.obs.tracer)
        self.addresses: Dict[int, str] = {
            site: (
                "walter-p-%d" % site
                if cluster is not None
                else "walter-%d-%d" % (self._deploy_id, site)
            )
            for site in range(self.n_sites)
        }
        self.servers: List[Optional[WalterServer]] = [
            self._make_server(site) if self.owns(site) else None
            for site in range(self.n_sites)
        ]
        if cluster is not None:
            for site in range(self.n_sites):
                if not self.owns(site):
                    self.network.register_remote(self.addresses[site], site)
        for server in self.servers:
            if server is not None:
                self._boot(server)
        self._client_seq = itertools.count(1)
        self._container_seq = itertools.count(1)
        self._preload_shadow_seq = 0

    def _make_server(self, site: int, takeover: bool = False) -> WalterServer:
        server = WalterServer(
            self.kernel,
            self.network,
            site_id=site,
            name=self.addresses[site],
            config=self.config,
            storage=self.storages[site],
            peers=self.addresses,
            costs=self.costs,
            f=self.f,
            ds_mode=self.ds_mode,
            trace=self.trace,
            anti_starvation=self.anti_starvation,
            takeover=takeover,
            obs=self.obs,
            leases=self.leases,
            partial_replication=self._partial_replication,
            batching=self.batching,
        )
        server.chaos_bug = self.chaos_bug
        return server

    def _boot(self, server: WalterServer) -> WalterServer:
        server.start()
        if self.lease_sweeper:
            server.start_sweeper()
        return server

    # ------------------------------------------------------------------
    # Topology/objects
    # ------------------------------------------------------------------
    def owns(self, site: int) -> bool:
        """Whether this deployment simulates ``site`` (always true outside
        cluster mode)."""
        return self._owned is None or site in self._owned

    def owned_sites(self) -> List[int]:
        if self._owned is None:
            return list(range(self.n_sites))
        return sorted(self._owned)

    def _owned_servers(self) -> List[WalterServer]:
        return [server for server in self.servers if server is not None]

    def _require_serial(self, operation: str) -> None:
        if self.cluster is not None:
            raise RuntimeError(
                "%s is not available in cluster mode: the parallel executor "
                "only supports fault-free, configuration-static workloads "
                "(DESIGN.md §12)" % operation
            )

    def run_scenario(self, scenario, params=None, mode: str = "auto"):
        """Parallel-handle entry point (``executor='parallel'``): run
        ``scenario(world, **params)`` across ``self.workers`` cluster
        workers and return the merged
        :class:`~repro.sim.parallel.ParallelResult`."""
        if getattr(self, "executor", "serial") != "parallel":
            raise RuntimeError("run_scenario() requires Deployment(executor='parallel')")
        from .sim.parallel import run_scenario

        return run_scenario(
            scenario,
            deploy_kwargs=self._parallel_kwargs,
            params=params,
            workers=self.workers,
            mode=mode,
        )

    def server(self, site: int) -> WalterServer:
        return self.servers[site]

    # ------------------------------------------------------------------
    # Shard routing (DESIGN.md §13)
    # ------------------------------------------------------------------
    def shard_of(self, cid: str) -> int:
        """Deterministic container-id -> shard routing.  ``crc32`` rather
        than ``hash()``: the builtin string hash is salted per process
        (PYTHONHASHSEED), which would break cross-process determinism in
        the parallel executor and across replay runs."""
        return zlib.crc32(cid.encode("utf-8")) % self.shards

    def logical_site(self, base_site: int, shard: int = 0) -> int:
        """The logical site id of ``shard`` at ``base_site``."""
        if not 0 <= shard < self.shards:
            raise ValueError("shard must be in [0, %d), got %d" % (self.shards, shard))
        return base_site * self.shards + shard

    def base_site_of(self, site: int) -> int:
        """The base (data-center) site a logical site belongs to."""
        return site // self.shards

    def route_container(self, cid: str, base_site: int) -> int:
        """The logical site where ``cid``'s preferred server lives when
        its preferred data center is ``base_site`` (hash routing)."""
        return self.logical_site(base_site, self.shard_of(cid))

    def create_container(
        self,
        cid: Optional[str] = None,
        preferred_site: int = 0,
        replica_sites=None,
        preferred_base_site: Optional[int] = None,
    ) -> Container:
        """Register a container; default replication is all sites (the
        WaltSocial configuration: 'replicated at all sites to optimize for
        reads', §7).

        ``preferred_site`` is a logical site (container routing: the
        caller pins the shard).  Alternatively pass ``preferred_base_site``
        to hash-route the container to its shard within that data center.
        When the deployment has a ``replication`` factor, the default
        replica set is the container's shard group: the same shard's
        servers at ``replication`` consecutive base sites starting at the
        preferred one -- so not every site stores every shard."""
        if cid is None:
            cid = "container-%d" % next(self._container_seq)
        if preferred_base_site is not None:
            preferred_site = self.route_container(cid, preferred_base_site)
        if replica_sites is None:
            if self.replication is None:
                replica_sites = range(self.n_sites)
            else:
                shard = preferred_site % self.shards
                anchor = preferred_site // self.shards
                replica_sites = [
                    ((anchor + i) % self.n_base_sites) * self.shards + shard
                    for i in range(self.replication)
                ]
        container = Container(cid, preferred_site, frozenset(replica_sites))
        return self.config.register(container)

    def new_client(self, site: int, name: Optional[str] = None, retry=None) -> WalterClient:
        # No deploy id in the default name: client names feed into tids,
        # and traces must be byte-identical across same-seed runs.
        name = name or "client-%d-%d" % (site, next(self._client_seq))
        if not self.owns(site):
            # Cluster mode: the sequence number above is burned on
            # purpose so every worker assigns the same name to the same
            # global client index; the client itself lives in the worker
            # that owns its site.
            return None
        client = WalterClient(
            self.kernel,
            self.network,
            site,
            name,
            server_address=self.addresses[site],
            config=self.config,
            retry=retry,
            obs=self.obs,
        )
        client.start()
        return client

    def preload(self, values) -> None:
        """Seed objects as already-committed, fully-propagated site-0
        transactions (used by benchmarks to populate the store without
        simulating millions of warm-up writes).

        ``values`` maps ObjectId -> bytes (regular) or, for csets, an
        iterable of elements, a ``{elem: count}`` dict, or a CSet.
        """
        from .core.cset import CSet
        from .core.transaction import CommitRecord
        from .core.updates import CSetAdd, CSetDel, DataUpdate
        from .core.versions import VectorTimestamp, Version

        if self.servers[0] is not None:
            seq = self.servers[0].curr_seqno
            start_vts = self.servers[0].committed_vts
        else:
            # Cluster mode without site 0: shadow the seqno stream so
            # every worker mints identical preload versions/records.
            seq = self._preload_shadow_seq
            start_vts = VectorTimestamp.zeros(self.n_sites).with_entry(0, seq)
        for oid, value in values.items():
            seq += 1
            version = Version(0, seq)
            if oid.is_cset:
                counts = value.counts() if isinstance(value, CSet) else value
                if isinstance(counts, dict):
                    updates = []
                    for elem, count in counts.items():
                        op = CSetAdd if count > 0 else CSetDel
                        updates.extend(op(oid, elem) for _ in range(abs(count)))
                else:
                    updates = [CSetAdd(oid, elem) for elem in counts]
            else:
                updates = [DataUpdate(oid, value)]
            record = CommitRecord(
                tid="preload-%d" % seq,
                site=0,
                seqno=seq,
                start_vts=start_vts,
                updates=updates,
            )
            for server in self._owned_servers():
                # Partial replication: a site only stores the shards it
                # replicates; preloaded data follows the same placement.
                if self._partial_replication and not self.config.container(
                    oid.container
                ).replicated_at(server.site_id):
                    continue
                server.histories.apply(updates, version)
                server._records_by_version[version] = record
            if self.trace is not None:
                from .spec.checker import TracedTx

                self.trace.record_commit(
                    TracedTx(record.tid, 0, start_vts, version, updates, frozenset(
                        u.oid for u in updates if isinstance(u, DataUpdate)
                    ))
                )
                # Cluster mode: only the owning worker records a site's
                # commit order, so the merged trace has each site once.
                for site in self.owned_sites():
                    self.trace.record_site_commit(site, version)
        for server in self._owned_servers():
            server.got_vts = server.got_vts.with_entry(0, seq)
            server.committed_vts = server.committed_vts.with_entry(0, seq)
        if self.servers[0] is not None:
            self.servers[0].curr_seqno = seq
        self._preload_shadow_seq = seq

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation.  In cluster mode this is the barrier
        loop of the conservative parallel executor (DESIGN.md §12): run
        the local kernel in windows of at most one lookahead, exchange
        cross-cluster envelopes with the sibling workers at every window
        boundary, and schedule the inbound ones (all strictly in the
        future) in canonical order."""
        if self.cluster is None:
            return self.kernel.run(until=until)
        if until is None:
            raise RuntimeError(
                "cluster mode requires a bounded run(until=...): the "
                "barrier loop advances in lookahead-sized windows"
            )
        exchange = self.cluster.exchange
        gateway = self.cluster.gateway
        lookahead = self.cluster.lookahead_s
        # C-level sort key (same canonical order as Envelope.sort_key,
        # without a Python call per envelope -- this sort sees every
        # cross-cluster message of the run).
        envelope_key = operator.attrgetter(
            "deliver_at", "src_site", "dst_site", "link_seq"
        )
        deliver = self.network.deliver_envelope
        while True:
            if lookahead == float("inf"):
                barrier = until
            else:
                barrier = min(until, self.kernel.now + lookahead)
            self.kernel.run(until=barrier)
            inbound = exchange.sync(barrier, gateway.drain())
            inbound.sort(key=envelope_key)
            for envelope in inbound:
                deliver(envelope)
            if barrier >= until:
                return self.kernel.now

    def run_process(self, gen: Generator, within: float = 60.0):
        """Spawn a process and run the world until it finishes."""
        self._require_serial("run_process")
        return self.kernel.run_process(gen, until=self.kernel.now + within)

    def settle(self, duration: float = 2.0) -> None:
        """Let in-flight propagation finish."""
        self.run(until=self.kernel.now + duration)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_snapshot(self):
        """Deterministic dump of every counter/gauge/histogram.  GC
        gauges (watermark, history entries, commit records) are refreshed
        first so they are current even if a server's GC loop is off."""
        for server in self._owned_servers():
            server._refresh_gc_gauges()
        snap = self.obs.snapshot()
        snap["access_profile"] = {
            site: server.profiler.as_dict()
            for site, server in enumerate(self.servers)
            if server is not None
        }
        return snap

    def gc_watermarks(self) -> Dict[int, "VectorTimestamp"]:
        """Per-site GC watermarks (meet of CommittedVTS with every active
        transaction's startVTS) -- what a GC pass at each site would use."""
        return {
            site: server.gc_watermark()
            for site, server in enumerate(self.servers)
            if server is not None
        }

    def lag_report(self):
        """Per-site replication/ds/visibility lag from retained traces
        (requires ``tracing=True``); refreshes the ``lag.*`` gauges."""
        return self.obs.lag_report(self.n_sites, at=self.kernel.now)

    # ------------------------------------------------------------------
    # Failure handling (§5.7)
    # ------------------------------------------------------------------
    def crash_server(self, site: int) -> None:
        """Crash the Walter server process at a site (storage survives)."""
        self._require_serial("crash_server")
        self.servers[site].crash()

    def replace_server(self, site: int) -> WalterServer:
        """Start a replacement server over the site's cluster storage; it
        recovers its state and resumes propagation (§5.7)."""
        self._require_serial("replace_server")
        doomed = self._fence_storage(site)
        replacement = self._make_server(site, takeover=True)
        replacement.restore_from_storage()
        for version in doomed:
            # Never reuse a seqno the old server handed out, even though
            # its commit record was fenced before becoming durable.
            replacement.curr_seqno = max(replacement.curr_seqno, version.seqno)
        # Seqnos skipped that way must still reach every receiver (the
        # propagation guard needs a contiguous stream): plug with no-ops.
        replacement.seal_seqno_holes()
        # The predecessor's prepared-lock table was volatile: a 2PC it
        # voted YES for may have committed elsewhere and still be
        # propagating.  Gate commit admission (fast commits and prepare
        # votes) until the replacement has received everything the live
        # sites had committed at takeover -- the lock, had it survived,
        # would have been released by exactly those records' arrival.
        target = replacement.committed_vts
        for peer, server in enumerate(self.servers):
            if peer == site or server is None:
                continue
            if self.network.is_crashed(self.addresses[peer]):
                continue
            target = target.merge(server.committed_vts)
        replacement.set_sync_barrier(target)
        self._boot(replacement)
        self.servers[site] = replacement
        checkpointer = self.storages[site].checkpointer
        if checkpointer is not None:
            # The old server's checkpointer died with it; the replacement
            # resumes checkpointing at the same cadence.
            self.storages[site].attach_checkpointer(
                replacement.state_snapshot, interval=checkpointer.interval
            )
        return replacement

    def _fence_storage(self, site: int) -> List[Version]:
        """Fence a site's storage before a takeover (§5.7): the old
        server's in-flight WAL writes are discarded.  The corresponding
        local commits were never durable -- hence never propagated -- so
        they are recorded as abandoned (the durability oracle must not
        count them as lost) and returned so the replacement can avoid
        reusing their seqnos."""
        doomed: List[Version] = []
        for payload in self.storages[site].fence():
            if isinstance(payload, dict) and payload.get("kind") == "local_commit":
                doomed.append(payload["record"].version)
        self.abandoned_versions.update(doomed)
        return doomed

    def fail_site(self, site: int) -> None:
        """An entire site fails: server down, links severed."""
        self._require_serial("fail_site")
        self.servers[site].crash()
        for other in range(self.n_sites):
            if other != site:
                self.network.partition(site, other)

    def remove_site(self, failed_site: int, reassign_to: int, within: float = 60.0) -> int:
        """Aggressive recovery (§4.4/§5.7): drop the failed site, keep its
        surviving transactions, reassign its containers.  Returns the
        surviving seqno bound."""
        return self.run_process(
            self.remove_site_gen(failed_site, reassign_to), within=within
        )

    def remove_site_gen(self, failed_site: int, reassign_to: int) -> Generator:
        """Generator form of :meth:`remove_site`, for callers already
        inside the simulation (e.g. the chaos fault injector).  Records
        the transactions the aggressive option sacrificed in
        :attr:`abandoned_versions`."""
        coordinator = self._coordinator(at_site=reassign_to)
        max_seqno = self.servers[failed_site].curr_seqno
        upto = yield from coordinator.remove_site(
            self.config, failed_site, reassign_to
        )
        for seqno in range(upto + 1, max_seqno + 1):
            self.abandoned_versions.add(Version(failed_site, seqno))
        return upto

    def reintegrate_site(self, site: int, within: float = 60.0) -> WalterServer:
        """Bring a removed site back: heal links, start a recovered server,
        synchronize it, then return its containers (§5.7)."""
        return self.run_process(self.reintegrate_site_gen(site), within=within)

    def reintegrate_site_gen(self, site: int) -> Generator:
        """Generator form of :meth:`reintegrate_site` (see
        :meth:`remove_site_gen`); returns the replacement server."""
        for other in range(self.n_sites):
            if other != site:
                self.network.heal(site, other)
        doomed = self._fence_storage(site)
        replacement = self._make_server(site, takeover=True)
        # No resume: this server's own logged suffix may be abandoned
        # under the new configuration; re-propagating it would resurrect
        # §4.4-sacrificed transactions at the survivors.  The recovery
        # coordinator truncates it and seals the seqno gap instead.
        replacement.restore_from_storage(resume_propagation=False)
        for version in doomed:
            replacement.curr_seqno = max(replacement.curr_seqno, version.seqno)
        self._boot(replacement)
        self.servers[site] = replacement
        survivor = next(s for s in self.config.active_sites() if s != site)
        coordinator = self._coordinator(at_site=survivor)
        yield from coordinator.reintegrate_site(
            self.config, site, replacement.address
        )
        return replacement

    def migrate_preferred_site(
        self, cid: str, to_site: int, within: float = 30.0
    ) -> Generator:
        """Planned preferred-site migration of one container, using the
        same lease mechanism §5.7 uses for reassignment after a site
        failure.  The fast-commit conflict check is only sound at a site
        whose history is complete for the container, so the migration
        must not take effect before the target caught up with
        everything the old preferred site admitted:

        1. revoke the lease -- new writes to the container abort until
           the migration lands (or is rolled back);
        2. wait for both endpoints to be up: a crashed target cannot
           catch up, and a crashed old server only re-establishes its
           admitted frontier once replaced and recovered;
        3. wait until the target's GotVTS dominates the old preferred
           site's CommittedVTS;
        4. re-check the target is still alive -- it may have crashed
           *during* the catch-up wait with its GotVTS already dominant,
           and granting the lease to a dead server would stall the
           container until a manual reassignment;
        5. reassign, which also grants the lease to the target.

        The rollback path re-grants the old site's lease **exactly
        once** on *any* failure -- not just the deadline TimeoutError:
        an unexpected exception (or an interrupt delivered to the
        generator, e.g. the driving process being killed by a chaos
        fault) must not leave the lease suspended forever, and must not
        open a window where both sites hold it.  Between revoke and the
        single terminal grant no site holds the lease, so at no point
        can two sites fast-commit the container.
        """
        old = self.config.container(cid).preferred_site
        if old == to_site:
            self.config.reassign_preferred_site(cid, to_site)  # re-grant lease
            return
        self.config.suspend_lease(cid)
        deadline = self.kernel.now + within
        granted = False
        try:
            while self.network.is_crashed(
                self.addresses[old]
            ) or self.network.is_crashed(self.addresses[to_site]):
                if self.kernel.now >= deadline:
                    raise TimeoutError(
                        "migration of %r to site %d: endpoint down past deadline"
                        % (cid, to_site)
                    )
                yield self.kernel.timeout(0.05)
            backfill = self._partial_replication and not self.config.container(
                cid
            ).replicated_at(to_site)
            needed = self.servers[old].committed_vts
            if backfill:
                # The target is *joining* the replica set: every record
                # it received so far arrived trimmed, so it holds no
                # data for the container and must install a copy from
                # the old replica before the grant.  Freeze the commit
                # frontier of every live site -- the revoked lease
                # refuses new writes to the container -- and wait for
                # BOTH endpoints to dominate it: only then does the old
                # site's history hold every committed write to the
                # container (including ones slow-committed at third
                # sites still propagating), making the copy complete.
                for peer, server in enumerate(self.servers):
                    if server is None or self.network.is_crashed(
                        self.addresses[peer]
                    ):
                        continue
                    needed = needed.merge(server.committed_vts)

            def caught_up() -> bool:
                if not self.servers[to_site].got_vts.dominates(needed):
                    return False
                if backfill and not self.servers[old].got_vts.dominates(needed):
                    return False
                return True

            while not caught_up():
                if self.kernel.now >= deadline:
                    raise TimeoutError(
                        "migration of %r to site %d: target never caught up"
                        % (cid, to_site)
                    )
                yield self.kernel.timeout(0.01)
            if backfill:
                # Install the copy and wait for its WAL flush: granting
                # before durability would let a target crash fence the
                # copy away -- and propagation can never redeliver it.
                # Polled, not yielded: fencing drops the flush's done
                # event without firing it, and a wedged wait here would
                # leave the lease suspended forever.
                durable = self.servers[to_site].install_container_backfill(
                    cid, self.servers[old].histories.export_container(cid)
                )
                while not durable.triggered:
                    if self.kernel.now >= deadline or self.network.is_crashed(
                        self.addresses[to_site]
                    ):
                        raise TimeoutError(
                            "migration of %r to site %d: backfill never durable"
                            % (cid, to_site)
                        )
                    yield self.kernel.timeout(0.01)
            if self.network.is_crashed(self.addresses[to_site]):
                raise TimeoutError(
                    "migration of %r to site %d: target crashed during catch-up"
                    % (cid, to_site)
                )
            self.config.reassign_preferred_site(cid, to_site)
            granted = True
        finally:
            if not granted:
                # Exactly-once rollback: this is the only other grant
                # after the revoke above, and it runs iff the terminal
                # grant did not.
                self.config.reassign_preferred_site(cid, old)

    def handover_container_gen(
        self, cid: str, to_site: int, within: float = 30.0
    ) -> Generator:
        """Backwards-compatible alias of :meth:`migrate_preferred_site`."""
        return (yield from self.migrate_preferred_site(cid, to_site, within=within))

    def _coordinator(self, at_site: int = 0) -> SiteRecoveryCoordinator:
        host = Host(
            self.kernel,
            self.network,
            at_site,
            "recovery-coord-%d-%d" % (self._deploy_id, next(self._client_seq)),
        )
        host.start()
        return SiteRecoveryCoordinator(self.kernel, host, self.addresses)
