"""Walter client library (paper Fig 14, §4.2, §6).

Clients talk to the Walter server at their own site via RPC.  The API
mirrors the C++ one: ``start``, ``read``, ``write``, ``setAdd``,
``setDel``, ``setRead``, ``setReadId``, ``commit``, ``abort``, plus
``new_id`` to mint fresh object ids.

Optimizations from the paper are available explicitly:

* the *start* of a transaction is always piggybacked onto its first
  access (``start_tx`` itself costs no RPC);
* passing ``last=True`` to an access piggybacks the *commit* onto it, so
  a single-access transaction costs exactly one RPC (§8.2);
* ``commit`` registers callbacks: the returned handle exposes events that
  fire when the transaction is disaster-safe durable and globally visible
  (§4.2).

All operation methods are generators; drive them with ``yield from``
inside a simulated process.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Hashable, Optional

from ..core.cset import CSet
from ..core.objects import ObjectId, ObjectKind
from ..net import Host, Network, RpcTimeout
from ..obs.trace import CLIENT_COMMIT_REPLY, CLIENT_COMMIT_SEND, COMMIT_RPC_END
from ..sim import Event, Kernel

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"


@dataclass(frozen=True)
class RetryPolicy:
    """Opt-in client retry for idempotent RPCs (DESIGN.md §9).

    Retries fire on :class:`~repro.net.RpcTimeout` only -- a remote
    error means the server answered.  Reads and aborts are naturally
    idempotent; ``commit`` becomes idempotent through a client-chosen
    token (``ck``) the server uses to cache the outcome, so a commit
    whose *reply* was lost is answered from the cache instead of being
    re-run.  Buffered-update RPCs (write/setAdd/setDel) are never
    retried: a duplicated setAdd would double the element count.

    Backoff is exponential with deterministic jitter: each client draws
    from a private stream seeded by its (unique) address, so retries
    stay reproducible under the simulation's fixed seeds."""

    #: Total attempts, including the first.
    attempts: int = 4
    #: Backoff before the first retry (seconds); doubles per retry.
    base_delay: float = 0.25
    multiplier: float = 2.0
    max_delay: float = 2.0
    #: Multiplicative jitter fraction on each backoff.
    jitter: float = 0.1


@dataclass
class TxHandle:
    """Client-side transaction handle."""

    tid: str
    client: "WalterClient"
    status: Optional[str] = None
    started: bool = False
    ds_event: Optional[Event] = None
    visible_event: Optional[Event] = None

    @property
    def committed(self) -> bool:
        return self.status == COMMITTED


class WalterClient(Host):
    """An application client bound to its site's Walter server."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        site,
        name: str,
        server_address: str,
        config,
        retry: Optional[RetryPolicy] = None,
        obs=None,
    ):
        super().__init__(kernel, network, site, name)
        self.server_address = server_address
        self.config = config
        self.retry = retry
        # Deep tracing only: the client brackets the commit RPC with
        # send/reply spans so budgets cover the full observed round trip.
        self._tracer = obs.tracer if obs is not None else None
        self._handles = {}
        # Per-client so tids are deterministic for a fixed seed (the
        # address is already unique on the network).
        self._tid_seq = itertools.count(1)
        # Deterministic backoff jitter: seeded by the unique address so
        # same-seed runs retry at identical sim times.
        self._retry_rng = random.Random("retry:%s" % name)
        #: Retries actually performed (observability for tests).
        self.retries_attempted = 0

    def _call_op(self, method: str, idempotent: bool = False, span=None, **args):
        """Generator: one client->server RPC, with retry-on-timeout for
        idempotent operations when a :class:`RetryPolicy` is set."""
        policy = self.retry
        if policy is None or not idempotent:
            result = yield from self.call(
                self.server_address, method, timeout=self._op_timeout(),
                span=span, **args
            )
            return result
        delay = policy.base_delay
        for attempt in range(max(1, policy.attempts)):
            try:
                result = yield from self.call(
                    self.server_address, method, timeout=self._op_timeout(),
                    span=span, **args
                )
                return result
            except RpcTimeout:
                if attempt >= policy.attempts - 1:
                    raise
                self.retries_attempted += 1
                sleep = min(delay, policy.max_delay)
                sleep *= 1.0 + policy.jitter * self._retry_rng.random()
                yield self.kernel.timeout(sleep)
                delay *= policy.multiplier

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def start_tx(self) -> TxHandle:
        """Local-only start; the server starts the transaction on the
        first access RPC (piggybacked start)."""
        tid = "%s:%d" % (self.address, next(self._tid_seq))
        handle = TxHandle(
            tid=tid,
            client=self,
            ds_event=self.kernel.event("ds:%s" % tid),
            visible_event=self.kernel.event("vis:%s" % tid),
        )
        self._handles[tid] = handle
        return handle

    def begin(self, tx: TxHandle):
        """Generator: eagerly start the transaction at the server (the
        C++ API's explicit ``start()``).  Without this, the start -- and
        the snapshot -- is taken at the first access RPC (§8.2)."""
        result = yield from self._call_op("tx_start", idempotent=True, tid=tx.tid)
        tx.started = True
        return result

    def commit(self, tx: TxHandle):
        """Generator: try to commit; returns COMMITTED or ABORTED.

        With a retry policy the commit carries an idempotency token, so
        a retry after a lost reply is answered from the server's outcome
        cache -- the transaction commits at most once either way."""
        kwargs = {}
        if self.retry is not None:
            kwargs["ck"] = "%s#commit" % tx.tid
        tracer = self._tracer
        deep = tracer is not None and tracer.deep
        if deep:
            sent = tracer.record(
                tx.tid, CLIENT_COMMIT_SEND, self.site.id, self.kernel.now
            )
            kwargs["span"] = (tx.tid, sent.seq)
        status = yield from self._call_op(
            "tx_commit",
            idempotent=self.retry is not None,
            tid=tx.tid,
            notify=self.address,
            allow_fresh=not tx.started,
            **kwargs,
        )
        if deep:
            tracer.record(
                tx.tid, CLIENT_COMMIT_REPLY, self.site.id, self.kernel.now,
                parent=tracer.last_seq(tx.tid, COMMIT_RPC_END),
            )
        self._finish(tx, status)
        return status

    def abort(self, tx: TxHandle):
        status = yield from self._call_op("tx_abort", idempotent=True, tid=tx.tid)
        self._finish(tx, ABORTED)
        return status

    # ------------------------------------------------------------------
    # Regular objects
    # ------------------------------------------------------------------
    def read(self, tx: TxHandle, oid: ObjectId, last: bool = False):
        result = yield from self._call_op(
            "tx_read",
            idempotent=not last,  # last=True piggybacks the commit
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            last=last,
            notify=self.address if last else None,
        )
        return self._unpack(tx, result, last)

    def write(self, tx: TxHandle, oid: ObjectId, data: Any, last: bool = False):
        result = yield from self._call_op(
            "tx_write",
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            data=data,
            last=last,
            notify=self.address if last else None,
        )
        tx.started = True
        if last:
            self._finish(tx, result)
        return result

    # ------------------------------------------------------------------
    # Cset objects
    # ------------------------------------------------------------------
    def set_add(self, tx: TxHandle, oid: ObjectId, elem: Hashable, last: bool = False):
        result = yield from self._call_op(
            "tx_set_add",
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            elem=elem,
            last=last,
            notify=self.address if last else None,
        )
        tx.started = True
        if last:
            self._finish(tx, result)
        return result

    def set_del(self, tx: TxHandle, oid: ObjectId, elem: Hashable, last: bool = False):
        result = yield from self._call_op(
            "tx_set_del",
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            elem=elem,
            last=last,
            notify=self.address if last else None,
        )
        tx.started = True
        if last:
            self._finish(tx, result)
        return result

    def set_read(self, tx: TxHandle, oid: ObjectId) -> CSet:
        cset = yield from self._call_op(
            "tx_set_read",
            idempotent=True,
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
        )
        tx.started = True
        return cset

    def set_read_id(self, tx: TxHandle, oid: ObjectId, elem: Hashable, last: bool = False):
        result = yield from self._call_op(
            "tx_set_read_id",
            idempotent=not last,
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            elem=elem,
            last=last,
            notify=self.address if last else None,
        )
        return self._unpack(tx, result, last)

    # ------------------------------------------------------------------
    # Combined operations (one RPC, §6)
    # ------------------------------------------------------------------
    def multiread(self, tx: TxHandle, oids, last: bool = False):
        result = yield from self._call_op(
            "tx_multiread",
            idempotent=not last,
            tid=tx.tid,
            fresh=not tx.started,
            oids=list(oids),
            last=last,
            notify=self.address if last else None,
        )
        return self._unpack(tx, result, last)

    def multiwrite(self, tx: TxHandle, writes, last: bool = False):
        result = yield from self._call_op(
            "tx_multiwrite",
            tid=tx.tid,
            fresh=not tx.started,
            writes=list(writes),
            last=last,
            notify=self.address if last else None,
        )
        tx.started = True
        if last:
            self._finish(tx, result)
        return result

    def read_cset_objects(self, tx: TxHandle, oid: ObjectId, limit=None, newest_first=True):
        result = yield from self._call_op(
            "tx_read_cset_objects",
            idempotent=True,
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            limit=limit,
            newest_first=newest_first,
        )
        tx.started = True
        return result

    # ------------------------------------------------------------------
    # Read-modify-write idioms (§3.4)
    # ------------------------------------------------------------------
    def read_modify_write(self, oid: ObjectId, fn, retries: int = 10):
        """Generator: atomically apply ``fn(old_value) -> new_value``.

        "Because PSI disallows write-write conflicts, a transaction can
        implement any atomic read-modify-write operation" (§3.4).  The
        transaction retries on conflict aborts; returns
        ``(status, new_value)``.
        """
        for _attempt in range(retries):
            tx = self.start_tx()
            old = yield from self.read(tx, oid)
            new = fn(old)
            yield from self.write(tx, oid, new)
            status = yield from self.commit(tx)
            if status == COMMITTED:
                return (status, new)
        return (ABORTED, None)

    def atomic_increment(self, oid: ObjectId, delta: int = 1, retries: int = 10):
        """Generator: atomic counter increment (nil counts as zero)."""
        result = yield from self.read_modify_write(
            oid, lambda old: (old or 0) + delta, retries=retries
        )
        return result

    def conditional_write(self, oid: ObjectId, expected: Any, new_value: Any):
        """Generator: write ``new_value`` only if the object currently
        holds ``expected`` (§3.4\'s conditional write / compare-and-set).
        Returns ``(True, status)`` if the condition held and the write
        committed, else ``(False, status)``."""
        tx = self.start_tx()
        current = yield from self.read(tx, oid)
        if current != expected:
            yield from self.abort(tx)
            return (False, ABORTED)
        yield from self.write(tx, oid, new_value)
        status = yield from self.commit(tx)
        return (status == COMMITTED, status)

    # ------------------------------------------------------------------
    # Object ids
    # ------------------------------------------------------------------
    def new_id(self, cid: str, kind: ObjectKind = ObjectKind.REGULAR) -> ObjectId:
        """Mint a fresh oid in a container (Fig 14 ``newid``); objects
        conceptually always exist initialized to nil, so this is local."""
        return self.config.container(cid).new_id(kind)

    # ------------------------------------------------------------------
    # Durability callbacks (server casts)
    # ------------------------------------------------------------------
    def on_tx_ds_durable(self, src: str, tid: str):
        handle = self._handles.get(tid)
        if handle is not None and handle.ds_event is not None:
            handle.ds_event.trigger_once(self.kernel.now)

    def on_tx_visible(self, src: str, tid: str):
        handle = self._handles.get(tid)
        if handle is not None and handle.visible_event is not None:
            handle.visible_event.trigger_once(self.kernel.now)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _unpack(self, tx: TxHandle, result, last: bool):
        tx.started = True
        if last:
            value, status = result
            self._finish(tx, status)
            return value
        return result

    def _finish(self, tx: TxHandle, status: str) -> None:
        tx.status = status
        if status != COMMITTED:
            # No durability milestones will ever arrive.
            self._handles.pop(tx.tid, None)

    def _op_timeout(self) -> float:
        return 8.0 * self.network.topology.max_rtt_from(self.site.id) + 2.0
