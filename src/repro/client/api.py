"""Walter client library (paper Fig 14, §4.2, §6).

Clients talk to the Walter server at their own site via RPC.  The API
mirrors the C++ one: ``start``, ``read``, ``write``, ``setAdd``,
``setDel``, ``setRead``, ``setReadId``, ``commit``, ``abort``, plus
``new_id`` to mint fresh object ids.

Optimizations from the paper are available explicitly:

* the *start* of a transaction is always piggybacked onto its first
  access (``start_tx`` itself costs no RPC);
* passing ``last=True`` to an access piggybacks the *commit* onto it, so
  a single-access transaction costs exactly one RPC (§8.2);
* ``commit`` registers callbacks: the returned handle exposes events that
  fire when the transaction is disaster-safe durable and globally visible
  (§4.2).

All operation methods are generators; drive them with ``yield from``
inside a simulated process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Hashable, Optional

from ..core.cset import CSet
from ..core.objects import ObjectId, ObjectKind
from ..net import Host, Network
from ..sim import Event, Kernel

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"

@dataclass
class TxHandle:
    """Client-side transaction handle."""

    tid: str
    client: "WalterClient"
    status: Optional[str] = None
    started: bool = False
    ds_event: Optional[Event] = None
    visible_event: Optional[Event] = None

    @property
    def committed(self) -> bool:
        return self.status == COMMITTED


class WalterClient(Host):
    """An application client bound to its site's Walter server."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        site,
        name: str,
        server_address: str,
        config,
    ):
        super().__init__(kernel, network, site, name)
        self.server_address = server_address
        self.config = config
        self._handles = {}
        # Per-client so tids are deterministic for a fixed seed (the
        # address is already unique on the network).
        self._tid_seq = itertools.count(1)

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def start_tx(self) -> TxHandle:
        """Local-only start; the server starts the transaction on the
        first access RPC (piggybacked start)."""
        tid = "%s:%d" % (self.address, next(self._tid_seq))
        handle = TxHandle(
            tid=tid,
            client=self,
            ds_event=self.kernel.event("ds:%s" % tid),
            visible_event=self.kernel.event("vis:%s" % tid),
        )
        self._handles[tid] = handle
        return handle

    def begin(self, tx: TxHandle):
        """Generator: eagerly start the transaction at the server (the
        C++ API's explicit ``start()``).  Without this, the start -- and
        the snapshot -- is taken at the first access RPC (§8.2)."""
        result = yield from self.call(
            self.server_address, "tx_start", tid=tx.tid, timeout=self._op_timeout()
        )
        tx.started = True
        return result

    def commit(self, tx: TxHandle):
        """Generator: try to commit; returns COMMITTED or ABORTED."""
        status = yield from self.call(
            self.server_address,
            "tx_commit",
            tid=tx.tid,
            notify=self.address,
            allow_fresh=not tx.started,
            timeout=self._op_timeout(),
        )
        self._finish(tx, status)
        return status

    def abort(self, tx: TxHandle):
        status = yield from self.call(
            self.server_address, "tx_abort", tid=tx.tid, timeout=self._op_timeout()
        )
        self._finish(tx, ABORTED)
        return status

    # ------------------------------------------------------------------
    # Regular objects
    # ------------------------------------------------------------------
    def read(self, tx: TxHandle, oid: ObjectId, last: bool = False):
        result = yield from self.call(
            self.server_address,
            "tx_read",
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            last=last,
            notify=self.address if last else None,
            timeout=self._op_timeout(),
        )
        return self._unpack(tx, result, last)

    def write(self, tx: TxHandle, oid: ObjectId, data: Any, last: bool = False):
        result = yield from self.call(
            self.server_address,
            "tx_write",
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            data=data,
            last=last,
            notify=self.address if last else None,
            timeout=self._op_timeout(),
        )
        tx.started = True
        if last:
            self._finish(tx, result)
        return result

    # ------------------------------------------------------------------
    # Cset objects
    # ------------------------------------------------------------------
    def set_add(self, tx: TxHandle, oid: ObjectId, elem: Hashable, last: bool = False):
        result = yield from self.call(
            self.server_address,
            "tx_set_add",
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            elem=elem,
            last=last,
            notify=self.address if last else None,
            timeout=self._op_timeout(),
        )
        tx.started = True
        if last:
            self._finish(tx, result)
        return result

    def set_del(self, tx: TxHandle, oid: ObjectId, elem: Hashable, last: bool = False):
        result = yield from self.call(
            self.server_address,
            "tx_set_del",
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            elem=elem,
            last=last,
            notify=self.address if last else None,
            timeout=self._op_timeout(),
        )
        tx.started = True
        if last:
            self._finish(tx, result)
        return result

    def set_read(self, tx: TxHandle, oid: ObjectId) -> CSet:
        cset = yield from self.call(
            self.server_address,
            "tx_set_read",
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            timeout=self._op_timeout(),
        )
        tx.started = True
        return cset

    def set_read_id(self, tx: TxHandle, oid: ObjectId, elem: Hashable, last: bool = False):
        result = yield from self.call(
            self.server_address,
            "tx_set_read_id",
            tid=tx.tid,
            fresh=not tx.started,
            oid=oid,
            elem=elem,
            last=last,
            notify=self.address if last else None,
            timeout=self._op_timeout(),
        )
        return self._unpack(tx, result, last)

    # ------------------------------------------------------------------
    # Combined operations (one RPC, §6)
    # ------------------------------------------------------------------
    def multiread(self, tx: TxHandle, oids, last: bool = False):
        result = yield from self.call(
            self.server_address,
            "tx_multiread",
            tid=tx.tid,
            oids=list(oids),
            last=last,
            notify=self.address if last else None,
            timeout=self._op_timeout(),
        )
        return self._unpack(tx, result, last)

    def multiwrite(self, tx: TxHandle, writes, last: bool = False):
        result = yield from self.call(
            self.server_address,
            "tx_multiwrite",
            tid=tx.tid,
            writes=list(writes),
            last=last,
            notify=self.address if last else None,
            timeout=self._op_timeout(),
        )
        tx.started = True
        if last:
            self._finish(tx, result)
        return result

    def read_cset_objects(self, tx: TxHandle, oid: ObjectId, limit=None, newest_first=True):
        result = yield from self.call(
            self.server_address,
            "tx_read_cset_objects",
            tid=tx.tid,
            oid=oid,
            limit=limit,
            newest_first=newest_first,
            timeout=self._op_timeout(),
        )
        return result

    # ------------------------------------------------------------------
    # Read-modify-write idioms (§3.4)
    # ------------------------------------------------------------------
    def read_modify_write(self, oid: ObjectId, fn, retries: int = 10):
        """Generator: atomically apply ``fn(old_value) -> new_value``.

        "Because PSI disallows write-write conflicts, a transaction can
        implement any atomic read-modify-write operation" (§3.4).  The
        transaction retries on conflict aborts; returns
        ``(status, new_value)``.
        """
        for _attempt in range(retries):
            tx = self.start_tx()
            old = yield from self.read(tx, oid)
            new = fn(old)
            yield from self.write(tx, oid, new)
            status = yield from self.commit(tx)
            if status == COMMITTED:
                return (status, new)
        return (ABORTED, None)

    def atomic_increment(self, oid: ObjectId, delta: int = 1, retries: int = 10):
        """Generator: atomic counter increment (nil counts as zero)."""
        result = yield from self.read_modify_write(
            oid, lambda old: (old or 0) + delta, retries=retries
        )
        return result

    def conditional_write(self, oid: ObjectId, expected: Any, new_value: Any):
        """Generator: write ``new_value`` only if the object currently
        holds ``expected`` (§3.4\'s conditional write / compare-and-set).
        Returns ``(True, status)`` if the condition held and the write
        committed, else ``(False, status)``."""
        tx = self.start_tx()
        current = yield from self.read(tx, oid)
        if current != expected:
            yield from self.abort(tx)
            return (False, ABORTED)
        yield from self.write(tx, oid, new_value)
        status = yield from self.commit(tx)
        return (status == COMMITTED, status)

    # ------------------------------------------------------------------
    # Object ids
    # ------------------------------------------------------------------
    def new_id(self, cid: str, kind: ObjectKind = ObjectKind.REGULAR) -> ObjectId:
        """Mint a fresh oid in a container (Fig 14 ``newid``); objects
        conceptually always exist initialized to nil, so this is local."""
        return self.config.container(cid).new_id(kind)

    # ------------------------------------------------------------------
    # Durability callbacks (server casts)
    # ------------------------------------------------------------------
    def on_tx_ds_durable(self, src: str, tid: str):
        handle = self._handles.get(tid)
        if handle is not None and handle.ds_event is not None:
            handle.ds_event.trigger_once(self.kernel.now)

    def on_tx_visible(self, src: str, tid: str):
        handle = self._handles.get(tid)
        if handle is not None and handle.visible_event is not None:
            handle.visible_event.trigger_once(self.kernel.now)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _unpack(self, tx: TxHandle, result, last: bool):
        tx.started = True
        if last:
            value, status = result
            self._finish(tx, status)
            return value
        return result

    def _finish(self, tx: TxHandle, status: str) -> None:
        tx.status = status
        if status != COMMITTED:
            # No durability milestones will ever arrive.
            self._handles.pop(tx.tid, None)

    def _op_timeout(self) -> float:
        return 8.0 * self.network.topology.max_rtt_from(self.site.id) + 2.0
