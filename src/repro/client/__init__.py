"""Walter client library (Fig 14 API)."""

from .api import ABORTED, COMMITTED, RetryPolicy, TxHandle, WalterClient

__all__ = ["ABORTED", "COMMITTED", "RetryPolicy", "TxHandle", "WalterClient"]
