"""Walter client library (Fig 14 API)."""

from .api import ABORTED, COMMITTED, TxHandle, WalterClient

__all__ = ["ABORTED", "COMMITTED", "TxHandle", "WalterClient"]
