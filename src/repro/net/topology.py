"""Site topology: the latency/bandwidth model between data centers.

The default topology is the paper's measured EC2 deployment (§8.1): four
sites -- Virginia (VA), California (CA), Ireland (IE), Singapore (SG) --
with the published average round-trip latencies, >600 Mbps of intra-site
bandwidth and a 22 Mbps cross-site bandwidth cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Site:
    """A data center participating in the deployment."""

    id: int
    name: str

    def __str__(self) -> str:
        return self.name


#: Paper §8.1, average round-trip latencies in milliseconds.
EC2_RTT_MS: Dict[Tuple[str, str], float] = {
    ("VA", "VA"): 0.5,
    ("VA", "CA"): 82.0,
    ("VA", "IE"): 87.0,
    ("VA", "SG"): 261.0,
    ("CA", "CA"): 0.3,
    ("CA", "IE"): 153.0,
    ("CA", "SG"): 190.0,
    ("IE", "IE"): 0.5,
    ("IE", "SG"): 277.0,
    ("SG", "SG"): 0.3,
}

EC2_SITE_NAMES: List[str] = ["VA", "CA", "IE", "SG"]

#: Paper §8.1: intra-site bandwidth over 600 Mbps, cross-site cap 22 Mbps.
EC2_INTRA_SITE_BANDWIDTH_BPS = 600e6
EC2_CROSS_SITE_BANDWIDTH_BPS = 22e6


class Topology:
    """Sites plus a symmetric RTT matrix and pairwise bandwidth limits.

    RTTs are stored in milliseconds (matching the paper's tables) but all
    query methods return **seconds**, the kernel's time unit.
    """

    def __init__(
        self,
        site_names: Sequence[str],
        rtt_ms: Dict[Tuple[str, str], float],
        intra_bandwidth_bps: float = EC2_INTRA_SITE_BANDWIDTH_BPS,
        cross_bandwidth_bps: float = EC2_CROSS_SITE_BANDWIDTH_BPS,
    ):
        self.sites: List[Site] = [Site(i, name) for i, name in enumerate(site_names)]
        self._by_name: Dict[str, Site] = {s.name: s for s in self.sites}
        if len(self._by_name) != len(self.sites):
            raise ValueError("duplicate site names: %r" % (site_names,))
        self._rtt_ms: Dict[Tuple[str, str], float] = {}
        for (a, b), ms in rtt_ms.items():
            self._rtt_ms[(a, b)] = ms
            self._rtt_ms[(b, a)] = ms
        for a in site_names:
            for b in site_names:
                if (a, b) not in self._rtt_ms:
                    raise ValueError("missing RTT for (%s, %s)" % (a, b))
        self.intra_bandwidth_bps = intra_bandwidth_bps
        self.cross_bandwidth_bps = cross_bandwidth_bps
        # The topology is immutable after construction, so RTT lookups and
        # the per-origin RTTmax (queried on every propagation-loop
        # iteration via the batch period) can be resolved once.
        self._rtt_s: Dict[Tuple[int, int], float] = {}
        for sa in self.sites:
            for sb in self.sites:
                self._rtt_s[(sa.id, sb.id)] = self._rtt_ms[(sa.name, sb.name)] / 1000.0
        self._max_rtt_s: Dict[int, float] = {}
        #: Optional grouping of distinct sites that share a LAN (set by
        #: :meth:`sharded`): pairs in the same group get intra-site
        #: bandwidth.  ``None`` keeps the classic same-id-only rule.
        self._intra_group_of: Optional[Dict[int, int]] = None

    @classmethod
    def ec2(cls, n_sites: int = 4) -> "Topology":
        """The paper's EC2 deployment truncated to its first ``n_sites``.

        Matches the experiment table in §8.1: 1-site = VA, 2-sites = VA+CA,
        3-sites adds IE, 4-sites adds SG.
        """
        if not 1 <= n_sites <= 4:
            raise ValueError("EC2 topology supports 1-4 sites, got %d" % n_sites)
        names = EC2_SITE_NAMES[:n_sites]
        rtt = {
            pair: ms
            for pair, ms in EC2_RTT_MS.items()
            if pair[0] in names and pair[1] in names
        }
        return cls(names, rtt)

    @classmethod
    def datacenters(
        cls,
        sites_per_dc: Sequence[int],
        wan_rtt_ms: float = 85.0,
        lan_rtt_ms: float = 0.3,
        local_rtt_ms: float = 0.2,
    ) -> "Topology":
        """Data centers containing multiple "local sites" (§5.8).

        "A simple way to scale the system is to divide a data center into
        several local sites, each with its own server, and then partition
        the objects across the local sites in the data center."  Sites in
        the same data center see LAN latency; different data centers see
        WAN latency.  Site names are ``DC<d>S<i>``.
        """
        names: List[str] = []
        dc_of: Dict[str, int] = {}
        for dc, count in enumerate(sites_per_dc):
            for i in range(count):
                name = "DC%dS%d" % (dc, i)
                names.append(name)
                dc_of[name] = dc
        table: Dict[Tuple[str, str], float] = {}
        for i, a in enumerate(names):
            for b in names[i:]:
                if a == b:
                    table[(a, b)] = local_rtt_ms
                elif dc_of[a] == dc_of[b]:
                    table[(a, b)] = lan_rtt_ms
                else:
                    table[(a, b)] = wan_rtt_ms
        topo = cls(names, table)
        topo.dc_of = {topo.site(name).id: dc for name, dc in dc_of.items()}
        return topo

    @classmethod
    def sharded(
        cls,
        base: "Topology",
        shards: int,
        lan_rtt_ms: float = 0.3,
    ) -> "Topology":
        """Expand ``base`` so every data center runs ``shards`` co-located
        shard servers (one keyspace shard each, DESIGN.md §13).

        Logical site ``b * shards + k`` is shard ``k`` of base site ``b``
        and is named ``<base>/s<k>``.  Shard servers of the same base site
        see LAN latency (``lan_rtt_ms``) and intra-site bandwidth; shard
        servers of different base sites inherit the base pair's WAN RTT
        and the cross-site bandwidth cap.  ``shards=1`` callers should use
        ``base`` directly -- the deployment layer does, so a single-shard
        run is bit-identical to an unsharded one.

        The result carries ``shards``, ``base_of`` (logical site id ->
        base site id) and ``shard_of`` (logical site id -> shard index),
        mirroring the ``dc_of`` annotation of :meth:`datacenters`.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1, got %d" % shards)
        names: List[str] = []
        origin: List[Tuple[str, int]] = []
        for site in base.sites:
            for k in range(shards):
                names.append("%s/s%d" % (site.name, k))
                origin.append((site.name, k))
        table: Dict[Tuple[str, str], float] = {}
        for i, a in enumerate(names):
            base_a, _shard_a = origin[i]
            for j in range(i, len(names)):
                b = names[j]
                base_b, _shard_b = origin[j]
                if a == b:
                    table[(a, b)] = base._rtt_ms[(base_a, base_a)]
                elif base_a == base_b:
                    table[(a, b)] = lan_rtt_ms
                else:
                    table[(a, b)] = base._rtt_ms[(base_a, base_b)]
        topo = cls(
            names,
            table,
            intra_bandwidth_bps=base.intra_bandwidth_bps,
            cross_bandwidth_bps=base.cross_bandwidth_bps,
        )
        topo.shards = shards
        topo.base_of = {
            topo.site(name).id: base.site(origin[i][0]).id
            for i, name in enumerate(names)
        }
        topo.shard_of = {
            topo.site(name).id: origin[i][1] for i, name in enumerate(names)
        }
        # Same-base shard servers share the data center's LAN: message
        # transfer between them uses intra-site bandwidth, not the WAN cap.
        topo._intra_group_of = dict(topo.base_of)
        return topo

    @classmethod
    def uniform(cls, n_sites: int, rtt_ms: float, local_rtt_ms: float = 0.5) -> "Topology":
        """A synthetic topology with one RTT between every pair of sites."""
        names = ["S%d" % i for i in range(n_sites)]
        table = {}
        for i, a in enumerate(names):
            for b in names[i:]:
                table[(a, b)] = local_rtt_ms if a == b else rtt_ms
        return cls(names, table)

    def __len__(self) -> int:
        return len(self.sites)

    def site(self, ref) -> Site:
        """Resolve a site from an id, name, or Site instance."""
        if isinstance(ref, Site):
            return ref
        if isinstance(ref, int):
            return self.sites[ref]
        return self._by_name[ref]

    def site_ids(self) -> List[int]:
        return [s.id for s in self.sites]

    def rtt(self, a, b) -> float:
        """Round-trip time between two sites, in seconds."""
        sa, sb = self.site(a), self.site(b)
        return self._rtt_s[(sa.id, sb.id)]

    def one_way(self, a, b) -> float:
        """One-way propagation delay between two sites, in seconds."""
        return self.rtt(a, b) / 2.0

    def bandwidth_bps(self, a, b) -> float:
        sa, sb = self.site(a), self.site(b)
        if sa.id == sb.id:
            return self.intra_bandwidth_bps
        groups = self._intra_group_of
        if groups is not None and groups.get(sa.id) == groups.get(sb.id):
            return self.intra_bandwidth_bps
        return self.cross_bandwidth_bps

    def min_crossing_latency_s(self, groups: "Optional[Sequence[Sequence[int]]]" = None) -> float:
        """Minimum jitter-free one-way latency between sites in *different*
        groups, in seconds -- the conservative lookahead of the parallel
        executor (DESIGN.md §12).

        ``groups`` partitions site ids into clusters; with no argument
        every site is its own group (the tightest lookahead any
        partitioning can have).  Jitter in the network model is purely
        additive (``latency *= 1 + U[0,1) * jitter_frac``), so no message
        between different groups can ever arrive sooner than this bound.
        Raises ``ValueError`` for a single all-encompassing group, which
        has no crossing links.
        """
        if groups is None:
            groups = [(s.id,) for s in self.sites]
        group_of: Dict[int, int] = {}
        for gi, members in enumerate(groups):
            for site in members:
                group_of[self.site(site).id] = gi
        best: Optional[float] = None
        for sa in self.sites:
            for sb in self.sites:
                if sa.id == sb.id:
                    continue
                if group_of.get(sa.id) == group_of.get(sb.id):
                    continue
                one_way = self._rtt_s[(sa.id, sb.id)] / 2.0
                if best is None or one_way < best:
                    best = one_way
        if best is None:
            raise ValueError(
                "no crossing links: %d sites in %d group(s)" % (len(self.sites), len(groups))
            )
        return best

    def max_rtt_from(self, origin) -> float:
        """RTTmax as used by the paper's replication-latency analysis:
        the largest RTT from ``origin`` to any *other* site, in seconds."""
        so = self.site(origin)
        cached = self._max_rtt_s.get(so.id)
        if cached is None:
            others = [s for s in self.sites if s.id != so.id]
            if not others:
                cached = self.rtt(so, so)
            else:
                cached = max(self.rtt(so, s) for s in others)
            self._max_rtt_s[so.id] = cached
        return cached
