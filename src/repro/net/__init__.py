"""Simulated wide-area network: topology, message delivery, RPC."""

from .network import ClusterGateway, Envelope, Message, Network, NetworkStats
from .rpc import Cast, Host, RpcError, RpcRemoteError, RpcReply, RpcRequest, RpcTimeout
from .wire import (
    ack_batch_bytes,
    decode_propagation_batch,
    encode_propagation_batch,
)
from .topology import (
    EC2_CROSS_SITE_BANDWIDTH_BPS,
    EC2_INTRA_SITE_BANDWIDTH_BPS,
    EC2_RTT_MS,
    EC2_SITE_NAMES,
    Site,
    Topology,
)

__all__ = [
    "ack_batch_bytes",
    "Cast",
    "ClusterGateway",
    "decode_propagation_batch",
    "encode_propagation_batch",
    "Envelope",
    "EC2_CROSS_SITE_BANDWIDTH_BPS",
    "EC2_INTRA_SITE_BANDWIDTH_BPS",
    "EC2_RTT_MS",
    "EC2_SITE_NAMES",
    "Host",
    "Message",
    "Network",
    "NetworkStats",
    "RpcError",
    "RpcRemoteError",
    "RpcReply",
    "RpcRequest",
    "RpcTimeout",
    "Site",
    "Topology",
]
