"""RPC layer between simulated hosts.

Walter clients talk to their local server via remote procedure calls
(paper §5.1), and servers talk to each other both via RPCs (the slow
commit's prepare/abort) and via one-way protocol messages (PROPAGATE,
DS-DURABLE, VISIBLE -- Fig 13).  Both styles are provided here.

:class:`Host` is the base class for every networked component.  Subclasses
expose RPC methods named ``rpc_<method>`` and one-way handlers named
``on_<method>``; handlers may be plain functions or generators (which may
block on simulated I/O).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Dict, Optional

import heapq

from ..sim import Event, Interrupt, Kernel, Waitable
from .network import Network


class _ReplyOrTimeout(Waitable):
    """``AnyOf([reply_event, Timeout(delay)])`` specialized for the RPC
    wait-for-reply race.

    Behaviourally identical to the generic combinator -- the yield value
    is ``(0, reply)`` or ``(1, None)``, and the subscription order (event
    first, then the timer) consumes kernel sequence numbers exactly as
    ``AnyOf`` would -- but avoids its per-call closure factories, child
    list, and Timeout allocation.  ``call`` runs once per RPC, which makes
    this one of the hottest allocation sites in the simulator.
    """

    __slots__ = ("event", "delay", "_callback", "_settled")

    def __init__(self, event: Event, delay: float):
        self.event = event
        self.delay = delay

    def _subscribe(self, kernel: Kernel, callback) -> None:
        self._callback = callback
        self._settled = False
        self.event._subscribe(kernel, self._on_reply)
        kernel._seq += 1
        heapq.heappush(
            kernel._heap,
            (kernel.now + self.delay, kernel._seq, self._on_timeout, (None, None)),
        )

    def _on_reply(self, value, exc) -> None:
        if self._settled:
            return
        self._settled = True
        if exc is not None:
            self._callback(None, exc)
        else:
            self._callback((0, value), None)

    def _on_timeout(self, value, exc) -> None:
        if self._settled:
            return
        self._settled = True
        self._callback((1, value), None)


class RpcError(Exception):
    """Base class for RPC failures."""


class RpcTimeout(RpcError):
    """The reply did not arrive within the caller's deadline."""


class RpcRemoteError(RpcError):
    """The remote handler raised; carries the remote error string."""


@dataclass(slots=True)
class RpcRequest:
    rpc_id: int
    method: str
    args: Dict[str, Any]
    reply_to: str
    #: Deep-tracing span context: ``(tid, parent_seq)`` linking the
    #: handler's spans back to the caller's span graph, or None.
    span: Optional[tuple] = None

    def __reduce__(self):
        # Wire messages cross process boundaries at every parallel
        # barrier; constructor-args reduce beats the slot-state default.
        return (RpcRequest, (self.rpc_id, self.method, self.args, self.reply_to, self.span))


@dataclass(slots=True)
class RpcReply:
    rpc_id: int
    value: Any = None
    error: Optional[str] = None

    def __reduce__(self):
        return (RpcReply, (self.rpc_id, self.value, self.error))


@dataclass(slots=True)
class Cast:
    """A one-way protocol message (no reply)."""

    method: str
    args: Dict[str, Any] = field(default_factory=dict)
    src: str = ""

    def __reduce__(self):
        return (Cast, (self.method, self.args, self.src))


class Host:
    """A networked component: mailbox, dispatch loop, RPC client+server."""

    #: Default request/reply sizes in bytes when the caller does not say.
    DEFAULT_MSG_BYTES = 256

    def __init__(self, kernel: Kernel, network: Network, site, name: str, takeover: bool = False):
        self.kernel = kernel
        self.network = network
        self.site = network.topology.site(site)
        self.address = name
        self.mailbox = network.register(name, self.site, takeover=takeover)
        self._pending: Dict[int, Event] = {}
        self._next_rpc_id = 0
        self._running = False
        self._loop = None
        self._children: list = []
        # Dead children are pruned when the list reaches this size; the
        # threshold then doubles with the surviving count so pruning is
        # amortized O(1) per spawn (it is count-based, so deterministic).
        self._prune_at = 32
        # getattr(self, "rpc_..."/"on_...") resolved once per method name.
        self._rpc_handlers: Dict[str, Any] = {}
        self._cast_handlers: Dict[str, Any] = {}
        #: Fault-injection hook: RPC method -> sim time until which this
        #: host's *replies* to that method are suppressed (the request IS
        #: processed -- models a reply lost on the wire after the handler
        #: ran, e.g. a prepare that locked but whose YES never arrived).
        self._drop_reply_until: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._loop = self.kernel.spawn(self._dispatch_loop(), name="dispatch:%s" % self.address)

    def stop(self) -> None:
        """Stop dispatching (used to model a host crash at the app level)."""
        self._running = False
        if self._loop is not None and not self._loop.done:
            self._loop.interrupt("stopped")
        for event in self._pending.values():
            if not event.triggered:
                event.fail(RpcTimeout("host %s stopped" % self.address))
        self._pending.clear()

    def crash(self) -> None:
        """Crash this host: stop dispatching, drop network traffic, and
        kill in-flight handler processes.  A crashed OS process does not
        keep executing, so work forked off the dispatch loop must not
        either -- only effects already handed to durable storage or the
        network survive the crash."""
        self.network.crash_host(self.address)
        self.stop()
        children, self._children = self._children, []
        for proc in children:
            proc.interrupt("crashed")

    def spawn_child(self, gen, name: str = ""):
        """Spawn a process that dies with this host (see :meth:`crash`).

        The process absorbs the :class:`~repro.sim.Interrupt` a crash
        throws (``absorb_interrupt``), so killed handlers never surface
        as orphan failures."""
        if len(self._children) >= self._prune_at:
            self._children = [p for p in self._children if not p.done]
            self._prune_at = max(32, 2 * len(self._children))
        proc = self.kernel.spawn(gen, name=name, absorb_interrupt=True)
        self._children.append(proc)
        return proc

    def _dispatch_loop(self):
        mailbox_get = self.mailbox.get
        try:
            while self._running:
                message = yield mailbox_get()
                payload = message.payload
                # Exact-type dispatch: the three payload classes are final
                # (slotted dataclasses, never subclassed), and an identity
                # check is the cheapest test on this per-message path.
                cls = payload.__class__
                if cls is RpcRequest:
                    self.spawn_child(
                        self._serve(payload),
                        name=("serve:%s.%s", (self.address, payload.method)),
                    )
                elif cls is RpcReply:
                    event = self._pending.pop(payload.rpc_id, None)
                    if event is not None and not event.triggered:
                        if payload.error is not None:
                            event.fail(RpcRemoteError(payload.error))
                        else:
                            event.trigger(payload.value)
                elif cls is Cast:
                    method = payload.method
                    handler = self._cast_handlers.get(method)
                    if handler is None:
                        handler = getattr(self, "on_" + method, None)
                        if handler is None:
                            raise RpcError(
                                "%s has no handler on_%s" % (self.address, method)
                            )
                        self._cast_handlers[method] = handler
                    result = handler(payload.src, **payload.args)
                    if type(result) is GeneratorType:
                        self.spawn_child(
                            result, name=("on:%s.%s", (self.address, method))
                        )
                else:
                    raise RpcError("unexpected payload %r" % (payload,))
        except Interrupt:
            return

    def _serve(self, request: RpcRequest):
        if request.span is not None:
            self._on_rpc_span(request.method, request.span)
        try:
            handler = self._rpc_handlers[request.method]
        except KeyError:
            handler = getattr(self, "rpc_" + request.method, None)
            if handler is not None:
                self._rpc_handlers[request.method] = handler
        reply = RpcReply(rpc_id=request.rpc_id)
        if handler is None:
            reply.error = "no such method %r on %s" % (request.method, self.address)
        else:
            try:
                result = handler(**request.args)
                if type(result) is GeneratorType:
                    result = yield from result
                reply.value = result
            except Exception as exc:  # noqa: BLE001 - shipped to caller
                reply.error = "%s: %s" % (type(exc).__name__, exc)
        if self._drop_reply_until:
            until = self._drop_reply_until.get(request.method)
            if until is not None:
                if self.kernel.now < until:
                    self._reply_dropped(request.method)
                    return
                del self._drop_reply_until[request.method]
        self.network.send(
            self.address, request.reply_to, reply, size_bytes=self.DEFAULT_MSG_BYTES
        )

    def _on_rpc_span(self, method: str, span_ctx: tuple) -> None:
        """Observability hook: a request carrying span context arrived.
        Hosts with a tracer override this to record the receive edge."""

    def drop_replies(self, method: str, duration: float) -> None:
        """Suppress replies to ``method`` for ``duration`` sim-seconds
        (chaos fault injection; requests are still fully processed)."""
        self._drop_reply_until[method] = self.kernel.now + duration

    def _reply_dropped(self, method: str) -> None:
        """Observability hook; subclasses may count dropped replies."""

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def call(
        self,
        dst: str,
        method: str,
        size_bytes: Optional[int] = None,
        timeout: Optional[float] = None,
        span: Optional[tuple] = None,
        **args,
    ):
        """Generator: invoke ``method`` on host ``dst`` and return the value.

        Use as ``value = yield from self.call(dst, "prepare", ...)``.
        Raises :class:`RpcTimeout` if no reply arrives within ``timeout``
        simulated seconds, and :class:`RpcRemoteError` if the remote handler
        raised.
        """
        self._next_rpc_id += 1
        rpc_id = self._next_rpc_id
        event = Event(self.kernel, ("rpc:%s->%s.%s", (self.address, dst, method)))
        self._pending[rpc_id] = event
        request = RpcRequest(
            rpc_id=rpc_id, method=method, args=args, reply_to=self.address, span=span
        )
        self.network.send(
            self.address, dst, request, size_bytes=size_bytes or self.DEFAULT_MSG_BYTES
        )
        if timeout is None:
            value = yield event
            return value
        index, value = yield _ReplyOrTimeout(event, timeout)
        if index == 1:
            self._pending.pop(rpc_id, None)
            raise RpcTimeout(
                "rpc %s.%s from %s timed out after %gs" % (dst, method, self.address, timeout)
            )
        return value

    def cast(self, dst: str, method: str, size_bytes: Optional[int] = None, **args) -> None:
        """Fire-and-forget protocol message to ``dst``."""
        self.network.send(
            self.address,
            dst,
            Cast(method=method, args=args, src=self.address),
            size_bytes=size_bytes or self.DEFAULT_MSG_BYTES,
        )
