"""Propagation wire format: delta-encoded commit-record batches.

A propagation batch ships runs of consecutive commit records from one
origin to one destination.  Unbatched, every record carries its full
``startVTS`` (8 bytes per site) plus a per-record header; across a batch
that metadata dominates the wire for small transactions.  The batched
encoding amortizes it:

* the **first** record of a batch carries its snapshot vector absolutely;
* every **subsequent** record carries only the sparse delta against its
  predecessor's vector -- consecutive commits at one site share almost
  their entire snapshot, so the delta is typically one or two entries;
* **header-only** entries (records fully trimmed for a non-replica
  destination under partial replication) carry no update payload at all,
  just the ``tid``/``seqno``/delta header the destination needs to keep
  its vector clocks and got-guard stream contiguous.

Delta encoding is safe under partial replication because trimming drops
*updates*, never snapshot metadata: a trimmed record keeps its full
``startVTS``, so the reconstruction below is exact regardless of which
updates a destination receives.  Decoding rebuilds real
:class:`~repro.core.transaction.CommitRecord` objects, so everything
downstream of delivery (got-guard, apply, WAL) is unchanged.

The byte accounting mirrors :meth:`CommitRecord.payload_bytes` for
update payloads; headers and vector entries use the same rough per-field
costs the rest of the network model uses.  Only the simulated
``size_bytes`` is derived from it -- the entries themselves carry the
update objects by reference, like every other simulated message.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.transaction import CommitRecord
from ..core.updates import DataUpdate
from ..core.versions import VectorTimestamp

#: Fixed batch framing (method id, origin site, record count, checksum).
BATCH_HEADER_BYTES = 64
#: Per-record header: tid hash, seqno, commit timestamp, flags.
RECORD_HEADER_BYTES = 24
#: One transmitted vector entry (site index + seqno).
VTS_ENTRY_BYTES = 8
#: Footprint digest on trimmed records (``touched`` container ids).
TOUCHED_BYTES = 8
#: One tid in an ack/DS/VISIBLE batch (tid hash + site).
ACK_ENTRY_BYTES = 24


def _updates_bytes(updates) -> int:
    """Per-update wire cost, matching ``CommitRecord.payload_bytes``."""
    per = 0
    for u in updates:
        if isinstance(u, DataUpdate):
            data = u.data
            if isinstance(data, (bytes, str)):
                per += 32 + len(data)
            else:
                per += 96
        else:
            per += 48
    return per


def ack_batch_bytes(n: int) -> int:
    """Wire size of an ack/DS-DURABLE/VISIBLE batch of ``n`` entries."""
    return BATCH_HEADER_BYTES + ACK_ENTRY_BYTES * n


def encode_propagation_batch(
    records: List[CommitRecord], delta_vts: bool = True
) -> Tuple[list, int]:
    """Encode ``records`` (one origin, seqno order) into wire entries.

    Returns ``(entries, size_bytes)``.  Each entry is a tuple
    ``(tid, site, seqno, vts_field, updates, committed_at, touched)``
    where ``vts_field`` is the absolute ``_seqnos`` tuple for the first
    record (or all of them with ``delta_vts=False``) and a sparse
    ``((index, value), ...)`` delta against the previous record's vector
    for the rest.
    """
    entries = []
    size = BATCH_HEADER_BYTES
    prev = None
    for record in records:
        seqnos = record.start_vts._seqnos
        if prev is None or not delta_vts:
            vts_field = seqnos
            size += VTS_ENTRY_BYTES * len(seqnos)
        else:
            vts_field = tuple(
                (i, s) for i, (s, p) in enumerate(zip(seqnos, prev)) if s != p
            )
            size += VTS_ENTRY_BYTES * len(vts_field)
        prev = seqnos
        size += RECORD_HEADER_BYTES
        if record.updates:
            size += _updates_bytes(record.updates)
        if record.touched is not None:
            # Shared-header trimming: the footprint digest rides along so
            # recovery at a non-replica site still knows what the
            # transaction wrote (see CommitRecord.touched).
            size += TOUCHED_BYTES
        entries.append(
            (
                record.tid,
                record.site,
                record.seqno,
                vts_field,
                record.updates,
                record.committed_at,
                record.touched,
            )
        )
    return entries, size


def decode_propagation_batch(entries: list) -> List[CommitRecord]:
    """Rebuild the commit records of one encoded batch, in order."""
    records: List[CommitRecord] = []
    prev = None
    for tid, site, seqno, vts_field, updates, committed_at, touched in entries:
        if prev is None or (vts_field and not isinstance(vts_field[0], tuple)):
            # Absolute vector (first record, or delta_vts off).  An empty
            # delta against no predecessor cannot occur: the first entry
            # is always absolute.
            seqnos = tuple(vts_field)
        else:
            rebuilt = list(prev)
            for index, value in vts_field:
                rebuilt[index] = value
            seqnos = tuple(rebuilt)
        prev = seqnos
        records.append(
            CommitRecord(
                tid,
                site,
                seqno,
                VectorTimestamp._wrap(seqnos),
                list(updates),
                committed_at,
                touched=touched,
            )
        )
    return records
