"""Message-level network simulation.

Hosts register a mailbox under a string address; :meth:`Network.send`
delivers a message after the topology's one-way latency, a small jitter,
and a serialization delay proportional to message size over the pairwise
bandwidth.  Cross-site links also enforce the bandwidth cap as a shared
FIFO pipe per (src-site, dst-site) pair, which is what produces the
paper's batched-propagation behaviour under load.

Fault injection (partitions, crashed hosts, message loss) lives here so
that every protocol in the repository is exercised against the same
failure model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from ..obs import MetricsRegistry
from ..sim import Kernel, RandomStreams, Store
from .topology import Site, Topology


@dataclass(slots=True)
class Message:
    """An addressed message in flight or delivered."""

    src: str
    dst: str
    payload: Any
    size_bytes: int
    sent_at: float
    delivered_at: Optional[float] = None


@dataclass(slots=True)
class Envelope:
    """A cross-cluster message in the parallel executor (DESIGN.md §12).

    The sender computes the exact delivery time -- jitter, link FIFO
    serialization and software overhead included, all of which are
    sender-site state -- so the receiving cluster merely schedules
    ``_deliver`` at ``deliver_at``.  ``link_seq`` is a per-directed-link
    sequence number: together with ``(deliver_at, src_site, dst_site)``
    it gives every envelope batch a total order that is identical no
    matter which worker produced or observed it, which is what makes the
    parallel schedule bit-reproducible.
    """

    deliver_at: float
    src_site: int
    dst_site: int
    link_seq: int
    src: str
    dst: str
    payload: Any
    size_bytes: int
    sent_at: float
    #: Stamped by ``_deliver``: an envelope doubles as the delivered
    #: :class:`Message` (same field names), so the receive path schedules
    #: it directly instead of materializing a second object per message.
    delivered_at: Optional[float] = None

    def sort_key(self):
        return (self.deliver_at, self.src_site, self.dst_site, self.link_seq)

    def __reduce__(self):
        # Envelopes are pickled in bulk at every parallel-executor
        # barrier; rebuilding through the constructor skips the slot
        # state-dict round trip (~2x cheaper either direction).
        return (
            Envelope,
            (
                self.deliver_at,
                self.src_site,
                self.dst_site,
                self.link_seq,
                self.src,
                self.dst,
                self.payload,
                self.size_bytes,
                self.sent_at,
            ),
        )


class ClusterGateway:
    """Routing state a :class:`Network` holds when it simulates only one
    cluster of a partitioned deployment.

    ``cluster_of`` maps every site id to its cluster; messages whose
    destination site lives in another cluster are appended to ``outbox``
    as :class:`Envelope`\\ s instead of being scheduled locally.  The
    parallel executor drains the outbox at every synchronization barrier.
    """

    __slots__ = ("cluster_id", "cluster_of", "outbox", "_link_seqs")

    def __init__(self, cluster_id: int, cluster_of: Dict[int, int]):
        self.cluster_id = cluster_id
        self.cluster_of = cluster_of
        self.outbox: list = []
        self._link_seqs: Dict[Tuple[int, int], int] = {}

    def next_link_seq(self, src_site: int, dst_site: int) -> int:
        link = (src_site, dst_site)
        seq = self._link_seqs.get(link, 0) + 1
        self._link_seqs[link] = seq
        return seq

    def drain(self) -> list:
        out, self.outbox = self.outbox, []
        return out


class NetworkStats:
    """Counters exposed to tests and benchmarks.

    Like :class:`~repro.server.ServerStats`, this is a compatibility view
    over registry counters (``net.sent``, ``net.delivered``,
    ``net.dropped_partition``, ``net.dropped_crash``,
    ``net.dropped_random``), so fault-injection runs surface drop counts
    in ``metrics_snapshot()``.  ``bytes_by_link`` stays a plain dict
    (tuple-keyed; per-link bytes are also mirrored as ``net.bytes``).
    """

    FIELDS = (
        "sent",
        "delivered",
        "dropped_partition",
        "dropped_crash",
        "dropped_random",
    )

    __slots__ = ("_registry", "bytes_by_link", "_handles")

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        object.__setattr__(self, "_registry", registry or MetricsRegistry())
        object.__setattr__(self, "bytes_by_link", {})
        object.__setattr__(self, "_handles", {})

    def _counter(self, name: str):
        handle = self._handles.get(name)
        if handle is None:
            handle = self._handles[name] = self._registry.counter("net.%s" % name)
        return handle

    def __getattr__(self, name: str) -> int:
        if name in NetworkStats.FIELDS:
            return self._counter(name).value
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        if name in NetworkStats.FIELDS:
            self._counter(name).set(value)
        else:
            object.__setattr__(self, name, value)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in NetworkStats.FIELDS}

    def __repr__(self) -> str:
        return "NetworkStats(%s)" % ", ".join(
            "%s=%d" % (k, v) for k, v in self.as_dict().items()
        )


class Network:
    """Delivers messages between registered hosts with simulated delays."""

    #: Fixed per-message software overhead (RPC marshalling etc.), seconds.
    SOFTWARE_OVERHEAD = 50e-6

    def __init__(
        self,
        kernel: Kernel,
        topology: Topology,
        streams: Optional[RandomStreams] = None,
        jitter_frac: float = 0.05,
        loss_rate: float = 0.0,
    ):
        self.kernel = kernel
        self.topology = topology
        self.streams = streams or RandomStreams(0)
        # One jitter/loss stream per *directed site link*, not one shared
        # stream: messages on a link draw in their (deterministic) send
        # order on that link, independent of how sends on other links
        # interleave globally.  A shared stream would make the draws
        # depend on the global event order -- impossible to reproduce
        # when the parallel executor runs each site cluster in its own
        # worker (the nondeterminism the dual-executor digest gate
        # flushed out first).  Values are the bound ``random`` methods.
        self._link_rng: Dict[Tuple[int, int], Any] = {}
        self._call_at = kernel.call_at
        self.jitter_frac = jitter_frac
        self.loss_rate = loss_rate
        self._mailboxes: Dict[str, Store] = {}
        self._host_sites: Dict[str, Site] = {}
        # address -> site id, mirrored from _host_sites: send/deliver only
        # need the id, and one dict probe beats a lookup plus attribute
        # dereference on every message.
        self._host_site_ids: Dict[str, int] = {}
        self._crashed: Set[str] = set()
        self._partitioned: Set[Tuple[int, int]] = set()
        # Next time at which each directed cross-site link is free; models
        # the 22 Mbps pipe as FIFO serialization.
        self._link_free_at: Dict[Tuple[int, int], float] = {}
        # Static per-(src-site, dst-site) path parameters -- (one-way
        # latency, bandwidth) -- resolved from the topology once.
        self._path_cache: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self.stats = NetworkStats()
        self._registry = None
        # Per-site / per-link counter handles (lazy; keyed by site id or
        # link tuple) plus aggregate handles, so the hot send/deliver
        # path never does a registry lookup.
        self._site_sent: Dict[int, Any] = {}
        self._site_delivered: Dict[int, Any] = {}
        self._link_bytes: Dict[Tuple[int, int], Any] = {}
        #: Set in cluster mode (parallel executor): messages to sites in
        #: other clusters become outbox envelopes instead of local events.
        self._gateway: Optional[ClusterGateway] = None
        self._bind_stat_handles()

    def _bind_stat_handles(self) -> None:
        counter = self.stats._counter
        self._c_sent = counter("sent")
        self._c_delivered = counter("delivered")
        self._c_dropped_partition = counter("dropped_partition")
        self._c_dropped_crash = counter("dropped_crash")
        self._c_dropped_random = counter("dropped_random")

    def bind_metrics(self, registry) -> None:
        """Mirror per-site traffic into the shared metrics registry:
        ``net.sent{site=src}``, ``net.delivered{site=dst}``, and
        ``net.bytes{site=src,dst=dst}`` for cross-site links.  The
        aggregate :class:`NetworkStats` view (including the drop
        counters) is rebound onto the same registry, migrating any
        counts accumulated before binding."""
        self._registry = registry
        old = self.stats
        stats = NetworkStats(registry)
        for name in NetworkStats.FIELDS:
            setattr(stats, name, getattr(old, name))
        stats.bytes_by_link.update(old.bytes_by_link)
        self.stats = stats
        self._site_sent.clear()
        self._site_delivered.clear()
        self._link_bytes.clear()
        self._bind_stat_handles()

    # ------------------------------------------------------------------
    # Host management
    # ------------------------------------------------------------------
    def register(self, address: str, site, takeover: bool = False) -> Store:
        """Create and return the mailbox for a host at ``site``.

        ``takeover=True`` replaces a dead host at the same address (a
        replacement Walter server keeps its predecessor's identity); the
        old mailbox is discarded and the crash flag cleared.
        """
        if address in self._mailboxes and not takeover:
            raise ValueError("address %r already registered" % (address,))
        mailbox = Store(self.kernel, name="mbox:%s" % address)
        self._mailboxes[address] = mailbox
        self._host_sites[address] = self.topology.site(site)
        self._host_site_ids[address] = self._host_sites[address].id
        self._crashed.discard(address)
        return mailbox

    def register_remote(self, address: str, site) -> None:
        """Make ``address`` routable without a local mailbox (cluster
        mode): the host lives in another cluster's worker, but senders
        here still need its site for latency/bandwidth resolution, and
        ``_deliver`` needs the *source* site of inbound envelopes for the
        partition check."""
        if address in self._mailboxes:
            return
        resolved = self.topology.site(site)
        self._host_sites[address] = resolved
        self._host_site_ids[address] = resolved.id

    def attach_gateway(self, gateway: ClusterGateway) -> None:
        self._gateway = gateway

    def site_of(self, address: str) -> Site:
        return self._host_sites[address]

    def crash_host(self, address: str) -> None:
        """Stop delivering to/from a host; queued mail is discarded."""
        self._crashed.add(address)
        self._mailboxes[address].drain()

    def recover_host(self, address: str) -> None:
        self._crashed.discard(address)

    def is_crashed(self, address: str) -> bool:
        return address in self._crashed

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, site_a, site_b) -> None:
        """Sever connectivity between two sites (both directions)."""
        a, b = self.topology.site(site_a).id, self.topology.site(site_b).id
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, site_a, site_b) -> None:
        a, b = self.topology.site(site_a).id, self.topology.site(site_b).id
        self._partitioned.discard((a, b))
        self._partitioned.discard((b, a))

    def heal_all(self) -> None:
        self._partitioned.clear()

    def is_partitioned(self, site_a, site_b) -> bool:
        a, b = self.topology.site(site_a).id, self.topology.site(site_b).id
        return (a, b) in self._partitioned

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any, size_bytes: int = 256) -> None:
        """Send ``payload`` from host ``src`` to host ``dst``.

        Delivery is asynchronous and unreliable under injected faults:
        partitions and crashes silently drop (as with a TCP connection
        that never completes), so protocols must tolerate loss.
        """
        # Both the aggregate and the per-site sent counters count
        # *attempted* sends: they are incremented together, before any
        # drop check, so ``net.sent`` always equals the sum of
        # ``net.sent{site=*}`` once metrics are bound.  Counter bumps on
        # this path write ``.value`` directly -- one attribute add per
        # message instead of a method call.
        self._c_sent.value += 1
        src_id = self._host_site_ids[src]
        if self._registry is not None:
            try:
                sent = self._site_sent[src_id]
            except KeyError:
                sent = self._site_sent[src_id] = self._registry.counter(
                    "net.sent", site=src_id
                )
            sent.value += 1
        if src in self._crashed:
            self._c_dropped_crash.value += 1
            return
        dst_id = self._host_site_ids.get(dst)
        if dst_id is None:
            raise ValueError("unknown destination %r" % (dst,))
        if self._partitioned and (src_id, dst_id) in self._partitioned:
            self._c_dropped_partition.value += 1
            return
        rng_random = None
        if self.loss_rate > 0 or self.jitter_frac > 0:
            try:
                rng_random = self._link_rng[(src_id, dst_id)]
            except KeyError:
                rng_random = self._link_rng[(src_id, dst_id)] = self.streams.stream(
                    "net.jitter.%d-%d" % (src_id, dst_id)
                ).random
        if self.loss_rate > 0 and rng_random() < self.loss_rate:
            self._c_dropped_random.value += 1
            return

        try:
            latency, bandwidth = self._path_cache[(src_id, dst_id)]
        except KeyError:
            latency, bandwidth = self._path_cache[(src_id, dst_id)] = (
                self.topology.one_way(src_id, dst_id),
                self.topology.bandwidth_bps(src_id, dst_id),
            )
        if self.jitter_frac > 0:
            latency *= 1.0 + rng_random() * self.jitter_frac
        serialize = size_bytes * 8.0 / bandwidth

        now = self.kernel.now
        if src_id != dst_id:
            # FIFO pipe: serialization occupies the shared link.
            link = (src_id, dst_id)
            start = max(now, self._link_free_at.get(link, now))
            self._link_free_at[link] = start + serialize
            bytes_by_link = self.stats.bytes_by_link
            bytes_by_link[link] = bytes_by_link.get(link, 0) + size_bytes
            if self._registry is not None:
                try:
                    link_bytes = self._link_bytes[link]
                except KeyError:
                    link_bytes = self._link_bytes[link] = self._registry.counter(
                        "net.bytes", site=src_id, dst=dst_id
                    )
                link_bytes.value += size_bytes
            deliver_at = start + serialize + latency + self.SOFTWARE_OVERHEAD
        else:
            deliver_at = now + serialize + latency + self.SOFTWARE_OVERHEAD

        gateway = self._gateway
        if gateway is not None and gateway.cluster_of[dst_id] != gateway.cluster_id:
            gateway.outbox.append(
                Envelope(
                    deliver_at,
                    src_id,
                    dst_id,
                    gateway.next_link_seq(src_id, dst_id),
                    src,
                    dst,
                    payload,
                    size_bytes,
                    now,
                )
            )
            return
        message = Message(src, dst, payload, size_bytes, sent_at=now)
        self._call_at(deliver_at, self._deliver, message)

    def deliver_envelope(self, envelope: Envelope) -> None:
        """Schedule a cross-cluster envelope received at a barrier.  The
        sending cluster already resolved jitter, link FIFO serialization
        and overhead into ``deliver_at``; conservative lookahead
        guarantees it is still in this kernel's future (``call_at``
        raises otherwise -- a lookahead-safety violation, not a race).

        The envelope itself is scheduled as the message (it carries the
        same fields): this path runs once per cross-cluster message of
        the whole run, and skipping the per-message ``Message`` rebuild
        is a measurable slice of the parallel executor's critical path."""
        if envelope.src not in self._host_site_ids:
            self.register_remote(envelope.src, envelope.src_site)
        self._call_at(envelope.deliver_at, self._deliver, envelope)

    def _deliver(self, message: Message) -> None:
        dst = message.dst
        if dst in self._crashed:
            self._c_dropped_crash.value += 1
            return
        if self._partitioned and (
            (self._host_site_ids[message.src], self._host_site_ids[dst])
            in self._partitioned
        ):
            self._c_dropped_partition.value += 1
            return
        message.delivered_at = self.kernel.now
        self._c_delivered.value += 1
        if self._registry is not None:
            dst_id = self._host_site_ids[dst]
            try:
                delivered = self._site_delivered[dst_id]
            except KeyError:
                delivered = self._site_delivered[dst_id] = self._registry.counter(
                    "net.delivered", site=dst_id
                )
            delivered.value += 1
        self._mailboxes[dst].put(message)
