"""Fast commit (paper Fig 11, §5.4).

A transaction whose write-set (regular objects only; cset updates are
excluded) contains only objects whose preferred site is local commits
with a purely local check: every written object must be unmodified since
``startVTS`` and unlocked (a locked object is mid-slow-commit).  The
commit assigns the next local sequence number, applies the updates to the
object histories, advances ``CommittedVTS_i[i]``, flushes the commit
record (group commit), and forks asynchronous propagation.
"""

from __future__ import annotations

from typing import Optional

from ..core.transaction import CommitRecord, Transaction
from ..core.versions import Version
from ..errors import PreferredSiteUnavailableError
from ..obs import trace as span
from ..spec.checker import TracedTx

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"


class FastCommitMixin:
    def rpc_tx_commit(self, tid: str, notify: Optional[str] = None, allow_fresh: bool = True, ck: Optional[str] = None):
        self._deep(tid, span.COMMIT_RPC_BEGIN)
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self.costs.commit_op)
        finally:
            self.cpu.release()
        self._deep(tid, span.COMMIT_CPU)
        # ``ck`` is the client's at-most-once idempotency token: a commit
        # whose reply was lost can be re-asked safely -- the cached
        # outcome is returned instead of re-running the commit (which,
        # the transaction being gone, would otherwise "commit" a fresh
        # empty transaction and report a bogus COMMITTED).
        if ck is not None:
            while tid in self._commit_inflight:
                # A duplicate overtook the original request (delayed in
                # the network past the client timeout): wait it out.
                yield self.kernel.timeout(0.01)
            cached = self._commit_outcomes.get(ck)
            if cached is not None:
                return cached[0]
            self._commit_inflight.add(tid)
        try:
            # A commit may be the transaction's first server contact (an
            # empty transaction): start it like any piggybacked first
            # access.  But if the *client* already issued accesses
            # (allow_fresh=False) and we don't know the tid, this server
            # is a replacement that lost the transaction's buffered
            # updates -- fail loudly rather than silently committing an
            # empty transaction.
            if not allow_fresh and tid not in self._txs:
                self._get_tx(tid)  # raises TransactionStateError
            tx = self._ensure_tx(tid)
            status = yield from self._commit_tx(tx, notify=notify)
        finally:
            self._commit_inflight.discard(tid)
        if ck is not None:
            self._commit_outcomes[ck] = (status, self.kernel.now)
        self._deep(tid, span.COMMIT_RPC_END, status=status)
        return status

    def _commit_tx(self, tx: Transaction, notify: Optional[str] = None):
        """Fig 11 commitTx: dispatch to fast or slow commit."""
        tx.require_active()
        started_at = self.kernel.now
        if tx.is_read_only:
            tx.mark_committed_read_only(at=self.kernel.now)
            self._drop_tx(tx.tid)
            self.stats.inc("commits")
            self.stats.inc("read_only_commits")
            if self._tracer is not None:
                # Read-only commits emit no terminal span; mark the trace
                # complete so the ring buffer may evict it.
                self._tracer.finish(tx.tid)
            return COMMITTED
        if not self.config.is_active(self.site_id):
            # §5.7: a site under re-integration must not commit update
            # transactions until the configuration service re-activates
            # it -- its surviving prefix is still being finalized, and a
            # seqno handed out now could be truncated by the in-flight
            # finalize as if it were part of the abandoned suffix.
            tx.mark_aborted()
            self._drop_tx(tx.tid)
            self.stats.inc("aborts")
            self._span(tx.tid, span.ABORT, phase="site_inactive")
            return ABORTED
        if not self.commit_admission_open():
            # §5.7: a replacement server forgot the predecessor's
            # prepared locks (they are volatile); until propagation
            # catches up to the takeover frontier, an admitted write
            # could conflict with a transaction the old server voted
            # YES for whose commit record is still in flight.
            tx.mark_aborted()
            self._drop_tx(tx.tid)
            self.stats.inc("aborts")
            self._span(tx.tid, span.ABORT, phase="site_synchronizing")
            return ABORTED
        writeset = tx.write_set
        self._check_leases(writeset)
        preferred_site = self.config.preferred_site
        site_id = self.site_id
        all_local = True
        for oid in writeset:
            if preferred_site(oid) != site_id:
                all_local = False
                break
        if all_local:
            status = yield from self._fast_commit(tx, notify)
        else:
            status = yield from self._slow_commit(tx, notify)
        self._drop_tx(tx.tid)
        if status == COMMITTED:
            # Server-side commit-path latency (conflict check + 2PC if
            # slow + WAL flush); the client-observed Fig 18 latency adds
            # one local RPC round trip on top.
            self._commit_latency.observe(self.kernel.now - started_at)
        return status

    def _check_leases(self, writeset) -> None:
        """Reject writes to locally-preferred containers whose lease is
        suspended (site failed, reassignment pending -- §5.7).  Objects
        with remote preferred sites are checked authoritatively by the
        participant's prepare vote; the coordinator's cache may be stale
        (§5.1)."""
        preferred_site = self.config.preferred_site
        holds_lease = self.config.holds_preferred_lease
        site_id = self.site_id
        for oid in writeset:
            preferred = preferred_site(oid)
            if preferred != site_id:
                continue
            if not holds_lease(oid.container, preferred):
                raise PreferredSiteUnavailableError(
                    "container %r has no valid preferred-site lease" % (oid.container,)
                )

    def _fast_commit(self, tx: Transaction, notify: Optional[str] = None):
        """Fig 11 fastCommit."""
        yield self.commit_lock.acquire()
        self._deep(tx.tid, span.COMMIT_LOCK_ACQUIRED)
        try:
            # The serialized conflict check -- the contended region that
            # bounds per-site write throughput (§8.3).  ``unmodified`` is
            # O(sites) per object (per-site max-seqno summary), so the
            # critical section does not grow with history length.
            yield self.kernel.timeout(self.costs.commit_critical)
            unmodified = self.histories.unmodified
            locked = self.locked
            delayed = self._is_access_delayed
            start_vts = tx.start_vts
            conflict = False
            for oid in tx.write_set:
                if not unmodified(oid, start_vts) or oid in locked or delayed(oid):
                    self.profiler.record_conflict(oid)
                    conflict = True
                    break
            if conflict:
                tx.mark_aborted()
                self.stats.inc("aborts")
                self._span(tx.tid, span.ABORT, phase="fast_commit")
                return ABORTED
            version = self._apply_local_commit(tx)
        finally:
            self.commit_lock.release()
        self._span(tx.tid, span.FAST_COMMIT, seqno=version.seqno)
        yield from self._finish_local_commit(tx, version, notify)
        return COMMITTED

    def _apply_local_commit(self, tx: Transaction) -> Version:
        """The atomic region of Fig 11: assign seqno, apply updates,
        advance CommittedVTS.  Runs with no yields (hence atomically)."""
        self.curr_seqno += 1
        version = Version(self.site_id, self.curr_seqno)
        preferred_site = self.config.preferred_site
        for oid in tx.touched:
            self.profiler.record_write(oid, preferred_site(oid) == self.site_id)
        self.histories.apply(tx.updates, version)
        self.committed_vts = self.committed_vts.with_entry(self.site_id, self.curr_seqno)
        self.got_vts = self.got_vts.with_entry(self.site_id, self.curr_seqno)
        if self.trace is not None:
            self.trace.record_commit(
                TracedTx(
                    tid=tx.tid,
                    site=self.site_id,
                    start_vts=tx.start_vts,
                    version=version,
                    updates=list(tx.updates),
                    write_set=tx.write_set,
                )
            )
            self.trace.record_site_commit(self.site_id, version)
        return version

    def _finish_local_commit(self, tx: Transaction, version: Version, notify: Optional[str]):
        """Durability (WAL flush / group commit) then async propagation."""
        record = CommitRecord(
            tid=tx.tid,
            site=self.site_id,
            seqno=version.seqno,
            start_vts=tx.start_vts,
            updates=list(tx.updates),
            committed_at=self.kernel.now,
        )
        self._records_by_version[version] = record
        for oid in tx.touched:
            self.storage.cache.put(oid, True)
        yield self.storage.log.append({"kind": "local_commit", "record": record})
        self._span(tx.tid, span.DISKLOG_FLUSH)
        tx.mark_committed(version, at=self.kernel.now)
        self.stats.inc("commits")
        self._enqueue_propagation(record, notify)
        self._drain_pending()
