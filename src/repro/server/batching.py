"""Hot-path batching knobs (DESIGN.md §14).

One frozen config object gates the three batching layers:

* **WAL group-commit window** (``wal_window``): concurrent commits at a
  shard share one :class:`~repro.storage.disklog.DiskLog` flush.  The
  flusher already absorbs everything that queues *during* a flush; the
  adaptive window additionally holds a flush open for ``wal_window``
  seconds when the log is busy (a previous flush just ended), letting
  near-simultaneous commits ride the same platter revolution.  An idle
  log flushes immediately, so a lone commit never waits.
* **Propagation stream batching** (``max_batch``/``delta_vts``): runs of
  consecutive commit records per destination ship as one batched cast
  with delta-encoded vector timestamps and shared-header trimming for
  non-replica sites (see :mod:`repro.net.wire`), and the per-record
  ack/DS-DURABLE/VISIBLE chatter collapses into per-batch casts.
* **Read coalescing** (``read_coalescing``): duplicate in-flight remote
  reads for the same ``(site, object, snapshot)`` target merge onto one
  RPC, and multireads fan out per-site batched gets.

All three are behavior-transparent at the isolation level: PSI/chaos
verdicts are unchanged, and with batching **off** (the default) every
code path is byte-identical to the unbatched kernel -- which is what the
pinned schedule digests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class BatchingConfig:
    """Tuning knobs for the hot-path batching layer.

    Defaults are deliberately conservative: a sub-millisecond WAL window
    (well under one EC2 flush), a propagation chunk large enough that the
    ~RTT-period batches of Fig 19 never split, and coalescing on.
    """

    #: Adaptive group-commit window (seconds): how long a *busy* WAL
    #: holds a flush open to absorb concurrent commits.  0 disables the
    #: window (the flusher still group-commits whatever queued during the
    #: previous flush, exactly as before).
    wal_window: float = 0.0005
    #: Maximum commit records per encoded propagation cast; longer runs
    #: split into consecutive casts (still one per destination each).
    max_batch: int = 512
    #: Delta-encode vector timestamps on the propagation wire: the first
    #: record of a batch carries its snapshot absolutely, subsequent
    #: records carry only the entries that changed vs their predecessor.
    delta_vts: bool = True
    #: Merge duplicate in-flight remote reads and fan multireads out as
    #: per-site batched gets.
    read_coalescing: bool = True

    def __post_init__(self):
        if self.wal_window < 0:
            raise ValueError("wal_window must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")

    @classmethod
    def coerce(
        cls, value: Union[None, bool, dict, "BatchingConfig"]
    ) -> Optional["BatchingConfig"]:
        """Normalize a ``Deployment(batching=...)`` argument.

        ``None``/``False`` -> batching off (None); ``True`` -> defaults;
        a dict -> ``BatchingConfig(**dict)``; a config -> itself.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            "batching must be None, bool, dict, or BatchingConfig; got %r"
            % (value,)
        )
