"""The Walter server and its protocol components."""

from .batching import BatchingConfig
from .propagation import PropagationTracker
from .recovery import SiteRecoveryCoordinator
from .server import ServerStats, WalterServer
from .state import ConfigView, LeaseConfig, LocalConfig, ServerCosts

__all__ = [
    "BatchingConfig",
    "ConfigView",
    "LeaseConfig",
    "LocalConfig",
    "PropagationTracker",
    "ServerCosts",
    "ServerStats",
    "SiteRecoveryCoordinator",
    "WalterServer",
]
