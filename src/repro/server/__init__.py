"""The Walter server and its protocol components."""

from .propagation import PropagationTracker
from .recovery import SiteRecoveryCoordinator
from .server import ServerStats, WalterServer
from .state import ConfigView, LeaseConfig, LocalConfig, ServerCosts

__all__ = [
    "ConfigView",
    "LeaseConfig",
    "LocalConfig",
    "PropagationTracker",
    "ServerCosts",
    "ServerStats",
    "SiteRecoveryCoordinator",
    "WalterServer",
]
