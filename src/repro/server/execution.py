"""Transaction execution (paper Fig 10, §5.3).

Start assigns ``startVTS`` from the site's ``CommittedVTS``; reads come
from the snapshot determined by ``startVTS`` plus the transaction's own
update buffer; updates are buffered server-side (each update is one client
RPC, as in the C++ implementation).  Reading an object that is not
replicated locally fetches the visible versions from the object's
preferred site and merges them with any local-history versions (§5.3).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..obs import trace as span
from ..core.cset import CSet
from ..core.objects import ObjectId, ObjectKind
from ..core.transaction import Transaction, TxStatus
from ..core.updates import CSetAdd, CSetDel, DataUpdate, last_data
from ..errors import TransactionStateError
from ..net.wire import ack_batch_bytes
from ..spec.checker import TracedRead

#: Failure marker for coalesced reads: a follower woken with this issues
#: its own RPC instead of inheriting the leader's exception.
_READ_FAILED = object()


class ExecutionMixin:
    """startTx / read / write / setAdd / setDel / setRead (Fig 10)."""

    # ------------------------------------------------------------------
    # Transaction registry
    # ------------------------------------------------------------------
    def _get_tx(self, tid: str) -> Transaction:
        tx = self._txs.get(tid)
        if tx is None:
            raise TransactionStateError("unknown transaction %r at %s" % (tid, self.address))
        self._touch_tx_lease(tid)
        return tx

    def _ensure_tx(self, tid: str, fresh: bool = True) -> Transaction:
        """Start the transaction on first access (piggybacked start, §8.2).

        ``fresh=False`` asserts the client already issued accesses for
        this tid: if we do not know it, this server is a replacement that
        lost the transaction's buffered updates -- fail loudly instead of
        silently starting an empty transaction (which would let a commit
        apply a *partial* update set).
        """
        tx = self._txs.get(tid)
        if tx is None:
            if not fresh:
                raise TransactionStateError(
                    "unknown transaction %r at %s (buffered updates lost "
                    "in a server failure?)" % (tid, self.address)
                )
            tx = Transaction(tid=tid, site=self.site_id, start_vts=self.committed_vts)
            self._txs[tid] = tx
            self.stats.inc("started")
            self._span(tid, span.EXECUTE)
        self._touch_tx_lease(tid)
        return tx

    def _touch_tx_lease(self, tid: str) -> None:
        """Every access renews the transaction's lease (DESIGN.md §9); a
        transaction untouched for a full lease is abandoned and reaped."""
        self._tx_deadlines[tid] = self.kernel.now + self.leases.tx_lease

    def _drop_tx(self, tid: str) -> Optional[Transaction]:
        """Forget a finished transaction (commit/abort/reap paths)."""
        self._tx_deadlines.pop(tid, None)
        return self._txs.pop(tid, None)

    def rpc_tx_start(self, tid: str):
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self.costs.read_op)
        finally:
            self.cpu.release()
        self._ensure_tx(tid)
        return "OK"

    def rpc_tx_abort(self, tid: str):
        tx = self._drop_tx(tid)
        if tx is not None and tx.status is TxStatus.ACTIVE:
            tx.mark_aborted()
            self.stats.inc("aborts")
        if self._tracer is not None:
            # Client-initiated aborts emit no terminal span; mark the
            # trace complete so the ring buffer may evict it.
            self._tracer.finish(tid)
        return "ABORTED"

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def rpc_tx_read(self, tid: str, oid: ObjectId, last: bool = False, notify: Optional[str] = None, fresh: bool = True):
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self.costs.read_op)
        finally:
            self.cpu.release()
        tx = self._ensure_tx(tid, fresh)
        tx.require_active()
        value = yield from self._read_value(tx, oid)
        if last:
            status = yield from self._commit_tx(tx, notify=notify)
            return (value, status)
        return value

    def rpc_tx_set_read(self, tid: str, oid: ObjectId, last: bool = False, notify: Optional[str] = None, fresh: bool = True):
        result = yield from self.rpc_tx_read(tid, oid, last=last, notify=notify, fresh=fresh)
        return result

    def rpc_tx_set_read_id(self, tid: str, oid: ObjectId, elem: Hashable, last: bool = False, notify: Optional[str] = None, fresh: bool = True):
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self.costs.read_op)
        finally:
            self.cpu.release()
        tx = self._ensure_tx(tid, fresh)
        tx.require_active()
        cset = yield from self._read_value(tx, oid)
        count = cset.count(elem)
        if last:
            status = yield from self._commit_tx(tx, notify=notify)
            return (count, status)
        return count

    def _read_value(self, tx: Transaction, oid: ObjectId):
        """Fig 10 read: snapshot at startVTS + own buffer; remote fetch
        for objects not replicated locally."""
        container = self.config.container(oid.container)
        owner = container.preferred_site == self.site_id
        if container.replicated_at(self.site_id):
            # LRU accounting only (paper §6): a miss means the object
            # would have been materialized from the log/checkpoint.  The
            # cached value is never returned -- reads always come from the
            # snapshot-correct history -- so this cannot affect results,
            # only the hit-rate metrics.
            hit, _ = self.storage.cache.get(oid)
            if oid.kind is ObjectKind.CSET:
                value = self.histories.read_cset(oid, tx.start_vts, tx.updates)
            else:
                value = self.histories.read_regular(oid, tx.start_vts, tx.updates)
            if not hit:
                self.storage.cache.put(oid, True)
            self.profiler.record_read(oid, owner)
            self._trace_read(tx, oid, value)
            return value
        self.profiler.record_read(oid, owner)
        target = container.preferred_site
        if self.partial_replication:
            target = self._nearest_replica(container)
        if target != container.preferred_site:
            # PaRiS-style non-blocking read (DESIGN.md §13): fetch from
            # the closest replica holding the shard.  The replica serves
            # only if its CommittedVTS dominates our snapshot -- any
            # version visible at startVTS is then guaranteed applied
            # there -- and a behind replica answers None, after which we
            # fall back to the classic preferred-site read.
            payload = yield from self._remote_read_call(tx, target, oid, True)
            if payload is not None:
                return self._compose_value(tx, oid, payload)
        payload = yield from self._remote_read_call(
            tx, container.preferred_site, oid, False
        )
        return self._compose_value(tx, oid, payload)

    def _remote_read_call(self, tx: Transaction, target: int, oid: ObjectId, only_if_current: bool):
        """One remote_read RPC, coalesced when batching enables it
        (DESIGN.md §14): duplicate in-flight reads for the same
        ``(site, object, snapshot)`` target ride the leader's RPC instead
        of issuing their own.  Safe because the payload is a pure
        function of ``(oid, start_vts)`` at the serving site and is never
        mutated by ``_compose_value``."""
        batching = self.batching
        if batching is None or not batching.read_coalescing:
            payload = yield from self.call(
                self.peers[target],
                "remote_read",
                oid=oid,
                start_vts=tx.start_vts,
                only_if_current=only_if_current,
                timeout=self._rpc_timeout(),
                span=self._deep_ctx(tx.tid, span.EXECUTE),
            )
            return payload
        key = (target, oid, tx.start_vts, only_if_current)
        waiter = self._read_inflight.get(key)
        if waiter is not None:
            self.stats.inc("coalesced_reads")
            payload = yield waiter
            if payload is not _READ_FAILED:
                return payload
            # The leader's RPC failed; fall through and try ourselves.
        waiter = self.kernel.event(("coalesce:%s", (tx.tid,)))
        self._read_inflight[key] = waiter
        try:
            payload = yield from self.call(
                self.peers[target],
                "remote_read",
                oid=oid,
                start_vts=tx.start_vts,
                only_if_current=only_if_current,
                timeout=self._rpc_timeout(),
                span=self._deep_ctx(tx.tid, span.EXECUTE),
            )
        except BaseException:
            if self._read_inflight.get(key) is waiter:
                del self._read_inflight[key]
            waiter.trigger(_READ_FAILED)
            raise
        if self._read_inflight.get(key) is waiter:
            del self._read_inflight[key]
        waiter.trigger(payload)
        return payload

    def _nearest_replica(self, container) -> int:
        """The active replica of ``container`` closest to this site (by
        RTT; ties broken toward the preferred site, then lowest id)."""
        topology = self.network.topology
        best = container.preferred_site
        best_rtt = topology.rtt(self.site_id, best)
        for site in sorted(container.replica_sites):
            if site == best or not self.config.is_active(site):
                continue
            rtt = topology.rtt(self.site_id, site)
            if rtt < best_rtt:
                best, best_rtt = site, rtt
        return best

    def rpc_remote_read(self, oid: ObjectId, start_vts, only_if_current: bool = False):
        """Serve a read for a site that does not replicate ``oid``: the
        suffix entries visible to the caller's snapshot plus, for csets,
        the GC base and watermark (see
        :meth:`~repro.core.history.SiteHistories.remote_read_payload`).

        With ``only_if_current`` (set by nearest-replica reads under
        partial replication) the payload is only served when this
        replica's CommittedVTS dominates the caller's snapshot; a behind
        replica returns None and the caller retries at the preferred
        site, keeping the read non-blocking."""
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self.costs.read_op)
        finally:
            self.cpu.release()
        if only_if_current and not self.committed_vts.dominates(start_vts):
            return None
        return self.histories.remote_read_payload(oid, start_vts)

    def rpc_remote_multiread(self, oids: List[ObjectId], start_vts, only_if_current: bool = False):
        """Batched remote read (DESIGN.md §14): serve a whole group of
        objects for one caller site in a single RPC.  The currency check
        is evaluated once -- all the caller's objects share one snapshot
        -- and a behind replica answers all-None, after which the caller
        falls back per object exactly as for single reads."""
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self._batch_cost(len(oids)))
        finally:
            self.cpu.release()
        if only_if_current and not self.committed_vts.dominates(start_vts):
            return [None] * len(oids)
        payload = self.histories.remote_read_payload
        return [payload(oid, start_vts) for oid in oids]

    def _compose_value(self, tx: Transaction, oid: ObjectId, payload: Dict):
        """Merge preferred-site versions with local-history versions (the
        local history of a non-replicated object holds updates committed
        here that are still propagating, §5.3) and the tx's own buffer.

        Ordering: the remote list is in the preferred site's apply order
        and the local list in ours, both consistent with the (total)
        causal order of a regular object's versions.  A local entry
        absent from the remote payload and not covered by the remote GC
        watermark has *not* been applied at the preferred site, so every
        remote entry is causally before it (the preferred site could not
        have applied a causal successor without it); hence
        ``remote ++ filtered-local`` is itself causally ordered.  A local
        entry that IS covered by the remote watermark was already folded
        or superseded remotely and must be dropped, not re-applied --
        taking it by list position was the old stale-read bug."""
        remote_entries: List[Tuple] = payload["entries"]
        remote_gc_vts = payload["gc_vts"]
        remote_versions = {version for _update, version in remote_entries}
        hist = self.histories.get(oid)
        local_only = [
            (e.update, e.version)
            for e in (hist.visible_entries(tx.start_vts) if hist is not None else ())
            if e.version not in remote_versions
            and (remote_gc_vts is None or not remote_gc_vts.visible(e.version))
        ]
        entries = list(remote_entries) + local_only
        if oid.kind is ObjectKind.CSET:
            cset = CSet(payload["base"]) if payload["base"] else CSet()
            for update, _version in entries:
                if isinstance(update, CSetAdd):
                    cset.add(update.elem)
                elif isinstance(update, CSetDel):
                    cset.rem(update.elem)
            for update in tx.updates:
                if isinstance(update, CSetAdd) and update.oid == oid:
                    cset.add(update.elem)
                elif isinstance(update, CSetDel) and update.oid == oid:
                    cset.rem(update.elem)
            return cset
        found, data = last_data(tx.updates, oid)
        if found:
            return data
        value = None
        for update, _version in entries:
            if isinstance(update, DataUpdate):
                value = update.data
        return value

    # ------------------------------------------------------------------
    # Buffered updates
    # ------------------------------------------------------------------
    def rpc_tx_write(self, tid: str, oid: ObjectId, data: Any, last: bool = False, notify: Optional[str] = None, fresh: bool = True):
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self.costs.write_op)
        finally:
            self.cpu.release()
        tx = self._ensure_tx(tid, fresh)
        tx.buffer_write(oid, data)
        if last:
            return (yield from self._commit_tx(tx, notify=notify))
        return "OK"

    def rpc_tx_set_add(self, tid: str, oid: ObjectId, elem: Hashable, last: bool = False, notify: Optional[str] = None, fresh: bool = True):
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self.costs.write_op)
        finally:
            self.cpu.release()
        tx = self._ensure_tx(tid, fresh)
        tx.buffer_set_add(oid, elem)
        if last:
            return (yield from self._commit_tx(tx, notify=notify))
        return "OK"

    def rpc_tx_set_del(self, tid: str, oid: ObjectId, elem: Hashable, last: bool = False, notify: Optional[str] = None, fresh: bool = True):
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self.costs.write_op)
        finally:
            self.cpu.release()
        tx = self._ensure_tx(tid, fresh)
        tx.buffer_set_del(oid, elem)
        if last:
            return (yield from self._commit_tx(tx, notify=notify))
        return "OK"

    # ------------------------------------------------------------------
    # Combined operations (§6: "functions that combine multiple
    # operations in a single RPC ... for reading or writing many objects,
    # and for reading all objects whose ids are in a cset")
    # ------------------------------------------------------------------
    def _batch_cost(self, n: int) -> float:
        """One RPC shell plus a reduced per-extra-object cost."""
        return self.costs.read_op + max(0, n - 1) * self.costs.read_op * 0.25

    def rpc_tx_multiread(self, tid: str, oids: List[ObjectId], last: bool = False, notify: Optional[str] = None, fresh: bool = True):
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self._batch_cost(len(oids)))
        finally:
            self.cpu.release()
        tx = self._ensure_tx(tid, fresh)
        tx.require_active()
        if self.batching is not None and self.batching.read_coalescing:
            values = yield from self._multiread_values(tx, oids)
        else:
            values = []
            for oid in oids:
                value = yield from self._read_value(tx, oid)
                values.append(value)
        if last:
            status = yield from self._commit_tx(tx, notify=notify)
            return (values, status)
        return values

    def _multiread_values(self, tx: Transaction, oids: List[ObjectId]):
        """Batched multiread fan-out (DESIGN.md §14): objects not
        replicated locally are grouped by serving site and fetched with
        one ``remote_multiread`` RPC per group instead of one
        ``remote_read`` each.  Groups keep the single-read target choice
        -- nearest replica under partial replication, else the preferred
        site -- and a None payload (behind replica, or an object the
        group call could not serve) falls back to the classic per-object
        read path, so visible values are identical to the unbatched
        fan-out."""
        values: Dict[int, Any] = {}
        groups: Dict[Tuple[int, bool], List[Tuple[int, ObjectId]]] = {}
        for idx, oid in enumerate(oids):
            container = self.config.container(oid.container)
            if container.replicated_at(self.site_id):
                values[idx] = yield from self._read_value(tx, oid)
                continue
            target = container.preferred_site
            if self.partial_replication:
                target = self._nearest_replica(container)
            only_if_current = target != container.preferred_site
            groups.setdefault((target, only_if_current), []).append((idx, oid))
        for (target, only_if_current), group in sorted(groups.items()):
            if len(group) == 1:
                # A lone remote object gains nothing from the batched
                # RPC; the single-read path also coalesces with other
                # transactions' in-flight reads.
                idx, oid = group[0]
                values[idx] = yield from self._read_value(tx, oid)
                continue
            goids = [oid for _idx, oid in group]
            payloads = yield from self.call(
                self.peers[target],
                "remote_multiread",
                oids=goids,
                start_vts=tx.start_vts,
                only_if_current=only_if_current,
                size_bytes=ack_batch_bytes(len(goids)),
                timeout=self._rpc_timeout(),
                span=self._deep_ctx(tx.tid, span.EXECUTE),
            )
            for (idx, oid), payload in zip(group, payloads):
                if payload is None:
                    values[idx] = yield from self._read_value(tx, oid)
                else:
                    self.profiler.record_read(oid, False)
                    values[idx] = self._compose_value(tx, oid, payload)
        return [values[i] for i in range(len(oids))]

    def rpc_tx_multiwrite(self, tid: str, writes, last: bool = False, notify: Optional[str] = None, fresh: bool = True):
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self._batch_cost(len(writes)))
        finally:
            self.cpu.release()
        tx = self._ensure_tx(tid, fresh)
        for oid, data in writes:
            tx.buffer_write(oid, data)
        if last:
            return (yield from self._commit_tx(tx, notify=notify))
        return "OK"

    def rpc_tx_read_cset_objects(
        self,
        tid: str,
        oid: ObjectId,
        limit: Optional[int] = None,
        newest_first: bool = True,
        fresh: bool = True,
    ):
        """Read a cset and the objects its elements name, in one RPC.

        Elements must be ObjectIds or tuples whose last item is an
        ObjectId (e.g. ``(seqno, oid)`` for ordered timelines); tuples are
        ordered by their leading sort key.
        """
        tx = self._ensure_tx(tid, fresh)
        tx.require_active()
        cset = yield from self._read_value(tx, oid)
        members = list(cset.members())
        try:
            elems = sorted(members, reverse=newest_first)
        except TypeError:
            elems = sorted(members, key=repr, reverse=newest_first)
        if limit is not None:
            elems = elems[:limit]
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self._batch_cost(1 + len(elems)))
        finally:
            self.cpu.release()
        out = []
        for elem in elems:
            target = elem if isinstance(elem, ObjectId) else elem[-1]
            value = yield from self._read_value(tx, target)
            out.append((elem, value))
        return out

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _rpc_timeout(self) -> float:
        return 4.0 * self.network.topology.max_rtt_from(self.site_id) + 1.0

    def _trace_read(self, tx: Transaction, oid: ObjectId, value) -> None:
        if self.trace is None:
            return
        # Only pure snapshot reads are checkable against the site model:
        # skip reads shadowed by the transaction's own buffer.
        if any(u.oid == oid for u in tx.updates):
            return
        recorded = value.counts() if isinstance(value, CSet) else value
        self.trace.record_read(
            TracedRead(tx.tid, self.site_id, tx.start_vts, oid, recorded)
        )
