"""Walter server state (paper Fig 9) and configuration views.

Per-site server variables:

* ``CurrSeqNo_i`` -- last assigned local sequence number,
* ``CommittedVTS_i`` -- per site, how many of its transactions committed here,
* ``History_i[oid]`` -- per-object update sequences (``SiteHistories``),
* ``GotVTS_i`` -- per site, how many of its transactions were *received* here,

plus the slow-commit lock table, the commit critical section, and the
modelled CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..core.objects import Container, ObjectId
from ..errors import NoSuchContainerError


@dataclass
class ServerCosts:
    """Calibrated CPU costs (seconds) -- see DESIGN.md §2 and
    ``repro.bench.calibration``.  These are the only tuned constants; all
    benchmark numbers are outputs of the simulation given these.
    """

    #: Modelled cores per server (extra-large EC2 instance: 8 vcores).
    cores: int = 8
    #: CPU time to serve one read RPC (includes snapshot lookup).
    read_op: float = 100e-6
    #: CPU time to serve one buffered-update RPC (write/setAdd/setDel).
    write_op: float = 55e-6
    #: Serialized critical section per committing update transaction --
    #: the "highly contended lock" that bounds write throughput (§8.3).
    commit_critical: float = 28e-6
    #: CPU time to apply one remote transaction during propagation
    #: (cheaper than committing: done in batches, §8.3).
    apply_remote: float = 8e-6
    #: CPU time for the commit RPC shell around the critical section.
    commit_op: float = 40e-6


@dataclass(frozen=True)
class LeaseConfig:
    """Expiry deadlines for commit-path state (DESIGN.md §9).

    A transaction or prepare lock whose owner stops talking to us must
    not pin server state forever: an abandoned transaction pins the GC
    watermark, and an orphaned prepare lock blocks every later writer of
    the object.  Leases bound both.  ``tx_lease`` must exceed the
    longest legitimate gap between two accesses of a live transaction
    (one client op timeout, ~4.2 s on the 4/5-site EC2 topologies);
    ``lock_lease`` only triggers the *decision query* -- locks are never
    released on time alone (presumed abort requires proof, §9)."""

    #: Seconds an active transaction may go untouched before it is
    #: reaped (deadline refreshed on every access RPC).
    tx_lease: float = 5.0
    #: Seconds a prepare lock may be held before the participant asks
    #: the coordinator for the transaction's decision.
    lock_lease: float = 5.0
    #: Period of the server's lease sweeper loop.
    sweep_interval: float = 0.5
    #: Seconds a cached commit outcome (at-most-once token) is retained.
    outcome_retention: float = 30.0


class ConfigView:
    """A server's view of container placement plus lease checks.

    The default deployment shares one :class:`LocalConfig` among all
    servers (an always-fresh cache).  Reconfiguration (site removal and
    re-integration, §5.7) mutates it and revokes leases; a Paxos-backed
    variant is wired in the failure-handling integration tests.
    """

    def container(self, cid: str) -> Container:
        raise NotImplementedError

    def holds_preferred_lease(self, cid: str, site: int) -> bool:
        raise NotImplementedError

    def active_sites(self) -> List[int]:
        raise NotImplementedError

    def preferred_site(self, oid: ObjectId) -> int:
        """site(oid) in the paper's notation."""
        return self.container(oid.container).preferred_site

    def replicated_at(self, oid: ObjectId, site: int) -> bool:
        return self.container(oid.container).replicated_at(site)


class LocalConfig(ConfigView):
    """Shared in-process configuration (the common deployment mode)."""

    def __init__(self, n_sites: int):
        self.n_sites = n_sites
        self._containers: Dict[str, Container] = {}
        self._active: Set[int] = set(range(n_sites))
        #: cid -> site currently holding the preferred-site lease.
        self._lease_holder: Dict[str, int] = {}
        #: cid -> original preferred site, for containers moved by a site
        #: removal (so re-integration can hand them back, §5.7).
        self.displaced: Dict[str, int] = {}
        self.epoch = 0

    def register(self, container: Container) -> Container:
        self._containers[container.id] = container
        self._lease_holder[container.id] = container.preferred_site
        return container

    def container(self, cid: str) -> Container:
        container = self._containers.get(cid)
        if container is None:
            raise NoSuchContainerError("unknown container %r" % (cid,))
        return container

    def containers(self) -> List[Container]:
        return list(self._containers.values())

    def holds_preferred_lease(self, cid: str, site: int) -> bool:
        return self._lease_holder.get(cid) == site

    def active_sites(self) -> List[int]:
        return sorted(self._active)

    def is_active(self, site: int) -> bool:
        return site in self._active

    # ------------------------------------------------------------------
    # Reconfiguration (§5.7); driven by the deployment's recovery logic.
    # ------------------------------------------------------------------
    def suspend_lease(self, cid: str) -> None:
        """Revoke one container's preferred-site lease; writes to it are
        postponed until it is reassigned (planned handover)."""
        self._lease_holder.pop(cid, None)

    def suspend_leases_of_site(self, site: int) -> List[str]:
        """Revoke leases held by a failed site; writes to its containers
        are postponed until reassignment."""
        revoked = []
        for cid, holder in list(self._lease_holder.items()):
            if holder == site:
                del self._lease_holder[cid]
                revoked.append(cid)
        return revoked

    def deactivate_site(self, site: int) -> None:
        self._active.discard(site)
        self.epoch += 1

    def activate_site(self, site: int) -> None:
        self._active.add(site)
        self.epoch += 1

    def reassign_preferred_site(
        self, cid: str, new_site: int, remember_original: bool = False
    ) -> None:
        old = self._containers[cid]
        if remember_original and cid not in self.displaced:
            self.displaced[cid] = old.preferred_site
        replicas = set(old.replica_sites) | {new_site}
        self._containers[cid] = Container(cid, new_site, frozenset(replicas))
        self._lease_holder[cid] = new_site

    def restore_displaced(self, site: int) -> List[str]:
        """Hand containers displaced from ``site`` back to it."""
        restored = []
        for cid, original in list(self.displaced.items()):
            if original == site:
                self.reassign_preferred_site(cid, site)
                del self.displaced[cid]
                restored.append(cid)
        return restored


@dataclass
class ServerState:
    """The Fig 9 variables, bundled so recovery can snapshot/restore them."""

    site: int
    n_sites: int
    curr_seqno: int = 0

    def describe(self) -> str:
        return "site %d, seqno %d" % (self.site, self.curr_seqno)
