"""Slow commit (paper Fig 12, §5.5).

Transactions that write a regular object whose preferred site is remote
run a two-phase commit among the *preferred sites* of the written objects
(not across all replicas).  Phase 1 asks each such site to vote: YES and
lock the objects if they are unmodified and unlocked, NO otherwise.  If
all vote YES the coordinator commits exactly like fast commit; otherwise
it tells the YES voters to release their locks.  Remote sites release a
committed transaction's locks when it propagates to them (Fig 13).

§6 notes slow commit can starve under repeated conflicting fast commits
and sketches a fix -- briefly delaying fast-commit access to objects that
aborted a slow commit; the authors did not implement it, we do (behind
``anti_starvation``), since it is fully specified in one paragraph.

Failure hardening (DESIGN.md §9).  The paper's pseudocode assumes
messages arrive; under loss the naive protocol leaks locks two ways:

* a participant's YES reply is lost, the coordinator counts the timeout
  as a NO vote and never tells that participant anything -- its locks
  would be held forever (an aborted transaction never propagates, so the
  Fig 13 release path never fires);
* the coordinator's abort notification itself is lost.

Three mechanisms close the gap, all keyed by a per-transaction decision
table that makes duplicate prepares/releases idempotent:

1. the coordinator records its decision *before* notifying anyone, sends
   the abort release to **every contacted site** (not just recorded YES
   voters), and retries each release as an acked RPC until delivered or
   the participant's lock lease has surely expired;
2. each prepare lock carries the coordinator's site and a lease; when
   the lease expires the participant's sweeper *asks the coordinator*
   for the decision (``tx_decision``) rather than unilaterally dropping
   the lock -- presumed abort: a lock may only be released early if the
   decision could not have been COMMIT;
3. COMMIT outcomes need no extra delivery: propagation is reliably
   retransmitted (Fig 13) and releases the participant's locks when the
   commit record arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.objects import ObjectId
from ..core.transaction import Transaction
from ..core.versions import VectorTimestamp
from ..net import RpcError
from ..obs import trace as span
from ..sim import AllOf

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"
#: ``tx_decision`` answers when the coordinator is still running the 2PC.
PENDING = "PENDING"
#: ``tx_decision`` answers when the coordinator has no trace of the tid:
#: the transaction was never durably committed (presumed abort).
UNKNOWN = "UNKNOWN"


@dataclass
class PreparedLock:
    """Participant-side bookkeeping for one prepared transaction."""

    coord_site: int
    deadline: float
    #: An orphan-decision query is already in flight; don't spawn another.
    querying: bool = False


class SlowCommitMixin:
    def _slow_commit(self, tx: Transaction, notify: Optional[str] = None):
        """Fig 12 slowCommit: 2PC among preferred sites of written objects."""
        self.stats.inc("slow_commit_attempts")
        sites = sorted({self.config.preferred_site(oid) for oid in tx.write_set})
        self._span(tx.tid, span.SLOW_COMMIT_PREPARE, participants=len(sites))
        span_ctx = self._deep_ctx(tx.tid, span.SLOW_COMMIT_PREPARE)

        def ask(site: int):
            oids = [o for o in sorted(tx.write_set, key=str) if self.config.preferred_site(o) == site]
            try:
                vote = yield from self.call(
                    self.peers[site],
                    "prepare",
                    tid=tx.tid,
                    oids=oids,
                    start_vts=tx.start_vts,
                    coord_site=self.site_id,
                    timeout=self._rpc_timeout(),
                    span=span_ctx,
                )
                return (site, bool(vote))
            except RpcError:
                return (site, False)

        procs = [
            self.spawn_child(ask(site), name="prepare:%s@%d" % (tx.tid, site))
            for site in sites
        ]
        votes: Dict[int, bool] = dict((yield AllOf(procs)))
        self._deep(tx.tid, span.COMMIT_VOTES, yes=sum(votes.values()), asked=len(votes))

        if all(votes.values()):
            yield self.commit_lock.acquire()
            self._deep(tx.tid, span.COMMIT_LOCK_ACQUIRED)
            try:
                yield self.kernel.timeout(self.costs.commit_critical)
                version = self._apply_local_commit(tx)
            finally:
                self.commit_lock.release()
            # Decision point: participants learn COMMIT from propagation
            # (reliably retransmitted), orphan queries from this table.
            self._record_decision(tx.tid, COMMITTED)
            self._release_locks(tx.tid)  # locks at this server (Fig 12)
            self._span(tx.tid, span.SLOW_COMMIT_COMMIT, seqno=version.seqno)
            yield from self._finish_local_commit(tx, version, notify)
            self.stats.inc("slow_commits")
            return COMMITTED

        self._record_decision(tx.tid, ABORTED)
        if self.chaos_bug == "leak_prepare_locks":
            # Planted bug (harness self-test): the pre-hardening abort
            # path -- fire-and-forget release to recorded YES voters
            # only, so a participant whose YES reply was lost keeps its
            # locks forever.
            for site, vote in votes.items():
                if vote:
                    self.cast(self.peers[site], "release_prepare", tid=tx.tid)
        else:
            # A timeout/RpcError vote is indistinguishable from "voted
            # YES, reply lost": the participant may hold locks.  Deliver
            # the abort to every contacted site, reliably.
            for site in votes:
                self.spawn_child(
                    self._deliver_abort(tx.tid, site),
                    name="release:%s@%d" % (tx.tid, site),
                )
        tx.mark_aborted()
        self.stats.inc("aborts")
        self._span(tx.tid, span.ABORT, phase="slow_commit")
        return ABORTED

    def _deliver_abort(self, tid: str, site: int):
        """Retry the abort release to one participant until acked or its
        lock lease has surely expired (after which its own sweeper will
        query us and learn the ABORT from the decision table)."""
        deadline = self.kernel.now + self.leases.lock_lease
        while True:
            try:
                yield from self.call(
                    self.peers[site],
                    "release_prepare",
                    tid=tid,
                    outcome=ABORTED,
                    timeout=self._rpc_timeout(),
                )
                return
            except RpcError:
                if self.kernel.now >= deadline:
                    return
                yield self.kernel.timeout(0.05)

    def _record_decision(self, tid: str, outcome: str) -> None:
        """At-most-once decision table: first write wins; retained for
        ``leases.outcome_retention`` so retransmitted prepares/releases
        and orphan queries resolve consistently."""
        if tid not in self._decisions:
            self._decisions[tid] = (outcome, self.kernel.now)

    # ------------------------------------------------------------------
    # Participant side
    # ------------------------------------------------------------------
    def rpc_prepare(
        self,
        tid: str,
        oids: List[ObjectId],
        start_vts: VectorTimestamp,
        coord_site: Optional[int] = None,
    ):
        """Fig 12 prepare: vote YES and lock, or NO.  Idempotent: a
        duplicate prepare for an already-prepared tid refreshes the lock
        lease and repeats the YES; one for a decided tid votes NO
        without re-locking."""
        # cpu.use() inlined: skips the sub-generator frame on the
        # per-RPC path; the events (acquire, service-time timeout,
        # release) are identical.
        yield self.cpu.acquire()
        try:
            yield self.kernel.timeout(self.costs.commit_op)
        finally:
            self.cpu.release()
        if tid in self._decisions:
            return False  # decision already delivered; never re-lock
        if tid in self._prepared:
            self._prepared[tid].deadline = self.kernel.now + self.leases.lock_lease
            return True
        if not self.config.is_active(self.site_id):
            return False  # still synchronizing after re-integration (§5.7)
        if not self.commit_admission_open():
            # Replacement server, lock table lost with the predecessor:
            # a YES now could double-grant a lock an in-flight commit
            # still holds (§5.7).  Vote NO until caught up.
            return False
        for oid in oids:
            if self.config.preferred_site(oid) != self.site_id:
                return False  # stale coordinator cache; refuse (§5.1)
            if not self.config.holds_preferred_lease(oid.container, self.site_id):
                return False
            if oid in self.locked and self.locked[oid] != tid:
                self.profiler.record_conflict(oid)
                return False
            if not self.histories.unmodified(oid, start_vts):
                # A fast commit beat this slow commit; mark the object so
                # the retry can win (§6 anti-starvation).
                self.profiler.record_conflict(oid)
                self.mark_slow_commit_abort([oid])
                return False
        for oid in oids:
            self.locked[oid] = tid
        self._prepared[tid] = PreparedLock(
            coord_site=self.site_id if coord_site is None else coord_site,
            deadline=self.kernel.now + self.leases.lock_lease,
        )
        return True

    def rpc_release_prepare(self, tid: str, outcome: str = ABORTED):
        """Acked decision delivery (the coordinator retries this until it
        gets the ack).  Idempotent via the decision table."""
        self._apply_release(tid, outcome)
        return "OK"

    def on_release_prepare(self, src: str, tid: str, outcome: str = ABORTED):
        self._apply_release(tid, outcome)

    def _apply_release(self, tid: str, outcome: str) -> None:
        self._record_decision(tid, outcome)
        self._release_locks(tid)

    def rpc_tx_decision(self, tid: str):
        """Answer a participant's orphan-lock query (coordinator side).

        COMMIT decisions survive coordinator replacement: the commit
        record is WAL-durable and restored into ``_records_by_version``,
        so a replacement still answers COMMITTED.  A tid with no trace
        anywhere was never durably committed -- either never decided
        (coordinator crashed mid-2PC; its 2PC died with it) or fenced at
        takeover and abandoned -- so UNKNOWN licenses a presumed-abort
        release."""
        entry = self._decisions.get(tid)
        if entry is not None:
            return entry[0]
        if tid in self._txs:
            return PENDING
        for record in self._records_by_version.values():
            if record.tid == tid:
                return COMMITTED
        return UNKNOWN

    def _resolve_orphan_lock(self, tid: str):
        """Sweeper child: a prepare lock outlived its lease; ask the
        coordinator what happened.  Only ABORTED/UNKNOWN answers release
        the lock (presumed abort -- the decision cannot have been
        COMMIT); COMMITTED/PENDING answers extend the lease and wait for
        propagation/the decision delivery to release it normally."""
        info = self._prepared.get(tid)
        if info is None:
            return
        info.querying = True
        try:
            decision = yield from self.call(
                self.peers[info.coord_site],
                "tx_decision",
                tid=tid,
                timeout=self._rpc_timeout(),
            )
        except RpcError:
            # Coordinator unreachable: keep the lock (the decision may
            # have been COMMIT) and retry one sweep later.
            info.deadline = self.kernel.now + self.leases.sweep_interval
            info.querying = False
            return
        info.querying = False
        if decision in (ABORTED, UNKNOWN):
            held = sum(1 for owner in self.locked.values() if owner == tid)
            self._record_decision(tid, ABORTED)
            self._release_locks(tid)
            self.obs.registry.counter(
                "locks.leaked_released", site=self.site_id
            ).inc(held)
        else:
            info.deadline = self.kernel.now + self.leases.lock_lease

    def _release_locks(self, tid: str) -> None:
        for oid in [o for o, owner in self.locked.items() if owner == tid]:
            del self.locked[oid]
        self._prepared.pop(tid, None)

    # ------------------------------------------------------------------
    # Anti-starvation (§6, optional)
    # ------------------------------------------------------------------
    def mark_slow_commit_abort(self, oids) -> None:
        """Delay fast-commit access to ``oids`` briefly so the next slow
        commit attempt can win."""
        if not self.anti_starvation:
            return
        until = self.kernel.now + self.anti_starvation_delay
        for oid in oids:
            self._delayed_until[oid] = until

    def _is_access_delayed(self, oid: ObjectId) -> bool:
        until = self._delayed_until.get(oid)
        if until is None:
            return False
        if self.kernel.now >= until:
            del self._delayed_until[oid]
            return False
        return True
