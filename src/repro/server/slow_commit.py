"""Slow commit (paper Fig 12, §5.5).

Transactions that write a regular object whose preferred site is remote
run a two-phase commit among the *preferred sites* of the written objects
(not across all replicas).  Phase 1 asks each such site to vote: YES and
lock the objects if they are unmodified and unlocked, NO otherwise.  If
all vote YES the coordinator commits exactly like fast commit; otherwise
it tells the YES voters to release their locks.  Remote sites release a
committed transaction's locks when it propagates to them (Fig 13).

§6 notes slow commit can starve under repeated conflicting fast commits
and sketches a fix -- briefly delaying fast-commit access to objects that
aborted a slow commit; the authors did not implement it, we do (behind
``anti_starvation``), since it is fully specified in one paragraph.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.objects import ObjectId
from ..core.transaction import Transaction
from ..core.versions import VectorTimestamp
from ..net import RpcError
from ..obs import trace as span
from ..sim import AllOf

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"


class SlowCommitMixin:
    def _slow_commit(self, tx: Transaction, notify: Optional[str] = None):
        """Fig 12 slowCommit: 2PC among preferred sites of written objects."""
        self.stats.slow_commit_attempts += 1
        sites = sorted({self.config.preferred_site(oid) for oid in tx.write_set})
        self._span(tx.tid, span.SLOW_COMMIT_PREPARE, participants=len(sites))

        def ask(site: int):
            oids = [o for o in sorted(tx.write_set, key=str) if self.config.preferred_site(o) == site]
            try:
                vote = yield from self.call(
                    self.peers[site],
                    "prepare",
                    tid=tx.tid,
                    oids=oids,
                    start_vts=tx.start_vts,
                    timeout=self._rpc_timeout(),
                )
                return (site, bool(vote))
            except RpcError:
                return (site, False)

        procs = [
            self.spawn_child(ask(site), name="prepare:%s@%d" % (tx.tid, site))
            for site in sites
        ]
        votes: Dict[int, bool] = dict((yield AllOf(procs)))

        if all(votes.values()):
            yield self.commit_lock.acquire()
            try:
                yield self.kernel.timeout(self.costs.commit_critical)
                version = self._apply_local_commit(tx)
            finally:
                self.commit_lock.release()
            self._release_locks(tx.tid)  # locks at this server (Fig 12)
            self._span(tx.tid, span.SLOW_COMMIT_COMMIT, seqno=version.seqno)
            yield from self._finish_local_commit(tx, version, notify)
            self.stats.slow_commits += 1
            return COMMITTED

        # Tell the YES voters to unlock.
        for site, vote in votes.items():
            if vote:
                self.cast(self.peers[site], "release_prepare", tid=tx.tid)
        tx.mark_aborted()
        self.stats.aborts += 1
        self._span(tx.tid, span.ABORT, phase="slow_commit")
        return ABORTED

    # ------------------------------------------------------------------
    # Participant side
    # ------------------------------------------------------------------
    def rpc_prepare(self, tid: str, oids: List[ObjectId], start_vts: VectorTimestamp):
        """Fig 12 prepare: vote YES and lock, or NO."""
        yield from self.cpu.use(self.costs.commit_op)
        if not self.config.is_active(self.site_id):
            return False  # still synchronizing after re-integration (§5.7)
        for oid in oids:
            if self.config.preferred_site(oid) != self.site_id:
                return False  # stale coordinator cache; refuse (§5.1)
            if not self.config.holds_preferred_lease(oid.container, self.site_id):
                return False
            if oid in self.locked and self.locked[oid] != tid:
                return False
            if not self.histories.unmodified(oid, start_vts):
                # A fast commit beat this slow commit; mark the object so
                # the retry can win (§6 anti-starvation).
                self.mark_slow_commit_abort([oid])
                return False
        for oid in oids:
            self.locked[oid] = tid
        return True

    def on_release_prepare(self, src: str, tid: str):
        self._release_locks(tid)

    def _release_locks(self, tid: str) -> None:
        for oid in [o for o, owner in self.locked.items() if owner == tid]:
            del self.locked[oid]

    # ------------------------------------------------------------------
    # Anti-starvation (§6, optional)
    # ------------------------------------------------------------------
    def mark_slow_commit_abort(self, oids) -> None:
        """Delay fast-commit access to ``oids`` briefly so the next slow
        commit attempt can win."""
        if not self.anti_starvation:
            return
        until = self.kernel.now + self.anti_starvation_delay
        for oid in oids:
            self._delayed_until[oid] = until

    def _is_access_delayed(self, oid: ObjectId) -> bool:
        until = self._delayed_until.get(oid)
        if until is None:
            return False
        if self.kernel.now >= until:
            del self._delayed_until[oid]
            return False
        return True
