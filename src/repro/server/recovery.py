"""Failure handling (paper §5.7).

Three mechanisms:

* **Server replacement.**  The transaction log lives in the site's
  replicated cluster storage; a replacement server rebuilds its state
  from the last checkpoint plus the log suffix and resumes propagation of
  committed-but-not-fully-propagated transactions.

* **Site removal (aggressive option).**  When a whole site fails, the
  configuration service switches to a configuration excluding it.  A
  transaction x of the failed site *survives* iff x, every transaction
  that causally precedes x, and every transaction of the failed site with
  a smaller seqno reached some surviving site.  Non-surviving replicated
  data is discarded; propagation of survivors is completed; the failed
  site's containers get a new preferred site.

* **Site re-integration.**  The returning site first discards its
  non-surviving transactions and synchronizes with the surviving sites,
  then takes back the preferred-site role for its containers.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core.transaction import CommitRecord
from ..core.versions import VectorTimestamp, Version


class RecoveryMixin:
    """Server-side recovery hooks (run on/against a Walter server)."""

    # ------------------------------------------------------------------
    # Replacement-server restart
    # ------------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, Any]:
        """What the background checkpointer captures (§6)."""
        return {
            "curr_seqno": self.curr_seqno,
            "committed_vts": list(self.committed_vts),
            "got_vts": list(self.got_vts),
            "records": dict(self._records_by_version),
            "ds_tids": {
                tid for tid, t in self._trackers.items() if t.ds_durable
            },
            "visible_tids": set(self._visible_tids),
        }

    def restore_from_storage(self) -> int:
        """Rebuild Fig 9 state from checkpoint + log suffix; returns the
        number of log records replayed."""
        state, suffix = self.storage.recover()
        ds_tids, visible_tids = set(), set()
        if state is not None:
            self.curr_seqno = state["curr_seqno"]
            self.committed_vts = VectorTimestamp(state["committed_vts"])
            self.got_vts = VectorTimestamp(state["got_vts"])
            self._records_by_version = dict(state["records"])
            ds_tids = set(state["ds_tids"])
            visible_tids = set(state["visible_tids"])
            for version in sorted(self._records_by_version):
                record = self._records_by_version[version]
                if self.got_vts.visible(version):
                    self.histories.apply(record.updates, version)
        for payload in suffix:
            self._replay_log_record(payload, ds_tids, visible_tids)
        self._visible_tids = set(visible_tids)
        self._resume_propagation(ds_tids, visible_tids)
        return len(suffix)

    def _replay_log_record(self, payload: Dict[str, Any], ds_tids, visible_tids) -> None:
        kind = payload["kind"]
        if kind == "local_commit":
            record: CommitRecord = payload["record"]
            version = record.version
            if self.got_vts[record.site] >= record.seqno:
                return  # already covered by the checkpoint
            self.curr_seqno = max(self.curr_seqno, record.seqno)
            self.histories.apply(record.updates, version)
            self.committed_vts = self.committed_vts.with_entry(record.site, record.seqno)
            self.got_vts = self.got_vts.with_entry(record.site, record.seqno)
            self._records_by_version[version] = record
        elif kind == "remote_apply":
            record = payload["record"]
            if self.got_vts[record.site] >= record.seqno:
                return
            self.histories.apply(record.updates, record.version)
            self.got_vts = self.got_vts.with_entry(record.site, record.seqno)
            self._records_by_version[record.version] = record
        elif kind == "remote_commit":
            version: Version = payload["version"]
            if self.committed_vts[version.site] < version.seqno:
                self.committed_vts = self.committed_vts.with_entry(
                    version.site, version.seqno
                )
        elif kind == "ds_durable":
            ds_tids.add(payload["tid"])
        elif kind == "globally_visible":
            visible_tids.add(payload["tid"])

    def _resume_propagation(self, ds_tids, visible_tids) -> None:
        """Re-enqueue local commits that are not yet globally visible --
        receivers treat duplicates idempotently and re-ACK."""
        for version in sorted(self._records_by_version):
            if version.site != self.site_id:
                continue
            record = self._records_by_version[version]
            if record.tid in visible_tids:
                continue
            self._enqueue_propagation(record, notify=None)
            self.stats.resumed_propagations += 1

    # ------------------------------------------------------------------
    # RPCs used by the site-recovery coordinator
    # ------------------------------------------------------------------
    def rpc_recovery_report(self):
        """What this site has received/committed, per origin site."""
        return {
            "site": self.site_id,
            "got": list(self.got_vts),
            "committed": list(self.committed_vts),
        }

    def rpc_recovery_fetch(self, site: int, from_seqno: int, to_seqno: int):
        """Return the commit records of ``site`` in (from, to]."""
        records = []
        for seqno in range(from_seqno + 1, to_seqno + 1):
            record = self._records_by_version.get(Version(site, seqno))
            if record is not None:
                records.append(record)
        return records

    def rpc_recovery_deliver(self, records: List[CommitRecord]):
        """Apply fetched records (in order) as if propagated normally."""
        for record in records:
            if self.got_vts[record.site] >= record.seqno:
                continue
            yield from self.cpu.use(self.costs.apply_remote)
            self.histories.apply(record.updates, record.version)
            self.got_vts = self.got_vts.with_entry(record.site, record.seqno)
            self._records_by_version[record.version] = record
            yield self.storage.log.append({"kind": "remote_apply", "record": record})
        self._drain_pending()
        return "OK"

    def rpc_recovery_finalize(self, failed_site: int, survive_upto: int):
        """Discard non-surviving transactions of ``failed_site`` (those
        with seqno > ``survive_upto``) and commit the survivors here."""
        def survives(version: Version) -> bool:
            return version.site != failed_site or version.seqno <= survive_upto

        dropped = 0
        for oid in self.histories.known_oids():
            history = self.histories.history(oid)
            dropped += history.truncate_versions(
                [e.version for e in history if survives(e.version)]
            )
        for version in [v for v in self._records_by_version if not survives(v)]:
            del self._records_by_version[version]
        if self.got_vts[failed_site] > survive_upto:
            self.got_vts = self.got_vts.with_entry(failed_site, survive_upto)
        if self.committed_vts[failed_site] < survive_upto:
            # Commit surviving transactions that were stuck mid-propagation.
            for seqno in range(self.committed_vts[failed_site] + 1, survive_upto + 1):
                record = self._records_by_version.get(Version(failed_site, seqno))
                if record is not None:
                    self._commit_remote(record, reply_to=None)
        self._drain_pending()
        return {"dropped": dropped}


class SiteRecoveryCoordinator:
    """Drives the aggressive site-removal and re-integration protocols.

    In the paper this logic lives in the configuration service; here it is
    a coordinator object whose methods are simulated processes run by the
    deployment (which also updates the shared configuration view).
    """

    def __init__(self, kernel, coordinator_host, server_addresses: Dict[int, str]):
        self.kernel = kernel
        self.host = coordinator_host  # any Host able to issue RPCs
        self.server_addresses = dict(server_addresses)

    def remove_site(self, config, failed_site: int, reassign_to: int):
        """Generator implementing §5.7 "Handling a site failure"
        (aggressive option).  Returns the surviving seqno bound."""
        # 1. Suspend the failed site's leases: writes to its containers
        #    are postponed until reassignment completes.
        config.suspend_leases_of_site(failed_site)
        config.deactivate_site(failed_site)
        survivors = [s for s in config.active_sites()]

        # 2. Discover what survives: the largest prefix of the failed
        #    site's transactions present at any surviving site.
        reports = {}
        for site in survivors:
            report = yield from self.host.call(
                self.server_addresses[site], "recovery_report", timeout=5.0
            )
            reports[site] = report
        survive_upto = max(report["got"][failed_site] for report in reports.values())

        # 3. Complete propagation of survivors: fetch missing records from
        #    the most advanced site and deliver to the laggards.
        donor = max(survivors, key=lambda s: reports[s]["got"][failed_site])
        for site in survivors:
            have = reports[site]["got"][failed_site]
            if have < survive_upto:
                records = yield from self.host.call(
                    self.server_addresses[donor],
                    "recovery_fetch",
                    site=failed_site,
                    from_seqno=have,
                    to_seqno=survive_upto,
                    timeout=5.0,
                )
                yield from self.host.call(
                    self.server_addresses[site],
                    "recovery_deliver",
                    records=records,
                    timeout=5.0,
                )

        # 4. Discard non-survivors and commit survivors everywhere.
        for site in survivors:
            yield from self.host.call(
                self.server_addresses[site],
                "recovery_finalize",
                failed_site=failed_site,
                survive_upto=survive_upto,
                timeout=5.0,
            )

        # 5. Reassign the failed site's containers and re-evaluate
        #    durability conditions under the shrunk active set.
        for container in config.containers():
            if container.preferred_site == failed_site:
                config.reassign_preferred_site(
                    container.id, reassign_to, remember_original=True
                )
        for site in survivors:
            yield from self.host.call(
                self.server_addresses[site], "recheck_durability", timeout=5.0
            )
        return survive_upto

    def reintegrate_site(self, config, returning_site: int, returning_server_address: str):
        """Generator implementing §5.7 "Re-integrating a previously failed
        site": synchronize the returning server, then hand leases back."""
        survivors = [s for s in config.active_sites() if s != returning_site]
        donor = survivors[0]
        report = yield from self.host.call(
            self.server_addresses[donor], "recovery_report", timeout=5.0
        )
        returning_report = yield from self.host.call(
            returning_server_address, "recovery_report", timeout=5.0
        )
        # The returning site discards transactions the new configuration
        # abandoned (its own seqnos beyond what survived).
        survive_upto = report["got"][returning_site]
        yield from self.host.call(
            returning_server_address,
            "recovery_finalize",
            failed_site=returning_site,
            survive_upto=survive_upto,
            timeout=5.0,
        )
        # Catch up on everything committed while it was away.
        for origin in range(len(report["got"])):
            have = returning_report["got"][origin]
            if origin == returning_site:
                have = min(have, survive_upto)
            want = report["got"][origin]
            if have < want:
                records = yield from self.host.call(
                    self.server_addresses[donor],
                    "recovery_fetch",
                    site=origin,
                    from_seqno=have,
                    to_seqno=want,
                    timeout=5.0,
                )
                yield from self.host.call(
                    returning_server_address,
                    "recovery_deliver",
                    records=records,
                    timeout=5.0,
                )
        # Commit everything delivered (it is all DS-durable by survival).
        for origin in range(len(report["got"])):
            yield from self.host.call(
                returning_server_address,
                "recovery_finalize",
                failed_site=origin,
                survive_upto=report["committed"][origin]
                if origin != returning_site
                else survive_upto,
                timeout=5.0,
            )
        config.activate_site(returning_site)
        self.server_addresses[returning_site] = returning_server_address
        # Hand displaced containers back to their original preferred site.
        config.restore_displaced(returning_site)
        return survive_upto
