"""Failure handling (paper §5.7).

Three mechanisms:

* **Server replacement.**  The transaction log lives in the site's
  replicated cluster storage; a replacement server rebuilds its state
  from the last checkpoint plus the log suffix and resumes propagation of
  committed-but-not-fully-propagated transactions.

* **Site removal (aggressive option).**  When a whole site fails, the
  configuration service switches to a configuration excluding it.  A
  transaction x of the failed site *survives* iff x, every transaction
  that causally precedes x, and every transaction of the failed site with
  a smaller seqno reached some surviving site.  Non-surviving replicated
  data is discarded; propagation of survivors is completed; the failed
  site's containers get a new preferred site.

* **Site re-integration.**  The returning site first discards its
  non-surviving transactions and synchronizes with the surviving sites,
  then takes back the preferred-site role for its containers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.history import SiteHistories
from ..core.transaction import CommitRecord
from ..core.versions import VectorTimestamp, Version


class RecoveryMixin:
    """Server-side recovery hooks (run on/against a Walter server).

    ``chaos_bug`` is a fault-injection hook used only by the chaos
    harness's self-test (tests/chaos): setting it to a known name makes
    recovery deliberately unsafe so the harness can prove its oracles
    catch the resulting violations.  It is never set in production
    deployments.
    """

    #: Recognized deliberate-bug names for harness self-tests.
    #: ``leak_prepare_locks`` reverts the commit-path hardening (abort
    #: releases cast to YES voters only, no orphan-lock resolution) so
    #: the ``no-leaked-locks`` oracle can be shown to catch the leak.
    CHAOS_BUGS = ("skip_resume_propagation", "leak_prepare_locks")
    chaos_bug = None

    #: Commit-admission barrier for replacement servers (§5.7).  The
    #: prepared-lock table is volatile -- prepares are never WAL-logged
    #: -- so a takeover forgets every lock the predecessor granted.  A
    #: coordinator the predecessor voted YES for may have committed and
    #: be mid-propagation; until the replacement's GotVTS dominates what
    #: the live sites had committed at takeover, admitting a fast commit
    #: or voting YES on a prepare could commit a write-write conflict
    #: right over that in-flight transaction.
    _sync_barrier_vts: Optional[VectorTimestamp] = None

    def set_sync_barrier(self, target: VectorTimestamp) -> None:
        """Block commit admission until ``GotVTS`` dominates ``target``
        (a no-op if it already does)."""
        if not self.got_vts.dominates(target):
            self._sync_barrier_vts = target

    def commit_admission_open(self) -> bool:
        """False while a replacement is still synchronizing: propagation
        has not yet redelivered everything the rest of the system had
        committed when this server took over."""
        barrier = self._sync_barrier_vts
        if barrier is None:
            return True
        if self.got_vts.dominates(barrier):
            self._sync_barrier_vts = None
            return True
        return False

    # ------------------------------------------------------------------
    # Replacement-server restart
    # ------------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, Any]:
        """What the background checkpointer captures (§6).

        Histories are checkpointed as their own state (suffix entries
        plus cset GC bases) rather than rebuilt from commit records at
        restore: the record map is watermark-pruned, so it no longer
        covers the full object state.  The checkpointer deep-copies."""
        return {
            "curr_seqno": self.curr_seqno,
            "committed_vts": list(self.committed_vts),
            "got_vts": list(self.got_vts),
            "histories": self.histories.dump(),
            "records": dict(self._records_by_version),
            "ds_tids": {
                tid for tid, t in self._trackers.items() if t.ds_durable
            },
            "visible_tids": set(self._visible_tids),
        }

    def restore_from_storage(self, resume_propagation: bool = True) -> int:
        """Rebuild Fig 9 state from checkpoint + log suffix; returns the
        number of log records replayed.

        ``resume_propagation=False`` is used for site re-integration: the
        returning server must NOT re-propagate its own logged commits,
        because the suffix beyond the surviving bound was abandoned by
        the removal configuration (§4.4) -- resuming would resurrect
        abandoned transactions at the survivors.  (Everything of its own
        that *did* survive was already committed at every survivor by the
        removal protocol, so there is nothing to resume.)"""
        state, suffix = self.storage.recover()
        ds_tids, visible_tids = set(), set()
        if state is not None:
            self.curr_seqno = state["curr_seqno"]
            self.committed_vts = VectorTimestamp(state["committed_vts"])
            self.got_vts = VectorTimestamp(state["got_vts"])
            self._records_by_version = dict(state["records"])
            ds_tids = set(state["ds_tids"])
            visible_tids = set(state["visible_tids"])
            # The history dump is taken atomically with the vectors, so
            # it is exactly the applied state at GotVTS (including any
            # cset bases the GC folded, which records cannot rebuild).
            self.histories = SiteHistories.load(state["histories"])
        for payload in suffix:
            self._replay_log_record(payload, ds_tids, visible_tids)
        self._visible_tids = set(visible_tids)
        if resume_propagation and self.chaos_bug != "skip_resume_propagation":
            self._resume_propagation(ds_tids, visible_tids)
        return len(suffix)

    def _replay_log_record(self, payload: Dict[str, Any], ds_tids, visible_tids) -> None:
        kind = payload["kind"]
        if kind == "local_commit":
            record: CommitRecord = payload["record"]
            version = record.version
            if self.got_vts[record.site] >= record.seqno:
                return  # already covered by the checkpoint
            self.curr_seqno = max(self.curr_seqno, record.seqno)
            self.histories.apply(record.updates, version)
            self.committed_vts = self.committed_vts.with_entry(record.site, record.seqno)
            self.got_vts = self.got_vts.with_entry(record.site, record.seqno)
            self._records_by_version[version] = record
        elif kind == "remote_apply":
            record = payload["record"]
            if self.got_vts[record.site] >= record.seqno:
                return
            self.histories.apply(record.updates, record.version)
            self.got_vts = self.got_vts.with_entry(record.site, record.seqno)
            self._records_by_version[record.version] = record
        elif kind == "remote_commit":
            version: Version = payload["version"]
            if self.committed_vts[version.site] < version.seqno:
                self.committed_vts = self.committed_vts.with_entry(
                    version.site, version.seqno
                )
        elif kind == "container_backfill":
            # Replica-join copy (partial replication, DESIGN.md §13).
            # Propagation will never redeliver the trimmed-away history,
            # so the logged copy is its only durable source; replayed at
            # its log position like any other record.
            self.histories.install_container(payload["dump"])
        elif kind == "ds_durable":
            ds_tids.add(payload["tid"])
        elif kind == "globally_visible":
            visible_tids.add(payload["tid"])
        elif kind == "recovery_finalize":
            # Re-perform the truncation at the same point in log order it
            # originally happened.  Without this marker a full-log replay
            # resurrects an abandoned suffix: the dead local_commit
            # records are still in the log, and by the time this server
            # restarts the survivors may have sealed those seqnos with
            # no-ops -- so a later finalize round sees nothing beyond the
            # surviving bound and never re-truncates.
            self._discard_abandoned_suffix(
                payload["failed_site"], payload["survive_upto"]
            )

    def install_container_backfill(self, cid: str, dumped) -> "Any":
        """Install a replica backfill: this site is joining ``cid``'s
        replica set (partial replication) and receives a copy of the
        container's retained histories from an existing replica.  The
        copy is WAL-logged -- a replacement server cannot re-fetch it
        from propagation, which trims this container's updates out of
        every record sent before the membership change.  Returns the
        log-append event so the caller can await durability before
        acting on the installed copy."""
        self.histories.install_container(dumped)
        return self.storage.log.append(
            {"kind": "container_backfill", "cid": cid, "dump": dumped}
        )

    def seal_seqno_holes(self) -> int:
        """Fill own-site seqno holes with no-op commits.

        A hole is a seqno in ``(GotVTS[self], CurrSeqNo]``: handed out by
        a previous incarnation of this server but carried by no surviving
        transaction -- either fenced at a storage takeover before
        becoming durable, or abandoned by aggressive site removal and
        truncated at re-integration.  The seqno cannot be reused (the
        dead transaction may have been observed before it was lost, and
        traces key on versions), but leaving a gap would wedge every
        receiver forever: the propagation guard demands a contiguous
        seqno stream per origin.  A no-op commit record propagates
        through the normal path and plugs the gap at every site."""
        sealed = 0
        while self.got_vts[self.site_id] < self.curr_seqno:
            seqno = self.got_vts[self.site_id] + 1
            version = Version(self.site_id, seqno)
            record = CommitRecord(
                tid="noop-%d-%d" % (self.site_id, seqno),
                site=self.site_id,
                seqno=seqno,
                start_vts=self.committed_vts,
                updates=[],
                committed_at=self.kernel.now,
            )
            self.got_vts = self.got_vts.with_entry(self.site_id, seqno)
            self.committed_vts = self.committed_vts.with_entry(self.site_id, seqno)
            self._records_by_version[version] = record
            self.storage.log.append({"kind": "local_commit", "record": record})
            if self.trace is not None:
                from ..spec.checker import TracedTx

                self.trace.record_commit(
                    TracedTx(record.tid, self.site_id, record.start_vts,
                             version, [], frozenset())
                )
                self.trace.record_site_commit(self.site_id, version)
            self._enqueue_propagation(record, notify=None)
            self.stats.sealed_holes += 1
            sealed += 1
        if sealed:
            self._drain_pending()
        return sealed

    def _resume_propagation(self, ds_tids, visible_tids) -> None:
        """Re-enqueue local commits that are not yet globally visible --
        receivers treat duplicates idempotently and re-ACK."""
        for version in sorted(self._records_by_version):
            if version.site != self.site_id:
                continue
            record = self._records_by_version[version]
            if record.tid in visible_tids:
                continue
            self._enqueue_propagation(record, notify=None)
            self.stats.resumed_propagations += 1

    # ------------------------------------------------------------------
    # RPCs used by the site-recovery coordinator
    # ------------------------------------------------------------------
    def rpc_container_export(self, cid: str):
        """Dump one container's retained histories -- the coordinator
        copies them to a site joining the replica set (partial
        replication; a non-replica only ever received trimmed records)."""
        return self.histories.export_container(cid)

    def rpc_container_install(self, cid: str, dump):
        """Install a replica-join copy; acks only after the WAL flush
        (the coordinator retries on timeout, and install is idempotent:
        it replaces the same objects with the same dump)."""
        yield self.install_container_backfill(cid, dump)
        return "OK"

    def rpc_recovery_report(self):
        """What this site has received/committed, per origin site."""
        return {
            "site": self.site_id,
            "got": list(self.got_vts),
            "committed": list(self.committed_vts),
        }

    def rpc_recovery_fetch(self, site: int, from_seqno: int, to_seqno: int):
        """Return the commit records of ``site`` in (from, to]."""
        records = []
        for seqno in range(from_seqno + 1, to_seqno + 1):
            record = self._records_by_version.get(Version(site, seqno))
            if record is not None:
                records.append(record)
        return records

    def _retrim_for_self(self, record: CommitRecord) -> CommitRecord:
        """Recovery deliveries can come from a donor whose replica set
        differs from this site's: the donor's copy (or a merged copy the
        coordinator assembled from several donors) may carry data this
        site does not replicate.  Trim to this site's own containers so
        recovery never widens what partial replication placed here --
        otherwise sites would diverge in what a later convergence check
        (or a future donor role) sees."""
        if not self.partial_replication or not record.updates:
            return record
        config = self.config
        keep = [
            u
            for u in record.updates
            if config.container(u.oid.container).replicated_at(self.site_id)
        ]
        if len(keep) == len(record.updates):
            return record
        return record.trimmed(keep)

    def rpc_recovery_deliver(self, records: List[CommitRecord]):
        """Apply fetched records (in order) as if propagated normally.

        "As if propagated" includes the got guard: a record whose causal
        dependencies (startVTS) are not yet applied here is parked in
        ``_pending_remote`` exactly like normal propagation would park
        it.  Applying it immediately would insert it into this site's
        histories out of causal order -- and regular-object reads
        resolve "latest visible version" by application order, so an
        origin-grouped recovery sync could serve a causally overwritten
        value.  Cross-origin dependencies settle as the coordinator's
        per-origin rounds deliver and ``_drain_pending`` re-scans."""
        for record in records:
            if self.got_vts[record.site] >= record.seqno:
                continue
            record = self._retrim_for_self(record)
            if not self._got_guard(record):
                self._pending_remote.add(record, None)
                continue
            # _apply_remote_inner holds the commit lock and re-checks for
            # duplicates under it: this delivery may race normal
            # propagation of the same records.
            done = yield from self._apply_remote_inner(record)
            if done is not None:
                yield done
            self._drain_pending()
        self._drain_pending()
        return "OK"

    def _discard_abandoned_suffix(self, failed_site: int, survive_upto: int) -> int:
        """Drop every transaction of ``failed_site`` beyond
        ``survive_upto`` from histories and records, lowering the vector
        entries accordingly.  Shared by ``rpc_recovery_finalize`` (live)
        and log replay (the durable ``recovery_finalize`` marker)."""
        def survives(version: Version) -> bool:
            return version.site != failed_site or version.seqno <= survive_upto

        dropped = 0
        for oid in self.histories.known_oids():
            history = self.histories.history(oid)
            dropped += history.truncate_versions(
                [e.version for e in history if survives(e.version)]
            )
        for version in [v for v in self._records_by_version if not survives(v)]:
            del self._records_by_version[version]
        if self.got_vts[failed_site] > survive_upto:
            self.got_vts = self.got_vts.with_entry(failed_site, survive_upto)
        if self.committed_vts[failed_site] > survive_upto:
            # Only a returning site can be here: it committed (in memory)
            # beyond the bound before failing, and those transactions are
            # abandoned by the new configuration (§4.4 aggressive option).
            self.committed_vts = self.committed_vts.with_entry(
                failed_site, survive_upto
            )
        return dropped

    def rpc_recovery_finalize(self, failed_site: int, survive_upto: int, rk=None):
        """Discard non-surviving transactions of ``failed_site`` (those
        with seqno > ``survive_upto``) and commit the survivors here.

        ``rk`` is the coordinator's at-most-once request key.  Finalize
        is the one recovery RPC that is NOT idempotent over time: a
        retried request whose original reply was lost may arrive after
        this site resumed committing, and re-truncating at the stale
        bound would discard freshly committed transactions."""
        if rk is not None:
            done = getattr(self, "_finalize_done", None)
            if done is None:
                done = self._finalize_done = {}
            if rk in done:
                return done[rk]
        # Durable first: if this server later rebuilds from its log, the
        # marker repeats the truncation in replay order.
        self.storage.log.append(
            {
                "kind": "recovery_finalize",
                "failed_site": failed_site,
                "survive_upto": survive_upto,
            }
        )
        dropped = self._discard_abandoned_suffix(failed_site, survive_upto)
        if self.committed_vts[failed_site] < survive_upto:
            # Commit surviving transactions that were stuck mid-propagation.
            self._queue_recovery_commits(failed_site, survive_upto)
        if failed_site == self.site_id:
            # Re-integration: this server just truncated its own abandoned
            # suffix; seal the resulting seqno gap before anything new
            # commits here.
            self.seal_seqno_holes()
        self._drain_pending()
        result = {"dropped": dropped}
        if rk is not None:
            self._finalize_done[rk] = result
        return result

    def rpc_recovery_commit_upto(self, site: int, upto: int):
        """Commit already-delivered transactions of ``site`` through
        ``upto``.  Unlike ``recovery_finalize`` this is purely monotone --
        it never truncates history or lowers vector entries -- so the
        coordinator can use it for catch-up rounds that may race normal
        propagation."""
        self._queue_recovery_commits(site, upto)
        self._drain_pending()
        return "OK"

    def _queue_recovery_commits(self, site: int, upto: int) -> None:
        """Stage delivered-but-uncommitted records of ``site`` for commit
        via the normal pending-DS path.  Committing them directly would
        bypass ``_committed_guard`` and put them into this site's commit
        order grouped by origin rather than causally -- a reader here
        could then observe a transaction without its causal dependencies
        (PSI Property 3).  ``_drain_pending`` commits each record once
        its guard passes; records whose dependencies arrive later (e.g.
        via another per-origin recovery round, or normal propagation)
        commit at that point."""
        for seqno in range(self.committed_vts[site] + 1, upto + 1):
            record = self._records_by_version.get(Version(site, seqno))
            if record is not None:
                self._pending_ds.add(record, None)  # add() dedups by version


class SiteRecoveryCoordinator:
    """Drives the aggressive site-removal and re-integration protocols.

    In the paper this logic lives in the configuration service; here it is
    a coordinator object whose methods are simulated processes run by the
    deployment (which also updates the shared configuration view).
    """

    #: Per-RPC timeout and retry budget.  Coordinator RPCs must survive
    #: transient message loss: losing one request mid-protocol would
    #: otherwise leave the reconfiguration half-applied with no other
    #: mechanism to complete it (the paper puts this logic in the
    #: fault-tolerant configuration service).
    RPC_TIMEOUT = 5.0
    RPC_RETRIES = 8

    def __init__(self, kernel, coordinator_host, server_addresses: Dict[int, str]):
        self.kernel = kernel
        self.host = coordinator_host  # any Host able to issue RPCs
        self.server_addresses = dict(server_addresses)
        self._rk_counter = 0

    def _call(self, address: str, method: str, **kwargs):
        """RPC with bounded retries on timeout.  Reports are reads and
        deliver/commit_upto are monotone, so resending those is safe;
        finalize is made at-most-once with a request key (a late
        duplicate would re-truncate at a stale bound)."""
        from ..net import RpcTimeout

        if method == "recovery_finalize":
            self._rk_counter += 1
            kwargs.setdefault(
                "rk",
                "%s:%d" % (getattr(self.host, "address", "coord"), self._rk_counter),
            )
        for attempt in range(self.RPC_RETRIES + 1):
            try:
                result = yield from self.host.call(
                    address, method, timeout=self.RPC_TIMEOUT, **kwargs
                )
                return result
            except RpcTimeout:
                if attempt == self.RPC_RETRIES:
                    raise

    def _is_partial(self, config) -> bool:
        """True when some container is not replicated at every site.
        Recovery takes extra care (and extra RPCs) only then; under full
        replication the legacy paths run byte-for-byte unchanged."""
        n = len(self.server_addresses)
        return any(
            not all(c.replicated_at(s) for s in range(n))
            for c in config.containers()
        )

    def _fetch_merged(self, stream_site: int, from_seqno: int, to_seqno: int,
                      sources: List[int]):
        """``stream_site``'s records in (from, to], merged across copies
        from every source.  Under partial replication each site stores
        copies trimmed to its own replica set, so no single donor is
        guaranteed to hold every surviving update's data; the union of
        the sources' copies is the most complete record reconstructible
        from the surviving sites."""
        merged: Dict[int, CommitRecord] = {}
        for source in sources:
            records = yield from self._call(self.server_addresses[source],
                "recovery_fetch",
                site=stream_site,
                from_seqno=from_seqno,
                to_seqno=to_seqno)
            for record in records:
                cur = merged.get(record.seqno)
                if cur is None:
                    merged[record.seqno] = record
                    continue
                have = {u.oid for u in cur.updates}
                extra = [u for u in record.updates if u.oid not in have]
                if extra:
                    merged[record.seqno] = CommitRecord(
                        cur.tid, cur.site, cur.seqno, cur.start_vts,
                        list(cur.updates) + extra, cur.committed_at,
                        touched=cur.touched,
                    )
        return [merged[seqno] for seqno in sorted(merged)]

    def _fetch_stream(self, partial: bool, survivors: List[int], donor: int,
                      origin: int, from_seqno: int, to_seqno: int):
        """Records of ``origin``'s stream in (from, to] for a recovery
        delivery.  Under partial replication prefer the origin itself
        when it is an active survivor (the origin keeps full records of
        its own transactions); otherwise merge the survivors' trimmed
        copies.  Receivers re-trim to their own replica sets."""
        if not partial:
            records = yield from self._call(self.server_addresses[donor],
                "recovery_fetch",
                site=origin,
                from_seqno=from_seqno,
                to_seqno=to_seqno)
            return records
        if origin in survivors:
            records = yield from self._call(self.server_addresses[origin],
                "recovery_fetch",
                site=origin,
                from_seqno=from_seqno,
                to_seqno=to_seqno)
            return records
        records = yield from self._fetch_merged(
            origin, from_seqno, to_seqno, survivors)
        return records

    def remove_site(self, config, failed_site: int, reassign_to: int):
        """Generator implementing §5.7 "Handling a site failure"
        (aggressive option).  Returns the surviving seqno bound."""
        # 1. Suspend the failed site's leases: writes to its containers
        #    are postponed until reassignment completes.
        config.suspend_leases_of_site(failed_site)
        config.deactivate_site(failed_site)
        survivors = [s for s in config.active_sites()]

        # 2. Discover what survives: the largest prefix of the failed
        #    site's transactions present at any surviving site.
        reports = {}
        for site in survivors:
            report = yield from self._call(self.server_addresses[site], "recovery_report")
            reports[site] = report
        survive_upto = max(report["got"][failed_site] for report in reports.values())

        # 2b. Under partial replication "present at a surviving site" is
        #     not a sufficient survival criterion: survivors store copies
        #     trimmed to their own replica sets, so a record's metadata
        #     can survive while its data survives nowhere (the failed
        #     site's stream reached only non-replicas of a written
        #     container before the crash).  Keeping such a transaction
        #     would let a later re-integration of the failed site -- whose
        #     WAL still holds the data -- diverge from the survivors
        #     forever.  Tighten the bound to the longest prefix in which
        #     every written container has a surviving replica that
        #     received the record.
        partial = self._is_partial(config)
        if partial and survive_upto > 0:
            floor = min(report["got"][failed_site] for report in reports.values())
            best = max(survivors, key=lambda s: reports[s]["got"][failed_site])
            candidates = yield from self._call(self.server_addresses[best],
                "recovery_fetch",
                site=failed_site,
                from_seqno=floor,
                to_seqno=survive_upto)
            for record in sorted(candidates, key=lambda r: r.seqno):
                containers = record.touched
                if containers is None:
                    containers = {u.oid.container for u in record.updates}
                data_survives = all(
                    any(
                        config.container(cid).replicated_at(s)
                        and reports[s]["got"][failed_site] >= record.seqno
                        for s in survivors
                    )
                    for cid in containers
                )
                if not data_survives:
                    survive_upto = record.seqno - 1
                    break

        # 3. Complete propagation of survivors: fetch missing records and
        #    deliver to the laggards (under partial replication, merged
        #    across all survivors' trimmed copies; re-trimmed to the
        #    receiver's replica set on delivery).
        donor = max(survivors, key=lambda s: reports[s]["got"][failed_site])
        for site in survivors:
            have = reports[site]["got"][failed_site]
            if have < survive_upto:
                if partial:
                    records = yield from self._fetch_merged(
                        failed_site, have, survive_upto, survivors)
                else:
                    records = yield from self._call(self.server_addresses[donor],
                        "recovery_fetch",
                        site=failed_site,
                        from_seqno=have,
                        to_seqno=survive_upto)
                yield from self._call(self.server_addresses[site],
                    "recovery_deliver",
                    records=records)

        # 4. Discard non-survivors and commit survivors everywhere.
        for site in survivors:
            yield from self._call(self.server_addresses[site],
                "recovery_finalize",
                failed_site=failed_site,
                survive_upto=survive_upto)

        # 5. Reassign the failed site's containers and re-evaluate
        #    durability conditions under the shrunk active set.  Under
        #    partial replication the new preferred site may not replicate
        #    a container -- every record it ever received for it arrived
        #    trimmed -- so it first installs a copy from a surviving
        #    replica.  The donor must dominate the survivors' committed
        #    frontier before exporting: the suspended lease admits no new
        #    writes to the container, so a dominating donor holds every
        #    committed one and the copy is complete.  (Full replication
        #    never enters this path: every site replicates everything.)
        frontier = [
            max(report["committed"][i] for report in reports.values())
            for i in range(len(self.server_addresses))
        ]
        copied: Dict[int, object] = {}
        for container in config.containers():
            if container.preferred_site != failed_site:
                continue
            if container.replicated_at(reassign_to):
                continue
            donors = [s for s in survivors if container.replicated_at(s)]
            if not donors:
                continue  # every replica failed with the site; data lost
            donor_site = donors[0]
            if donor_site not in copied:
                give_up = self.kernel.now + self.RPC_TIMEOUT
                while True:
                    report = yield from self._call(
                        self.server_addresses[donor_site], "recovery_report"
                    )
                    if all(g >= t for g, t in zip(report["got"], frontier)):
                        break
                    if self.kernel.now >= give_up:
                        break  # best effort: copy what the donor has
                    yield self.kernel.timeout(0.05)
                copied[donor_site] = True
            dump = yield from self._call(
                self.server_addresses[donor_site],
                "container_export",
                cid=container.id,
            )
            yield from self._call(
                self.server_addresses[reassign_to],
                "container_install",
                cid=container.id,
                dump=dump,
            )
        for container in config.containers():
            if container.preferred_site == failed_site:
                config.reassign_preferred_site(
                    container.id, reassign_to, remember_original=True
                )
        for site in survivors:
            yield from self._call(self.server_addresses[site], "recheck_durability")
        return survive_upto

    def reintegrate_site(self, config, returning_site: int, returning_server_address: str):
        """Generator implementing §5.7 "Re-integrating a previously failed
        site": synchronize the returning server, then hand leases back."""
        survivors = [s for s in config.active_sites() if s != returning_site]
        donor = survivors[0]
        partial = self._is_partial(config)
        report = yield from self._call(self.server_addresses[donor], "recovery_report")
        returning_report = yield from self._call(returning_server_address, "recovery_report")
        # The returning site discards transactions the new configuration
        # abandoned (its own seqnos beyond what survived).
        survive_upto = report["got"][returning_site]
        yield from self._call(returning_server_address,
            "recovery_finalize",
            failed_site=returning_site,
            survive_upto=survive_upto)
        # Catch up on everything committed while it was away.  Under
        # partial replication the default donor may replicate fewer
        # containers than the returning site: fetch each stream from its
        # origin (which keeps full records of its own transactions) or,
        # for streams of inactive origins, merged across all survivors.
        for origin in range(len(report["got"])):
            have = returning_report["got"][origin]
            if origin == returning_site:
                have = min(have, survive_upto)
            want = report["got"][origin]
            if have < want:
                records = yield from self._fetch_stream(
                    partial, survivors, donor, origin, have, want)
                yield from self._call(returning_server_address,
                    "recovery_deliver",
                    records=records)
        # Commit everything delivered (it is all DS-durable by survival).
        # Monotone commit rounds only: the one truncation needed (the
        # returning site's own abandoned suffix) already happened above,
        # and a repeated finalize would discard the seal no-op it just
        # created for that suffix.
        for origin in range(len(report["got"])):
            yield from self._call(returning_server_address,
                "recovery_commit_upto",
                site=origin,
                upto=report["committed"][origin]
                if origin != returning_site
                else survive_upto)
        config.activate_site(returning_site)
        self.server_addresses[returning_site] = returning_server_address
        # Final catch-up round, AFTER activation.  Transactions that
        # committed at the survivors during the synchronization above may
        # have retired their propagation trackers against the old active
        # set (which excluded the returning site), so nothing will resend
        # them.  Anything committed after activation propagates normally;
        # this round covers the window before it.  Only monotone
        # operations (deliver, commit_upto) are used: the round may race
        # normal propagation that is now flowing to the returning site.
        final_report = yield from self._call(self.server_addresses[donor], "recovery_report")
        final_returning = yield from self._call(returning_server_address, "recovery_report")
        for origin in range(len(final_report["got"])):
            have = final_returning["got"][origin]
            want = final_report["got"][origin]
            if have < want:
                records = yield from self._fetch_stream(
                    partial, survivors, donor, origin, have, want)
                yield from self._call(returning_server_address,
                    "recovery_deliver",
                    records=records)
            yield from self._call(returning_server_address,
                "recovery_commit_upto",
                site=origin,
                upto=final_report["committed"][origin])
        # Hand displaced containers back to their original preferred site.
        config.restore_displaced(returning_site)
        return survive_upto
